"""Event-time windowing with watermark-based window close.

The streaming workload is unbounded, so nothing downstream can wait
for "the end of the data" — progress is declared by a *watermark*: the
largest event time seen so far, minus an allowed-lateness ``lag``. A
tumbling window ``[k*size, (k+1)*size)`` closes the moment the
watermark passes its end; everything that arrived for it is released
*in canonical event-time order*, which is what makes window output
insensitive to intra-window arrival order (the Hypothesis property the
differential suite pins).

Records that arrive after their window closed are *late*: counted,
then dropped (``late="drop"``, the default) or raised on
(``late="error"``). Late drops are the price of bounded state; the
monitor log makes them visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Literal

from repro.core.errors import ConfigurationError
from repro.core.record import Record

__all__ = ["TumblingWindower", "Window", "WindowConfig"]


@dataclass(frozen=True)
class WindowConfig:
    """Knobs for event-time tumbling windows.

    ``size`` is the window width in event-time units; ``lag`` is the
    allowed out-of-orderness (the watermark trails the max event time
    by this much). ``late`` picks the late-record policy.
    """

    size: float = 1.0
    lag: float = 0.0
    late: Literal["drop", "error"] = "drop"

    def __post_init__(self) -> None:
        if not (self.size > 0.0 and math.isfinite(self.size)):
            raise ConfigurationError("window size must be finite and > 0")
        if not (self.lag >= 0.0 and math.isfinite(self.lag)):
            raise ConfigurationError("window lag must be finite and >= 0")
        if self.late not in ("drop", "error"):
            raise ConfigurationError("late must be 'drop' or 'error'")


@dataclass(frozen=True)
class Window:
    """One closed tumbling window and its canonical contents.

    ``records`` are sorted by ``(timestamp, record_id)`` — the
    arrival-order-free canonical order every downstream consumer sees.
    """

    index: int
    start: float
    end: float
    records: tuple[Record, ...]


class TumblingWindower:
    """Assigns timestamped records to tumbling windows; closes on watermark.

    Feed records one at a time; each :meth:`feed` returns the (possibly
    empty) list of windows the advancing watermark just closed, oldest
    first. Windows close *in index order* — a window with no records
    still closes (empty) so downstream window indexes never skip, which
    keeps per-window state (decay steps, monitor patience) aligned with
    event time rather than with data presence.
    """

    def __init__(self, config: WindowConfig | None = None) -> None:
        self._config = config or WindowConfig()
        self._pending: dict[int, list[Record]] = {}
        self._watermark = -math.inf
        self._next_to_close = 0
        self._late_records = 0

    @property
    def config(self) -> WindowConfig:
        return self._config

    @property
    def watermark(self) -> float:
        """Current watermark (event time up to which input is complete)."""
        return self._watermark

    @property
    def next_window(self) -> int:
        """Index of the oldest window not yet closed."""
        return self._next_to_close

    @property
    def late_records(self) -> int:
        """Records dropped for arriving after their window closed."""
        return self._late_records

    def pending_records(self) -> tuple[Record, ...]:
        """Buffered records of still-open windows (checkpoint payload)."""
        ordered: list[Record] = []
        for index in sorted(self._pending):
            ordered.extend(self._pending[index])
        return tuple(ordered)

    def _window_of(self, timestamp: float) -> int:
        return int(timestamp // self._config.size)

    def _close_through(self, bound: int) -> list[Window]:
        """Close every window with index < ``bound``, oldest first."""
        closed: list[Window] = []
        while self._next_to_close < bound:
            index = self._next_to_close
            size = self._config.size
            records = tuple(
                sorted(
                    self._pending.pop(index, ()),
                    key=lambda r: (r.timestamp, r.record_id),
                )
            )
            closed.append(
                Window(
                    index=index,
                    start=index * size,
                    end=(index + 1) * size,
                    records=records,
                )
            )
            self._next_to_close += 1
        return closed

    def feed(self, record: Record) -> list[Window]:
        """Buffer one record; return any windows its arrival closed."""
        if record.timestamp is None:
            raise ConfigurationError(
                f"record {record.record_id!r} has no timestamp; "
                "streaming windows need event time"
            )
        index = self._window_of(record.timestamp)
        if index < self._next_to_close:
            self._late_records += 1
            if self._config.late == "error":
                raise ConfigurationError(
                    f"late record {record.record_id!r}: window {index} "
                    f"closed (watermark {self._watermark})"
                )
            return []
        self._pending.setdefault(index, []).append(record)
        if record.timestamp > self._watermark:
            self._watermark = record.timestamp
        # A window closes once the watermark clears its end: no record
        # with an event time inside it can still arrive.
        bound = self._window_of(self._watermark - self._config.lag)
        # Skip-free closing, but never past a window that is still open
        # for its own end (bound is exclusive).
        return self._close_through(max(bound, 0))

    def flush(self) -> list[Window]:
        """Close every buffered window (end-of-stream in bounded tests).

        Only windows that hold records (and the empty ones before them)
        are closed; the windower stays usable afterwards.
        """
        if not self._pending:
            return []
        bound = max(self._pending) + 1
        return self._close_through(bound)

    def restore(
        self,
        next_window: int,
        watermark: float,
        pending: Iterator[Record] | tuple[Record, ...] = (),
        late_records: int = 0,
    ) -> None:
        """Reset to a checkpointed position (closed state + open buffers)."""
        self._pending.clear()
        self._next_to_close = next_window
        self._watermark = watermark
        self._late_records = late_records
        for record in pending:
            self._pending.setdefault(
                self._window_of(record.timestamp), []
            ).append(record)
