"""The continuous-ingestion runtime: stream in, entities out.

:class:`StreamingResolver` is the unbounded-stream counterpart of the
batch pipeline and the serving layer's ingest path. Records flow
through an event-time :class:`~repro.streaming.windows.TumblingWindower`;
every window close folds the window's records (in canonical order)
through an :class:`~repro.linkage.incremental.IncrementalLinker`,
updates the entity projection for every touched cluster, re-fuses those
entities, feeds the per-window signals to the drift monitors, and —
when configured — checkpoints the whole state durably.

Two fusion regimes:

* ``decay=None`` (static): entities fuse under the configured static
  source accuracies — exactly the serving layer's projection, and
  provably byte-identical to a batch :func:`~repro.linkage.resolver.
  resolve` + fuse over the records of all closed windows. This is the
  drift-free differential anchor; :func:`batch_reference_snapshot`
  computes the batch side through the *same* :func:`fuse_entity`, so
  the equality the tests assert is between two genuinely different
  engines (incremental greedy union-find vs batch blocking + connected
  components), not between a function and itself.
* ``decay < 1`` (drift-tracking): entities fuse each source's *newest*
  claim under the decayed accuracy estimates of a
  :class:`~repro.streaming.fusion.DecayedAccuracyTracker`, which is
  advanced once per window and fed each window's claim-vs-fused-value
  outcomes — the projection-level analogue of
  :class:`~repro.streaming.fusion.StreamFusion`.

Monitors (:mod:`repro.streaming.monitors`) watch the estimates and the
per-window match rate; their events invoke the ``on_drift`` hook —
typically a windowed batch re-resolution (:meth:`StreamingResolver.
re_resolve`) or a serving deployment's
:meth:`~repro.serve.ResolutionService.refresh`.

Recovery: with a ``checkpoint_store`` attached, every window close
durably saves the closed-window state (entities, tracker, monitors,
consumed-record count) into the :class:`~repro.recovery.store.RunStore`.
:meth:`StreamingResolver.resume` restores it with *zero comparisons*
(resurrect + merge, the serving layer's trick) and replays the open
window from the deterministic stream — a killed consumer restarted on
the same stream converges byte-identically to an unkilled one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.core.unionfind import UnionFind
from repro.fusion.base import Claim, ClaimSet
from repro.fusion.online import OnlineFusion
from repro.linkage.blocking.base import Blocker, KeyFunction
from repro.linkage.comparison import RecordComparator
from repro.linkage.incremental import IncrementalLinker
from repro.linkage.resolver import MatchClassifier, resolve
from repro.obs import NULL_TRACER, SystemClock
from repro.obs.instruments import observe_stream_window
from repro.serve.service import DEFAULT_SOURCE_ACCURACY
from repro.serve.store import entity_id_for
from repro.streaming.fusion import (
    DEFAULT_PRIOR_STRENGTH,
    DecayedAccuracyTracker,
)
from repro.streaming.monitors import (
    AccuracyShiftMonitor,
    MatchRateMonitor,
    MonitorEvent,
)
from repro.streaming.windows import TumblingWindower, Window, WindowConfig

__all__ = [
    "StreamingResolver",
    "WindowResult",
    "batch_reference_snapshot",
    "fuse_entity",
]

#: Checkpoint key within the attached store (one latest-state artifact;
#: the store's atomic write-rename makes each save all-or-nothing).
CHECKPOINT_KEY = "streaming.checkpoint"


def fuse_entity(
    members: Sequence[Record],
    accuracy_of: Callable[[str], float],
    pick: str = "first",
) -> tuple[dict, dict, dict]:
    """Fuse one entity's member records -> (attributes, confidence,
    provenance).

    The single fusion projection shared by the streaming runtime and
    :func:`batch_reference_snapshot` — and semantically identical to
    the serving layer's per-entity fusion: members in record-id order,
    one claim per ``(source, attribute)`` (empty values skipped),
    :class:`~repro.fusion.online.OnlineFusion` under the per-source
    accuracies ``accuracy_of`` supplies.

    ``pick`` selects which of a source's claims represents it:
    ``"first"`` (lowest record id — the serving layer's rule, and the
    batch anchor) or ``"latest"`` (highest record id — what drift
    tracking wants: on a continuous stream record ids embed event
    time, so a source's newest statement supersedes its older ones).
    """
    if pick not in ("first", "latest"):
        raise ConfigurationError("pick must be 'first' or 'latest'")
    members = sorted(members, key=lambda record: record.record_id)
    claims: list[Claim] = []
    claimed: set[tuple[str, str]] = set()
    ordered = members if pick == "first" else reversed(members)
    for record in ordered:
        for attribute in sorted(record.attributes):
            value = record.attributes[attribute]
            key = (record.source_id, attribute)
            if key in claimed or not value:
                continue
            claimed.add(key)
            claims.append(Claim(record.source_id, attribute, value))
    if not claims:
        return {}, {}, {}
    accuracies = {
        record.source_id: accuracy_of(record.source_id)
        for record in members
    }
    fusion = OnlineFusion(accuracies)
    result, _ = fusion.run(ClaimSet(claims))
    attributes = {
        item: result.chosen[item] for item in sorted(result.chosen)
    }
    confidence = {
        item: result.confidence.get(item, 0.0)
        for item in sorted(result.chosen)
    }
    provenance = {
        item: sorted(
            record.record_id
            for record in members
            if record.attributes.get(item) == chosen
        )
        for item, chosen in attributes.items()
    }
    return attributes, confidence, provenance


def batch_reference_snapshot(
    records: Sequence[Record],
    blocker: Blocker,
    comparator: RecordComparator,
    classifier: MatchClassifier,
    source_accuracies: Mapping[str, float] | None = None,
    default_accuracy: float = DEFAULT_SOURCE_ACCURACY,
) -> dict:
    """What a from-scratch batch run says about ``records``.

    Batch blocking + comparison + connected components, then the shared
    :func:`fuse_entity` per cluster under static accuracies — the
    ground the drift-free differential tests compare the streaming
    projection against. Returns the same canonical ``{"entities":
    {...}}`` shape as :meth:`StreamingResolver.snapshot`.
    """
    accuracies = dict(source_accuracies or {})

    def accuracy_of(source_id: str) -> float:
        return accuracies.get(source_id, default_accuracy)

    result = resolve(
        list(records),
        blocker,
        comparator,
        classifier,
        clustering="components",
    )
    by_id = {record.record_id: record for record in records}
    entities: dict[str, dict] = {}
    for cluster in result.clusters:
        entity_id = entity_id_for(cluster)
        attributes, confidence, provenance = fuse_entity(
            [by_id[member] for member in cluster], accuracy_of
        )
        entities[entity_id] = {
            "members": sorted(cluster),
            "attributes": attributes,
            "confidence": confidence,
            "provenance": provenance,
        }
    return {"entities": {key: entities[key] for key in sorted(entities)}}


@dataclass(frozen=True)
class WindowResult:
    """What one closed window did to the projection.

    ``accuracies`` are the post-window source-accuracy estimates (what
    the drift monitors watched); ``lags`` are per-record ingest-to-
    visible wall-clock latencies (arrival at :meth:`~StreamingResolver.
    process` to window close — the staleness the benchmark reports);
    ``late_records`` is the cumulative dropped-as-late count.
    """

    index: int
    start: float
    end: float
    watermark: float
    n_records: int
    candidates: int
    comparisons: int
    matches: int
    entities_touched: int
    accuracies: Mapping[str, float]
    events: tuple[MonitorEvent, ...]
    lags: tuple[float, ...]
    late_records: int
    re_resolved: bool = False

    @property
    def match_rate(self) -> float:
        return self.matches / self.comparisons if self.comparisons else 0.0


class StreamingResolver:
    """Windowed incremental linkage + drift-tracking fusion over a stream.

    Parameters
    ----------
    key_functions, comparator, classifier:
        The linkage machinery, identical semantics to the batch
        pipeline and the serving layer.
    source_accuracies:
        Prior per-source accuracies; unlisted sources get
        ``default_accuracy``. In static mode these are the fusion
        weights outright; in drift mode they seed the decayed tracker.
    decay:
        ``None`` — static fusion (batch-identical, the differential
        anchor). A float in ``(0, 1]`` — drift mode: entities fuse
        under decayed accuracy estimates (``1.0`` = undecayed tracking,
        the baseline that goes stale after a flip).
    tracked_attributes:
        Attributes whose claims feed the accuracy tracker (``None`` =
        all). Benchmarks pass the conflict attributes only, so the
        always-correct identity attribute does not dilute estimates.
    monitors:
        Drift monitors observed at every window close. ``None`` installs
        the defaults (:class:`AccuracyShiftMonitor` +
        :class:`MatchRateMonitor`); pass ``()`` to disable.
    on_drift:
        ``callback(event, resolver)`` invoked per monitor event — wire
        it to :meth:`re_resolve` or a serving deployment's ``refresh``.
    checkpoint_store:
        A :class:`~repro.recovery.store.RunStore` (or view); when set,
        every window close saves a durable checkpoint and
        :meth:`resume` can restore it.
    """

    def __init__(
        self,
        key_functions: Sequence[KeyFunction],
        comparator: RecordComparator,
        classifier: MatchClassifier,
        source_accuracies: Mapping[str, float] | None = None,
        default_accuracy: float = DEFAULT_SOURCE_ACCURACY,
        window: WindowConfig | None = None,
        decay: float | None = None,
        prior_strength: float = DEFAULT_PRIOR_STRENGTH,
        tracked_attributes: Sequence[str] | None = None,
        monitors: Sequence | None = None,
        on_drift: Callable[[MonitorEvent, "StreamingResolver"], None] | None = None,
        checkpoint_store=None,
        max_candidates_per_record: int = 1000,
        tracer=None,
        clock=None,
    ) -> None:
        if decay is not None and not 0.0 < decay <= 1.0:
            raise ConfigurationError("decay must be None or in (0, 1]")
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock if clock is not None else SystemClock()
        self._key_functions = tuple(key_functions)
        self._comparator = comparator
        self._classifier = classifier
        self._max_candidates = max_candidates_per_record
        self._accuracies = dict(source_accuracies or {})
        self._default_accuracy = default_accuracy
        self._decay = decay
        self._tracked = (
            frozenset(tracked_attributes)
            if tracked_attributes is not None
            else None
        )
        self._windower = TumblingWindower(window)
        self._linker = self._new_linker()
        # The tracker runs in every mode (the monitors watch it); only
        # the *fusion weights* switch between static and decayed.
        self._tracker = DecayedAccuracyTracker(
            self._accuracies,
            decay=decay if decay is not None else 1.0,
            prior_strength=prior_strength,
            default_prior=default_accuracy,
        )
        if monitors is None:
            monitors = (
                AccuracyShiftMonitor(
                    tracer=self._tracer,
                    baselines=self._accuracies,
                    default_baseline=default_accuracy,
                ),
                MatchRateMonitor(tracer=self._tracer),
            )
        self._monitors = tuple(monitors)
        self._on_drift = on_drift
        self._store = checkpoint_store
        #: entity_id -> {"members", "attributes", "confidence", "provenance"}
        self._entities: dict[str, dict] = {}
        self._entity_of: dict[str, str] = {}
        self._events: list[MonitorEvent] = []
        self._arrivals: dict[str, float] = {}
        self._consumed = 0
        self._re_resolutions = 0

    # --- accessors ----------------------------------------------------

    @property
    def windows_closed(self) -> int:
        return self._windower.next_window

    @property
    def consumed(self) -> int:
        """Records taken from the stream (late drops included)."""
        return self._consumed

    @property
    def late_records(self) -> int:
        return self._windower.late_records

    @property
    def n_entities(self) -> int:
        return len(self._entities)

    @property
    def re_resolutions(self) -> int:
        return self._re_resolutions

    @property
    def events(self) -> tuple[MonitorEvent, ...]:
        """Every monitor event fired so far, in firing order."""
        return tuple(self._events)

    def accuracies(self) -> dict[str, float]:
        """The accuracy view the *next* window's entities fuse under."""
        if self._decay is None:
            return dict(sorted(self._accuracies.items()))
        return self._tracker.estimates()

    def estimates(self) -> dict[str, float]:
        """The tracker's current estimates (what the monitors watch)."""
        return self._tracker.estimates()

    def entity(self, entity_id: str) -> dict | None:
        return self._entities.get(entity_id)

    def entity_of(self, record_id: str) -> str | None:
        return self._entity_of.get(record_id)

    def snapshot(self) -> dict:
        """Canonical JSON-able projection state (differential anchor)."""
        return {
            "windows_closed": self._windower.next_window,
            "consumed": self._consumed,
            "late_records": self._windower.late_records,
            "re_resolutions": self._re_resolutions,
            "entities": self._canonical_entities(),
        }

    def _canonical_entities(self) -> dict:
        return {
            entity_id: {
                "members": sorted(entity["members"]),
                "attributes": {
                    attr: entity["attributes"][attr]
                    for attr in sorted(entity["attributes"])
                },
                "confidence": {
                    attr: entity["confidence"][attr]
                    for attr in sorted(entity["confidence"])
                },
                "provenance": {
                    attr: sorted(entity["provenance"][attr])
                    for attr in sorted(entity["provenance"])
                },
            }
            for entity_id, entity in sorted(self._entities.items())
        }

    # --- internals ----------------------------------------------------

    def _new_linker(self) -> IncrementalLinker:
        return IncrementalLinker(
            self._key_functions,
            self._comparator,
            self._classifier,
            max_candidates_per_record=self._max_candidates,
        )

    def _accuracy_of(self, source_id: str) -> float:
        if self._decay is None:
            return self._accuracies.get(source_id, self._default_accuracy)
        return self._tracker.accuracy(source_id)

    def _set_entity(self, member_ids) -> str:
        entity_id = entity_id_for(member_ids)
        members = [
            self._linker.record(member_id)
            for member_id in sorted(member_ids)
        ]
        attributes, confidence, provenance = fuse_entity(
            members,
            self._accuracy_of,
            # Static mode keeps the serving layer's first-wins rule (the
            # batch byte-identity anchor); drift mode represents every
            # source by its newest claim, so the projection itself —
            # not just the accuracy weights — tracks the stream.
            pick="first" if self._decay is None else "latest",
        )
        self._entities[entity_id] = {
            "members": sorted(member_ids),
            "attributes": attributes,
            "confidence": confidence,
            "provenance": provenance,
        }
        for member in member_ids:
            self._entity_of[member] = entity_id
        return entity_id

    def _project_window(self, window: Window, match_pairs) -> int:
        """Fold one window's link decisions into the entity projection.

        A window-local union-find groups the window's records; every
        match into a pre-existing entity absorbs that entity's members
        (the batch-of-records generalization of the serving layer's
        per-record fold). Returns the number of entities (re)projected.
        """
        local: UnionFind[str] = UnionFind()
        for record in window.records:
            local.add(record.record_id)
        absorbed_rep: dict[str, str] = {}
        for new_id, other_id in match_pairs:
            entity_id = self._entity_of.get(other_id)
            if entity_id is None:
                # Both endpoints are in this window.
                local.union(new_id, other_id)
            else:
                rep = absorbed_rep.setdefault(entity_id, new_id)
                local.union(new_id, rep)
        absorbed_by_root: dict[str, list[str]] = {}
        for entity_id, rep in absorbed_rep.items():
            absorbed_by_root.setdefault(local.find(rep), []).append(
                entity_id
            )
        touched = 0
        for group in sorted(local.groups(), key=min):
            members = set(group)
            for entity_id in absorbed_by_root.get(local.find(group[0]), ()):
                members.update(self._entities.pop(entity_id)["members"])
            self._set_entity(members)
            touched += 1
        return touched

    def _observe_claims(self, window: Window) -> None:
        """Feed claim-vs-fused-value outcomes to the accuracy tracker."""
        for record in window.records:
            entity = self._entities.get(
                self._entity_of.get(record.record_id, ""), None
            )
            if entity is None:
                continue
            for attribute in sorted(record.attributes):
                value = record.attributes[attribute]
                if not value:
                    continue
                if self._tracked is not None and attribute not in self._tracked:
                    continue
                fused = entity["attributes"].get(attribute)
                if fused is None:
                    continue
                self._tracker.observe(record.source_id, value == fused)

    def _checkpoint(self) -> None:
        if self._store is None:
            return
        self._store.save(
            CHECKPOINT_KEY,
            {
                "consumed": self._consumed,
                "next_window": self._windower.next_window,
                "watermark": self._windower.watermark,
                "late_records": self._windower.late_records,
                "re_resolutions": self._re_resolutions,
                "entities": self._canonical_entities(),
                "tracker": self._tracker.state(),
                "monitors": [
                    monitor.state() for monitor in self._monitors
                ],
                "events": [event.to_json() for event in self._events],
            },
        )
        self._tracer.counter("streaming.checkpoints").inc()

    def _close_window(self, window: Window) -> WindowResult:
        self._tracker.advance()
        stats = self._linker.add_batch(list(window.records))
        touched = self._project_window(window, stats.match_pairs)
        self._observe_claims(window)
        estimates = self._tracker.estimates()
        re_resolutions_before = self._re_resolutions
        events: list[MonitorEvent] = []
        for monitor in self._monitors:
            if isinstance(monitor, MatchRateMonitor):
                events.extend(
                    monitor.observe(
                        window.index, stats.matches, stats.comparisons
                    )
                )
            else:
                events.extend(monitor.observe(window.index, estimates))
        self._events.extend(events)
        if self._on_drift is not None:
            for event in events:
                self._on_drift(event, self)
        now = self._clock.now()
        lags = tuple(
            now - self._arrivals.pop(record.record_id, now)
            for record in window.records
        )
        self._checkpoint()
        result = WindowResult(
            index=window.index,
            start=window.start,
            end=window.end,
            watermark=self._windower.watermark,
            n_records=len(window.records),
            candidates=stats.candidates,
            comparisons=stats.comparisons,
            matches=stats.matches,
            entities_touched=touched,
            accuracies=estimates,
            events=tuple(events),
            lags=lags,
            late_records=self._windower.late_records,
            re_resolved=self._re_resolutions > re_resolutions_before,
        )
        observe_stream_window(self._tracer, result)
        return result

    # --- the streaming API -------------------------------------------

    def process(self, records: Iterable[Record]) -> Iterator[WindowResult]:
        """Consume records; yield a :class:`WindowResult` per close.

        A generator: pull-driven, so an unbounded stream works — stop
        iterating to stop consuming. Records of still-open windows are
        buffered; nothing is linked or fused until event time declares
        the window complete.
        """
        for record in records:
            self._consumed += 1
            self._arrivals[record.record_id] = self._clock.now()
            late_before = self._windower.late_records
            closed = self._windower.feed(record)
            if self._windower.late_records > late_before:
                self._arrivals.pop(record.record_id, None)
                self._tracer.counter("streaming.late_records").inc()
            for window in closed:
                yield self._close_window(window)

    def flush(self) -> list[WindowResult]:
        """Close every buffered window (end-of-stream in bounded runs)."""
        return [
            self._close_window(window) for window in self._windower.flush()
        ]

    def run(
        self,
        records: Iterable[Record],
        max_windows: int | None = None,
    ) -> list[WindowResult]:
        """Drive :meth:`process`; with ``max_windows``, stop after that
        many closes (unbounded streams), else flush at end of input."""
        results: list[WindowResult] = []
        for result in self.process(records):
            results.append(result)
            if max_windows is not None and len(results) >= max_windows:
                return results
        results.extend(self.flush())
        return results

    # --- re-resolution (the drift response) --------------------------

    def re_resolve(self, blocker: Blocker) -> int:
        """Windowed batch re-resolution of everything linked so far.

        The full batch pipeline over all closed-window records, then a
        fresh linker preloaded by resurrect + merge (zero incremental
        comparisons) and a re-fused projection under the *current*
        accuracy view. This is the heavyweight answer to a monitor
        event when no serving deployment owns the data. Returns the
        number of entities in the rebuilt projection.
        """
        records = [
            self._linker.record(member)
            for entity in self._entities.values()
            for member in entity["members"]
        ]
        result = resolve(
            records,
            blocker,
            self._comparator,
            self._classifier,
            clustering="components",
        )
        self._linker = self._new_linker()
        for record in records:
            self._linker.resurrect(record)
        self._entities.clear()
        self._entity_of.clear()
        for cluster in result.clusters:
            for left, right in zip(cluster, cluster[1:]):
                self._linker.merge(left, right)
            self._set_entity(cluster)
        self._re_resolutions += 1
        self._tracer.counter("streaming.re_resolutions").inc()
        return len(self._entities)

    # --- checkpoint / resume -----------------------------------------

    def resume(self, records: Iterator[Record]) -> int:
        """Restore the last checkpoint, replaying the open window.

        ``records`` must be a *fresh iterator over the same
        deterministic stream* the killed run consumed (e.g. a new pass
        over a :class:`~repro.io.GeneratorRecordStream`). The first
        ``consumed`` records are taken from it: closed-window records
        are resurrected into the linker (zero comparisons, merges
        replayed from the checkpointed entities), open-window records
        are re-buffered, late-dropped ones are skipped. The iterator is
        left positioned at the first unseen record — pass it straight
        to :meth:`process` to continue. Returns the number of records
        replayed (0 with no checkpoint).
        """
        if self._store is None:
            raise ConfigurationError(
                "resume requires a checkpoint_store"
            )
        if self._consumed:
            raise ConfigurationError(
                "resume must be called on a fresh resolver"
            )
        payload = self._store.load(CHECKPOINT_KEY)
        if payload is None:
            return 0
        next_window = int(payload["next_window"])
        self._entities = {
            entity_id: {
                "members": list(entity["members"]),
                "attributes": dict(entity["attributes"]),
                "confidence": dict(entity["confidence"]),
                "provenance": {
                    attr: list(ids)
                    for attr, ids in entity["provenance"].items()
                },
            }
            for entity_id, entity in payload["entities"].items()
        }
        self._entity_of = {
            member: entity_id
            for entity_id, entity in self._entities.items()
            for member in entity["members"]
        }
        pending: list[Record] = []
        now = self._clock.now()
        size = self._windower.config.size
        for record in itertools.islice(records, payload["consumed"]):
            if record.record_id in self._entity_of:
                self._linker.resurrect(record)
            elif int(record.timestamp // size) >= next_window:
                pending.append(record)
                self._arrivals[record.record_id] = now
            # else: it was dropped as late; drop it again.
        for entity in self._entities.values():
            members = entity["members"]
            for left, right in zip(members, members[1:]):
                self._linker.merge(left, right)
        self._windower.restore(
            next_window,
            float(payload["watermark"]),
            tuple(pending),
            late_records=int(payload["late_records"]),
        )
        self._tracker.restore(payload["tracker"])
        for monitor, state in zip(self._monitors, payload["monitors"]):
            monitor.restore(state)
        self._events = [
            MonitorEvent(**event) for event in payload["events"]
        ]
        self._re_resolutions = int(payload["re_resolutions"])
        self._consumed = int(payload["consumed"])
        self._tracer.counter("streaming.resumes").inc()
        return self._consumed
