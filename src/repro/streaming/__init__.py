"""repro.streaming — drift-aware continuous ingestion.

The unbounded-stream counterpart of the batch pipeline: event-time
tumbling windows with watermark-based close (:mod:`~repro.streaming.
windows`), windowed incremental linkage plus drift-tracking decayed
fusion (:mod:`~repro.streaming.fusion`, :mod:`~repro.streaming.
runtime`), drift monitors with a fire-once-per-sustained-shift
discipline (:mod:`~repro.streaming.monitors`), and a deterministic
drift-injecting workload generator (:mod:`~repro.streaming.drift`).

The load-bearing invariant, proven by the differential test suite: on
a drift-free stream with ``decay=None``, the streaming projection at
every window boundary is byte-identical to a from-scratch batch
resolve-and-fuse over the records of all closed windows.
"""

from repro.streaming.drift import (
    CONFLICT_ATTRIBUTES,
    DriftStreamConfig,
    DriftWorld,
    projection_accuracy,
)
from repro.streaming.fusion import DecayedAccuracyTracker, StreamFusion
from repro.streaming.monitors import (
    AccuracyShiftMonitor,
    MatchRateMonitor,
    MonitorEvent,
)
from repro.streaming.runtime import (
    StreamingResolver,
    WindowResult,
    batch_reference_snapshot,
    fuse_entity,
)
from repro.streaming.windows import TumblingWindower, Window, WindowConfig

__all__ = [
    "AccuracyShiftMonitor",
    "CONFLICT_ATTRIBUTES",
    "DecayedAccuracyTracker",
    "DriftStreamConfig",
    "DriftWorld",
    "MatchRateMonitor",
    "MonitorEvent",
    "StreamFusion",
    "StreamingResolver",
    "TumblingWindower",
    "Window",
    "WindowConfig",
    "WindowResult",
    "batch_reference_snapshot",
    "fuse_entity",
    "projection_accuracy",
]
