"""Quality monitors over the streaming pipeline's per-window signals.

A drifting source rarely announces itself; what moves are the derived
signals — the accuracy estimates the decayed fusion maintains, and the
linker's per-window match rate (a copier joining the stream doubles
agreement; a schema break kills it). Monitors watch one signal each,
with the firing discipline re-resolution triggers need:

* **sustained**: a shift must persist for ``patience`` consecutive
  windows before the monitor fires — one noisy window never triggers a
  batch re-resolution;
* **latched**: after firing, the monitor re-baselines to the new level
  and goes quiet until *another* sustained shift happens — a sustained
  drift fires exactly once, never once per window (no flapping).

Events are plain data (JSON-able) and land on ``streaming.monitor.*``
metrics when a tracer is attached; the runtime turns them into
re-resolution triggers (windowed batch :func:`~repro.linkage.resolver.
resolve`, or :meth:`~repro.serve.ResolutionService.refresh` when wired
to a serving deployment).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping

from repro.core.errors import ConfigurationError
from repro.obs import NULL_TRACER

__all__ = ["AccuracyShiftMonitor", "MatchRateMonitor", "MonitorEvent"]


@dataclass(frozen=True)
class MonitorEvent:
    """One monitor firing.

    ``subject`` names what shifted (a source id, or ``"match_rate"``);
    ``value`` is the level that fired, ``baseline`` the level the
    monitor had latched.
    """

    window: int
    monitor: str
    subject: str
    value: float
    baseline: float

    def to_json(self) -> dict:
        return asdict(self)


class _Latch:
    """Shared sustained-shift-then-relatch state machine (one subject)."""

    __slots__ = ("baseline", "streak")

    def __init__(self, baseline: float) -> None:
        self.baseline = baseline
        self.streak = 0

    def observe(self, value: float, threshold: float, patience: int) -> bool:
        """True exactly when a shift has been sustained ``patience`` windows."""
        if abs(value - self.baseline) > threshold:
            self.streak += 1
        else:
            self.streak = 0
        if self.streak >= patience:
            # Latch onto the new level; quiet until the next shift.
            self.baseline = value
            self.streak = 0
            return True
        return False

    def state(self) -> dict:
        return {"baseline": self.baseline, "streak": self.streak}

    @classmethod
    def from_state(cls, state: Mapping) -> "_Latch":
        latch = cls(float(state["baseline"]))
        latch.streak = int(state["streak"])
        return latch


class AccuracyShiftMonitor:
    """Fires when a source's accuracy estimate departs its latched level.

    Baselines start at the first observed estimate per source (the
    prior, before evidence arrives). A shift of more than ``threshold``
    sustained for ``patience`` consecutive windows fires one event and
    re-baselines to the shifted level.
    """

    name = "accuracy_shift"

    def __init__(
        self,
        threshold: float = 0.15,
        patience: int = 2,
        tracer=None,
        baselines: Mapping[str, float] | None = None,
        default_baseline: float | None = None,
    ) -> None:
        if threshold <= 0.0:
            raise ConfigurationError("threshold must be > 0")
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        self._threshold = threshold
        self._patience = patience
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: Where a source's baseline starts: its configured prior if
        #: given, else ``default_baseline``, else its first observed
        #: estimate. Prior-anchored baselines are what let the monitor
        #: flag a *new* source (e.g. a copier joining the stream) whose
        #: very first estimates already diverge from assumption.
        self._baselines = dict(baselines or {})
        self._default_baseline = default_baseline
        self._latches: dict[str, _Latch] = {}

    def _first_baseline(self, source: str, value: float) -> float:
        configured = self._baselines.get(source, self._default_baseline)
        return configured if configured is not None else value

    def observe(
        self, window: int, estimates: Mapping[str, float]
    ) -> list[MonitorEvent]:
        """Fold one window's accuracy estimates; return fired events."""
        events: list[MonitorEvent] = []
        for source in sorted(estimates):
            value = estimates[source]
            latch = self._latches.get(source)
            if latch is None:
                latch = _Latch(self._first_baseline(source, value))
                self._latches[source] = latch
            baseline = latch.baseline
            if latch.observe(value, self._threshold, self._patience):
                events.append(
                    MonitorEvent(
                        window=window,
                        monitor=self.name,
                        subject=source,
                        value=value,
                        baseline=baseline,
                    )
                )
        for event in events:
            self._tracer.counter("streaming.monitor.fired").inc()
            self._tracer.counter(
                f"streaming.monitor.{self.name}.fired"
            ).inc()
        return events

    def state(self) -> dict:
        return {
            source: latch.state()
            for source, latch in sorted(self._latches.items())
        }

    def restore(self, state: Mapping) -> None:
        self._latches = {
            source: _Latch.from_state(payload)
            for source, payload in state.items()
        }


class MatchRateMonitor:
    """Fires when the per-window linkage match rate shifts level.

    The match rate is ``matches / comparisons`` per closed window
    (windows with fewer than ``min_comparisons`` comparisons are
    skipped — a near-empty window's rate is noise). The baseline
    latches on the first qualifying window; a sustained shift beyond
    ``threshold`` fires once and re-baselines, exactly like
    :class:`AccuracyShiftMonitor`.
    """

    name = "match_rate"

    def __init__(
        self,
        threshold: float = 0.2,
        patience: int = 2,
        min_comparisons: int = 1,
        tracer=None,
    ) -> None:
        if threshold <= 0.0:
            raise ConfigurationError("threshold must be > 0")
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        if min_comparisons < 1:
            raise ConfigurationError("min_comparisons must be >= 1")
        self._threshold = threshold
        self._patience = patience
        self._min_comparisons = min_comparisons
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._latch: _Latch | None = None

    def observe(
        self, window: int, matches: int, comparisons: int
    ) -> list[MonitorEvent]:
        """Fold one window's linkage counters; return fired events."""
        if comparisons < self._min_comparisons:
            return []
        rate = matches / comparisons
        self._tracer.gauge("streaming.match_rate").set(rate)
        if self._latch is None:
            self._latch = _Latch(rate)
            return []
        baseline = self._latch.baseline
        if not self._latch.observe(rate, self._threshold, self._patience):
            return []
        self._tracer.counter("streaming.monitor.fired").inc()
        self._tracer.counter(f"streaming.monitor.{self.name}.fired").inc()
        return [
            MonitorEvent(
                window=window,
                monitor=self.name,
                subject="match_rate",
                value=rate,
                baseline=baseline,
            )
        ]

    def state(self) -> dict:
        return {"latch": self._latch.state() if self._latch else None}

    def restore(self, state: Mapping) -> None:
        payload = state.get("latch")
        self._latch = _Latch.from_state(payload) if payload else None
