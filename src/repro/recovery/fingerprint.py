"""Deterministic fingerprints: "is this checkpoint from the same run?"

Resuming a checkpointed run is only safe when the resumed process is
computing *the same thing* the killed process was. The fingerprint is
that guard: a stable SHA-256 digest over the semantic configuration
and the dataset content, identical across processes and machines (no
``id()``, no salted ``hash()``, no timestamps). The
:class:`~repro.recovery.store.RunStore` records it in the run manifest
and refuses to resume under a different one.

Fields that steer *execution* but not *results* — injected clocks and
sleeps, fault injectors, dead-letter file paths — are excluded, so a
run killed by an injected ``kill`` fault resumes cleanly under the
same config with the injector removed.
"""

from __future__ import annotations

import dataclasses
import hashlib

__all__ = [
    "claims_signature",
    "config_fingerprint",
    "dataset_fingerprint",
]

#: Dataclass fields that carry execution plumbing rather than semantics;
#: two configs differing only here compute identical results. The
#: supervision knobs belong here by the supervisor's own contract: a
#: supervised run's output is byte-identical to an unfaulted one, so a
#: run killed under one restart budget may resume under another.
NONSEMANTIC_FIELDS = frozenset(
    {
        "clock",
        "sleep",
        "fault_injector",
        "tracer",
        "dead_letter_path",
        "dead_letter_max_entries",
        "dead_letter_max_bytes",
        "heartbeat",
        "supervision",
    }
)


def _canonical(value) -> str:
    """A stable, process-independent rendering of ``value``."""
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, bytes):
        return "bytes:" + hashlib.sha256(value).hexdigest()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        rendered = ",".join(
            f"{field.name}={_canonical(getattr(value, field.name))}"
            for field in dataclasses.fields(value)
            if field.name not in NONSEMANTIC_FIELDS
        )
        return f"{type(value).__qualname__}({rendered})"
    if isinstance(value, dict):
        items = ",".join(
            f"{_canonical(key)}:{_canonical(item)}"
            for key, item in sorted(
                value.items(), key=lambda pair: repr(pair[0])
            )
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(item) for item in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(v) for v in value)) + "}"
    if callable(value):
        name = getattr(
            value,
            "__qualname__",
            getattr(value, "__name__", type(value).__qualname__),
        )
        return f"callable:{name}"
    return f"object:{type(value).__qualname__}"


def config_fingerprint(*parts) -> str:
    """SHA-256 hex digest over the canonical form of ``parts``.

    Accepts any mix of dataclass configs, primitives, and containers;
    pre-computed digests (e.g. :func:`dataset_fingerprint` output) fold
    in as plain strings.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(_canonical(part).encode("utf-8"))
        digest.update(b"\x1e")
    return digest.hexdigest()


def claims_signature(claims) -> str:
    """SHA-256 hex digest over a :class:`~repro.fusion.base.ClaimSet`.

    Order-independent (claims are sorted), so two claim sets with the
    same content produce the same signature regardless of insertion
    order. Used by the iterative solvers to tie per-iteration
    checkpoints to their exact input.
    """
    digest = hashlib.sha256()
    for claim in sorted(
        claims, key=lambda c: (c.source_id, c.item_id, c.value)
    ):
        digest.update(claim.source_id.encode("utf-8"))
        digest.update(b"\x1f")
        digest.update(claim.item_id.encode("utf-8"))
        digest.update(b"\x1f")
        digest.update(claim.value.encode("utf-8"))
        digest.update(b"\x1e")
    return digest.hexdigest()


def dataset_fingerprint(dataset) -> str:
    """SHA-256 hex digest over a dataset's full record content.

    One linear pass over every record's id, source, and attribute
    values — cheap insurance against resuming a checkpoint against a
    corpus that changed underneath it.
    """
    digest = hashlib.sha256()
    for record in dataset.records():
        digest.update(record.record_id.encode("utf-8"))
        digest.update(b"\x1f")
        digest.update(record.source_id.encode("utf-8"))
        digest.update(b"\x1f")
        for name in sorted(record.attributes):
            digest.update(name.encode("utf-8"))
            digest.update(b"=")
            digest.update(str(record.attributes[name]).encode("utf-8"))
            digest.update(b"\x1f")
        digest.update(b"\x1e")
    return digest.hexdigest()
