"""Durable checkpointing and crash-resumable runs.

`RunStore` persists stage/chunk/iteration checkpoints with atomic
write-rename semantics and content checksums; fingerprints guard
against resuming a different run's artifacts. See DESIGN.md.
"""

from repro.recovery.fingerprint import (
    claims_signature,
    config_fingerprint,
    dataset_fingerprint,
)
from repro.recovery.store import (
    CheckpointMismatchError,
    RecoveryError,
    RunStore,
    StoreView,
)

__all__ = [
    "CheckpointMismatchError",
    "RecoveryError",
    "RunStore",
    "StoreView",
    "claims_signature",
    "config_fingerprint",
    "dataset_fingerprint",
]
