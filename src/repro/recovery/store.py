"""The durable run store: checkpoints that survive process death.

A :class:`RunStore` is a directory of checkpoint artifacts plus a JSON
run manifest, built for exactly one job: let a killed integration run
— OOM-kill, deploy restart, power loss — resume from its last
completed unit of work instead of recomputing from scratch. Its
guarantees:

1. **Atomic write-rename** — every artifact (and the manifest) is
   written to a temporary file, flushed, fsynced, and ``os.replace``d
   into place, so a crash mid-write never leaves a half-visible
   checkpoint under the real name.
2. **Content checksums** — each artifact embeds a SHA-256 of its
   payload; a torn, truncated, or bit-flipped file fails verification
   on load.
3. **Corruption is absence** — any artifact that fails the magic,
   checksum, or unpickling check is treated as *not checkpointed* (and
   counted on ``recovery.corrupt``), never raised: the worst outcome
   of a damaged checkpoint is recomputation.
4. **Fingerprint-guarded resume** — the manifest records the run's
   config fingerprint (:mod:`repro.recovery.fingerprint`); binding a
   different fingerprint raises :class:`CheckpointMismatchError`
   rather than silently mixing artifacts of two different runs.

Keys are dotted paths (``"stage.schema"``, ``"linkage.chunk.3"``);
:meth:`RunStore.sub` scopes a key prefix so each execution layer
(engine chunks, solver state, pipeline stages) checkpoints into its
own namespace of the same store. Save/load/skip traffic is emitted as
``recovery.*`` counters through the attached tracer.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

from repro.core.errors import ReproError
from repro.obs import NULL_TRACER

__all__ = [
    "CheckpointMismatchError",
    "RecoveryError",
    "RunStore",
    "StoreView",
]

_MAGIC = b"REPRO-CKPT-1\n"
_MANIFEST = "manifest.json"
_ARTIFACT_DIR = "artifacts"


class RecoveryError(ReproError):
    """Base class for checkpoint/recovery errors."""


class CheckpointMismatchError(RecoveryError):
    """The store holds checkpoints of a *different* run.

    Raised when the fingerprint bound at resume time disagrees with
    the one recorded in the manifest — resuming would silently mix
    artifacts computed under another config or dataset.
    """

    def __init__(self, recorded: str, offered: str, root: str) -> None:
        super().__init__(
            f"run store at {root!r} was created with config fingerprint "
            f"{recorded[:12]}… but this run has {offered[:12]}…; refusing "
            "to resume a different run's checkpoints (use a fresh store, "
            "or re-run with the original configuration and dataset)"
        )
        self.recorded = recorded
        self.offered = offered


def _atomic_write(path: Path, data: bytes, durable: bool) -> None:
    """Write-rename: ``data`` appears at ``path`` entirely or not at all."""
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        if durable:
            os.fsync(handle.fileno())
    os.replace(tmp, path)


def _artifact_name(key: str) -> str:
    """A filesystem-safe, collision-free filename for ``key``."""
    safe = "".join(
        ch if ch.isalnum() or ch in "._-" else "-" for ch in key
    )[:80]
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:10]
    return f"{safe}-{digest}.ckpt"


class RunStore:
    """A durable checkpoint directory for one resumable run.

    Parameters
    ----------
    root:
        Directory to create/open. A fresh directory is a fresh run; an
        existing one resumes it (subject to the fingerprint check).
    run_id:
        Recorded in the manifest for humans and CI artifacts.
    fingerprint:
        Optional config fingerprint to bind immediately (see
        :meth:`bind_fingerprint`).
    tracer:
        An :class:`repro.obs.Tracer` for the ``recovery.*`` counters;
        reassignable via :attr:`tracer` (the pipeline binds its run
        tracer at start). Defaults to the no-op tracer.
    durable:
        When ``True`` (default) artifact and manifest writes fsync
        before rename; ``False`` keeps atomicity but trades crash
        durability for speed (checksums still detect any damage).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        run_id: str = "run",
        fingerprint: str | None = None,
        tracer=None,
        durable: bool = True,
    ) -> None:
        self._root = Path(root)
        self._artifacts = self._root / _ARTIFACT_DIR
        self._artifacts.mkdir(parents=True, exist_ok=True)
        self._durable = durable
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._manifest = self._load_manifest(run_id)
        if fingerprint is not None:
            self.bind_fingerprint(fingerprint)

    # --- manifest ----------------------------------------------------

    def _load_manifest(self, run_id: str) -> dict:
        path = self._root / _MANIFEST
        if path.exists():
            try:
                manifest = json.loads(path.read_text(encoding="utf-8"))
                if isinstance(manifest, dict) and "version" in manifest:
                    return manifest
            except (OSError, ValueError):
                pass
            # A torn manifest is recoverable: artifacts are
            # self-describing, so start a fresh ledger over them.
            self._tracer.counter("recovery.corrupt").inc()
        return {
            "version": 1,
            "run_id": run_id,
            "fingerprint": None,
            "seq": 0,
            "stages": [],
            "completed": False,
        }

    def _flush_manifest(self) -> None:
        data = json.dumps(
            self._manifest, indent=2, sort_keys=True
        ).encode("utf-8")
        _atomic_write(self._root / _MANIFEST, data, self._durable)

    @property
    def manifest(self) -> dict:
        """A deep copy of the manifest (run id, fingerprint, ledger)."""
        return json.loads(json.dumps(self._manifest))

    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    @property
    def run_id(self) -> str:
        return self._manifest["run_id"]

    @property
    def fingerprint(self) -> str | None:
        """The bound config fingerprint, if any."""
        return self._manifest["fingerprint"]

    @property
    def completed(self) -> bool:
        """Whether :meth:`mark_complete` was called for this run."""
        return bool(self._manifest["completed"])

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def bind_fingerprint(self, fingerprint: str) -> None:
        """Claim this store for runs with ``fingerprint``.

        A fresh store adopts it; a store already bound to the same
        fingerprint is a valid resume; any other fingerprint raises
        :class:`CheckpointMismatchError`.
        """
        recorded = self._manifest["fingerprint"]
        if recorded is None:
            self._manifest["fingerprint"] = fingerprint
            self._flush_manifest()
        elif recorded != fingerprint:
            raise CheckpointMismatchError(
                recorded, fingerprint, str(self._root)
            )

    def mark_stage(self, stage: str, key: str, sha256: str | None = None) -> None:
        """Append (or refresh) one stage-ledger entry in the manifest."""
        self._manifest["seq"] += 1
        entry = {
            "stage": stage,
            "key": key,
            "sha256": sha256,
            "seq": self._manifest["seq"],
        }
        self._manifest["stages"] = [
            item
            for item in self._manifest["stages"]
            if item["stage"] != stage
        ] + [entry]
        self._flush_manifest()

    def completed_stages(self) -> tuple[str, ...]:
        """Stage names in the ledger, in completion (seq) order."""
        return tuple(
            item["stage"]
            for item in sorted(
                self._manifest["stages"], key=lambda item: item["seq"]
            )
        )

    def mark_complete(self) -> None:
        """Record that the run finished end to end."""
        self._manifest["completed"] = True
        self._flush_manifest()

    # --- artifacts ---------------------------------------------------

    def _path_for(self, key: str) -> Path:
        return self._artifacts / _artifact_name(key)

    def save(self, key: str, value) -> dict:
        """Durably checkpoint ``value`` under ``key``.

        Returns the artifact metadata (``key``/``sha256``/``size``).
        The write is atomic: a concurrent or crashed save never
        exposes a partial artifact under the final name.
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        sha = hashlib.sha256(payload).hexdigest()
        meta = {"key": key, "sha256": sha, "size": len(payload)}
        header = json.dumps(meta, sort_keys=True).encode("utf-8")
        _atomic_write(
            self._path_for(key),
            _MAGIC + header + b"\n" + payload,
            self._durable,
        )
        self._tracer.counter("recovery.saves").inc()
        self._tracer.counter("recovery.save_bytes").inc(len(payload))
        return meta

    def load(self, key: str):
        """The checkpointed value, or ``None`` when absent or damaged.

        Every failure mode — missing file, bad magic, torn payload,
        checksum mismatch, unpicklable bytes — is treated as "not
        checkpointed": the caller recomputes, the run never crashes on
        a bad checkpoint. (``None`` is therefore not a storable value.)
        """
        path = self._path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self._tracer.counter("recovery.misses").inc()
            return None
        value = self._decode(raw, key)
        if value is None:
            self._tracer.counter("recovery.corrupt").inc()
            return None
        self._tracer.counter("recovery.loads").inc()
        return value

    @staticmethod
    def _decode(raw: bytes, key: str):
        if not raw.startswith(_MAGIC):
            return None
        try:
            header, payload = raw[len(_MAGIC):].split(b"\n", 1)
            meta = json.loads(header)
            if meta.get("key") != key:
                return None
            if len(payload) != meta["size"]:
                return None
            if hashlib.sha256(payload).hexdigest() != meta["sha256"]:
                return None
            return pickle.loads(payload)
        except Exception:  # noqa: BLE001 — any damage means "absent"
            return None

    def delete(self, key: str) -> None:
        """Drop one artifact (missing is fine)."""
        try:
            self._path_for(key).unlink()
        except OSError:
            pass

    def keys(self) -> tuple[str, ...]:
        """Keys of every intact artifact on disk, sorted."""
        found = []
        for path in self._artifacts.glob("*.ckpt"):
            try:
                with open(path, "rb") as handle:
                    if handle.read(len(_MAGIC)) != _MAGIC:
                        continue
                    header = handle.readline()
                meta = json.loads(header)
                found.append(meta["key"])
            except Exception:  # noqa: BLE001 — skip damaged files
                continue
        return tuple(sorted(found))

    def sub(self, prefix: str) -> "StoreView":
        """A view of this store under ``prefix.`` (namespaced keys)."""
        return StoreView(self, prefix)

    def __repr__(self) -> str:
        return (
            f"RunStore({str(self._root)!r}, run_id={self.run_id!r}, "
            f"stages={len(self._manifest['stages'])})"
        )


class StoreView:
    """A key-prefixed view of a :class:`RunStore`.

    Carries the same save/load/delete/keys surface, so execution
    layers take "a checkpoint store" without caring whether it is the
    root store or a namespace of one.
    """

    def __init__(self, store: RunStore, prefix: str) -> None:
        self._store = store
        self._prefix = prefix.rstrip(".") + "."

    @property
    def tracer(self):
        return self._store.tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._store.tracer = tracer

    def save(self, key: str, value) -> dict:
        return self._store.save(self._prefix + key, value)

    def load(self, key: str):
        return self._store.load(self._prefix + key)

    def delete(self, key: str) -> None:
        self._store.delete(self._prefix + key)

    def keys(self) -> tuple[str, ...]:
        return tuple(
            key[len(self._prefix):]
            for key in self._store.keys()
            if key.startswith(self._prefix)
        )

    def sub(self, prefix: str) -> "StoreView":
        return StoreView(self._store, self._prefix + prefix)

    def __repr__(self) -> str:
        return f"StoreView({self._store!r}, prefix={self._prefix!r})"
