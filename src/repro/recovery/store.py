"""The durable run store: checkpoints that survive process death.

A :class:`RunStore` is a directory of checkpoint artifacts plus a JSON
run manifest, built for exactly one job: let a killed integration run
— OOM-kill, deploy restart, power loss — resume from its last
completed unit of work instead of recomputing from scratch. Its
guarantees:

1. **Atomic write-rename** — every artifact (and the manifest) is
   written to a temporary file, flushed, fsynced, and ``os.replace``d
   into place, so a crash mid-write never leaves a half-visible
   checkpoint under the real name.
2. **Content checksums** — each artifact embeds a SHA-256 of its
   payload; a torn, truncated, or bit-flipped file fails verification
   on load.
3. **Corruption is absence** — any artifact that fails the magic,
   checksum, or unpickling check is treated as *not checkpointed* (and
   counted on ``recovery.corrupt``), never raised: the worst outcome
   of a damaged checkpoint is recomputation.
4. **Fingerprint-guarded resume** — the manifest records the run's
   config fingerprint (:mod:`repro.recovery.fingerprint`); binding a
   different fingerprint raises :class:`CheckpointMismatchError`
   rather than silently mixing artifacts of two different runs.

Keys are dotted paths (``"stage.schema"``, ``"linkage.chunk.3"``);
:meth:`RunStore.sub` scopes a key prefix so each execution layer
(engine chunks, solver state, pipeline stages) checkpoints into its
own namespace of the same store. Save/load/skip traffic is emitted as
``recovery.*`` counters through the attached tracer.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
from pathlib import Path

from repro.core.errors import ReproError
from repro.obs import NULL_TRACER

__all__ = [
    "CheckpointMismatchError",
    "RecoveryError",
    "RunStore",
    "StoreView",
]

_MAGIC = b"REPRO-CKPT-1\n"
_STREAM_MAGIC = b"REPRO-CKPT-S1\n"
_MANIFEST = "manifest.json"
_ARTIFACT_DIR = "artifacts"
_FRAME_HEAD = struct.Struct(">Q")


class RecoveryError(ReproError):
    """Base class for checkpoint/recovery errors."""


class CheckpointMismatchError(RecoveryError):
    """The store holds checkpoints of a *different* run.

    Raised when the fingerprint bound at resume time disagrees with
    the one recorded in the manifest — resuming would silently mix
    artifacts computed under another config or dataset.
    """

    def __init__(self, recorded: str, offered: str, root: str) -> None:
        super().__init__(
            f"run store at {root!r} was created with config fingerprint "
            f"{recorded[:12]}… but this run has {offered[:12]}…; refusing "
            "to resume a different run's checkpoints (use a fresh store, "
            "or re-run with the original configuration and dataset)"
        )
        self.recorded = recorded
        self.offered = offered


def _atomic_write(path: Path, data: bytes, durable: bool) -> None:
    """Write-rename: ``data`` appears at ``path`` entirely or not at all."""
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        if durable:
            os.fsync(handle.fileno())
    os.replace(tmp, path)


def _artifact_name(key: str) -> str:
    """A filesystem-safe, collision-free filename for ``key``."""
    safe = "".join(
        ch if ch.isalnum() or ch in "._-" else "-" for ch in key
    )[:80]
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:10]
    return f"{safe}-{digest}.ckpt"


class RunStore:
    """A durable checkpoint directory for one resumable run.

    Parameters
    ----------
    root:
        Directory to create/open. A fresh directory is a fresh run; an
        existing one resumes it (subject to the fingerprint check).
    run_id:
        Recorded in the manifest for humans and CI artifacts.
    fingerprint:
        Optional config fingerprint to bind immediately (see
        :meth:`bind_fingerprint`).
    tracer:
        An :class:`repro.obs.Tracer` for the ``recovery.*`` counters;
        reassignable via :attr:`tracer` (the pipeline binds its run
        tracer at start). Defaults to the no-op tracer.
    durable:
        When ``True`` (default) artifact and manifest writes fsync
        before rename; ``False`` keeps atomicity but trades crash
        durability for speed (checksums still detect any damage).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        run_id: str = "run",
        fingerprint: str | None = None,
        tracer=None,
        durable: bool = True,
    ) -> None:
        self._root = Path(root)
        self._artifacts = self._root / _ARTIFACT_DIR
        self._artifacts.mkdir(parents=True, exist_ok=True)
        self._durable = durable
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._manifest = self._load_manifest(run_id)
        if fingerprint is not None:
            self.bind_fingerprint(fingerprint)

    # --- manifest ----------------------------------------------------

    def _load_manifest(self, run_id: str) -> dict:
        path = self._root / _MANIFEST
        if path.exists():
            try:
                manifest = json.loads(path.read_text(encoding="utf-8"))
                if isinstance(manifest, dict) and "version" in manifest:
                    return manifest
            except (OSError, ValueError):
                pass
            # A torn manifest is recoverable: artifacts are
            # self-describing, so start a fresh ledger over them.
            self._tracer.counter("recovery.corrupt").inc()
        return {
            "version": 1,
            "run_id": run_id,
            "fingerprint": None,
            "seq": 0,
            "stages": [],
            "completed": False,
        }

    def _flush_manifest(self) -> None:
        data = json.dumps(
            self._manifest, indent=2, sort_keys=True
        ).encode("utf-8")
        _atomic_write(self._root / _MANIFEST, data, self._durable)

    @property
    def manifest(self) -> dict:
        """A deep copy of the manifest (run id, fingerprint, ledger)."""
        return json.loads(json.dumps(self._manifest))

    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    @property
    def run_id(self) -> str:
        return self._manifest["run_id"]

    @property
    def fingerprint(self) -> str | None:
        """The bound config fingerprint, if any."""
        return self._manifest["fingerprint"]

    @property
    def completed(self) -> bool:
        """Whether :meth:`mark_complete` was called for this run."""
        return bool(self._manifest["completed"])

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def bind_fingerprint(self, fingerprint: str) -> None:
        """Claim this store for runs with ``fingerprint``.

        A fresh store adopts it; a store already bound to the same
        fingerprint is a valid resume; any other fingerprint raises
        :class:`CheckpointMismatchError`.
        """
        recorded = self._manifest["fingerprint"]
        if recorded is None:
            self._manifest["fingerprint"] = fingerprint
            self._flush_manifest()
        elif recorded != fingerprint:
            raise CheckpointMismatchError(
                recorded, fingerprint, str(self._root)
            )

    def mark_stage(self, stage: str, key: str, sha256: str | None = None) -> None:
        """Append (or refresh) one stage-ledger entry in the manifest."""
        self._manifest["seq"] += 1
        entry = {
            "stage": stage,
            "key": key,
            "sha256": sha256,
            "seq": self._manifest["seq"],
        }
        self._manifest["stages"] = [
            item
            for item in self._manifest["stages"]
            if item["stage"] != stage
        ] + [entry]
        self._flush_manifest()

    def completed_stages(self) -> tuple[str, ...]:
        """Stage names in the ledger, in completion (seq) order."""
        return tuple(
            item["stage"]
            for item in sorted(
                self._manifest["stages"], key=lambda item: item["seq"]
            )
        )

    def mark_complete(self) -> None:
        """Record that the run finished end to end."""
        self._manifest["completed"] = True
        self._flush_manifest()

    # --- artifacts ---------------------------------------------------

    def _path_for(self, key: str) -> Path:
        return self._artifacts / _artifact_name(key)

    def save(self, key: str, value) -> dict:
        """Durably checkpoint ``value`` under ``key``.

        Returns the artifact metadata (``key``/``sha256``/``size``).
        The write is atomic: a concurrent or crashed save never
        exposes a partial artifact under the final name.
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        sha = hashlib.sha256(payload).hexdigest()
        meta = {"key": key, "sha256": sha, "size": len(payload)}
        header = json.dumps(meta, sort_keys=True).encode("utf-8")
        _atomic_write(
            self._path_for(key),
            _MAGIC + header + b"\n" + payload,
            self._durable,
        )
        self._tracer.counter("recovery.saves").inc()
        self._tracer.counter("recovery.save_bytes").inc(len(payload))
        return meta

    def load(self, key: str):
        """The checkpointed value, or ``None`` when absent or damaged.

        Every failure mode — missing file, bad magic, torn payload,
        checksum mismatch, unpicklable bytes — is treated as "not
        checkpointed": the caller recomputes, the run never crashes on
        a bad checkpoint. (``None`` is therefore not a storable value.)
        """
        path = self._path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self._tracer.counter("recovery.misses").inc()
            return None
        value = self._decode(raw, key)
        if value is None:
            self._tracer.counter("recovery.corrupt").inc()
            return None
        self._tracer.counter("recovery.loads").inc()
        return value

    @staticmethod
    def _decode(raw: bytes, key: str):
        if not raw.startswith(_MAGIC):
            return None
        try:
            header, payload = raw[len(_MAGIC):].split(b"\n", 1)
            meta = json.loads(header)
            if meta.get("key") != key:
                return None
            if len(payload) != meta["size"]:
                return None
            if hashlib.sha256(payload).hexdigest() != meta["sha256"]:
                return None
            return pickle.loads(payload)
        except Exception:  # noqa: BLE001 — any damage means "absent"
            return None

    # --- streaming artifacts -----------------------------------------
    #
    # The spill files of the out-of-core layer (repro.outofcore) are
    # written through these: the same atomic write-rename and checksum
    # guarantees as save/load, but the payload is a sequence of
    # length-prefixed pickle frames, so a run larger than memory is
    # written and read back one item at a time.

    def save_stream(self, key: str, items) -> dict:
        """Durably checkpoint an *iterable* as a framed artifact.

        Unlike :meth:`save`, the value is never materialized as one
        pickle: each item becomes a length-prefixed frame, with a
        running SHA-256 over the frame payloads sealed into a JSON
        trailer. The write is still atomic (temp + rename), so a crash
        mid-spill never leaves a half-visible run under the real name.
        Returns the artifact metadata (``key``/``sha256``/``size``/
        ``frames``).
        """
        path = self._path_for(key)
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
        digest = hashlib.sha256()
        frames = 0
        size = 0
        header = json.dumps(
            {"key": key, "stream": True}, sort_keys=True
        ).encode("utf-8")
        with open(tmp, "wb") as handle:
            handle.write(_STREAM_MAGIC)
            handle.write(header + b"\n")
            for item in items:
                payload = pickle.dumps(
                    item, protocol=pickle.HIGHEST_PROTOCOL
                )
                handle.write(_FRAME_HEAD.pack(len(payload)))
                handle.write(payload)
                digest.update(payload)
                frames += 1
                size += len(payload)
            handle.write(_FRAME_HEAD.pack(0))
            trailer = json.dumps(
                {"frames": frames, "sha256": digest.hexdigest()},
                sort_keys=True,
            ).encode("utf-8")
            handle.write(trailer)
            handle.flush()
            if self._durable:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._tracer.counter("recovery.saves").inc()
        self._tracer.counter("recovery.save_bytes").inc(size)
        return {
            "key": key,
            "sha256": digest.hexdigest(),
            "size": size,
            "frames": frames,
        }

    def load_stream(self, key: str):
        """An iterator over a streaming artifact, or ``None`` if absent.

        A missing file or damaged header means "not checkpointed"
        (``None``), exactly like :meth:`load`. Damage *inside* the
        stream — a torn frame or a trailer-checksum mismatch — raises
        :class:`RecoveryError` instead: by the time it is detected,
        items have already been yielded, and silently stopping would be
        indistinguishable from a complete, shorter stream.
        """
        path = self._path_for(key)
        try:
            with open(path, "rb") as handle:
                if handle.read(len(_STREAM_MAGIC)) != _STREAM_MAGIC:
                    self._tracer.counter("recovery.corrupt").inc()
                    return None
                header = json.loads(handle.readline())
                if header.get("key") != key:
                    self._tracer.counter("recovery.corrupt").inc()
                    return None
                offset = handle.tell()
        except OSError:
            self._tracer.counter("recovery.misses").inc()
            return None
        except Exception:  # noqa: BLE001 — damaged header means absent
            self._tracer.counter("recovery.corrupt").inc()
            return None
        self._tracer.counter("recovery.loads").inc()
        return self._stream_frames(path, key, offset)

    @staticmethod
    def _stream_frames(path: Path, key: str, offset: int):
        digest = hashlib.sha256()
        frames = 0
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                while True:
                    head = handle.read(_FRAME_HEAD.size)
                    if len(head) != _FRAME_HEAD.size:
                        raise RecoveryError(
                            f"streaming artifact {key!r}: torn frame head"
                        )
                    (length,) = _FRAME_HEAD.unpack(head)
                    if length == 0:
                        break
                    payload = handle.read(length)
                    if len(payload) != length:
                        raise RecoveryError(
                            f"streaming artifact {key!r}: torn frame"
                        )
                    digest.update(payload)
                    frames += 1
                    yield pickle.loads(payload)
                trailer = json.loads(handle.read())
        except RecoveryError:
            raise
        except Exception as error:  # noqa: BLE001 — any mid-stream damage
            raise RecoveryError(
                f"streaming artifact {key!r} is damaged: {error}"
            ) from error
        if (
            trailer.get("frames") != frames
            or trailer.get("sha256") != digest.hexdigest()
        ):
            raise RecoveryError(
                f"streaming artifact {key!r}: trailer checksum mismatch"
            )

    def delete(self, key: str) -> None:
        """Drop one artifact (missing is fine)."""
        try:
            self._path_for(key).unlink()
        except OSError:
            pass

    def keys(self) -> tuple[str, ...]:
        """Keys of every intact artifact on disk, sorted."""
        found = []
        for path in self._artifacts.glob("*.ckpt"):
            try:
                with open(path, "rb") as handle:
                    # Both magics share the "REPRO-CKPT" prefix but
                    # differ in length; read the longer and re-check.
                    head = handle.read(len(_STREAM_MAGIC))
                    if not (
                        head == _STREAM_MAGIC or head.startswith(_MAGIC)
                    ):
                        continue
                    if head != _STREAM_MAGIC:
                        handle.seek(len(_MAGIC))
                    header = handle.readline()
                meta = json.loads(header)
                found.append(meta["key"])
            except Exception:  # noqa: BLE001 — skip damaged files
                continue
        return tuple(sorted(found))

    def sub(self, prefix: str) -> "StoreView":
        """A view of this store under ``prefix.`` (namespaced keys)."""
        return StoreView(self, prefix)

    def __repr__(self) -> str:
        return (
            f"RunStore({str(self._root)!r}, run_id={self.run_id!r}, "
            f"stages={len(self._manifest['stages'])})"
        )


class StoreView:
    """A key-prefixed view of a :class:`RunStore`.

    Carries the same save/load/delete/keys surface, so execution
    layers take "a checkpoint store" without caring whether it is the
    root store or a namespace of one.
    """

    def __init__(self, store: RunStore, prefix: str) -> None:
        self._store = store
        self._prefix = prefix.rstrip(".") + "."

    @property
    def tracer(self):
        return self._store.tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._store.tracer = tracer

    def save(self, key: str, value) -> dict:
        return self._store.save(self._prefix + key, value)

    def load(self, key: str):
        return self._store.load(self._prefix + key)

    def save_stream(self, key: str, items) -> dict:
        return self._store.save_stream(self._prefix + key, items)

    def load_stream(self, key: str):
        return self._store.load_stream(self._prefix + key)

    def delete(self, key: str) -> None:
        self._store.delete(self._prefix + key)

    def keys(self) -> tuple[str, ...]:
        return tuple(
            key[len(self._prefix):]
            for key in self._store.keys()
            if key.startswith(self._prefix)
        )

    def sub(self, prefix: str) -> "StoreView":
        return StoreView(self._store, self._prefix + prefix)

    def __repr__(self) -> str:
        return f"StoreView({self._store!r}, prefix={self._prefix!r})"
