"""Phonetic encodings for sound-alike blocking keys.

Soundex is the classic phonetic blocking key for person and brand
names; it maps sound-alike spellings (``"smith"``/``"smyth"``) to the
same 4-character code so typo'd duplicates land in the same block.
"""

from __future__ import annotations

__all__ = ["soundex"]

_SOUNDEX_CODES = {
    "b": "1", "f": "1", "p": "1", "v": "1",
    "c": "2", "g": "2", "j": "2", "k": "2",
    "q": "2", "s": "2", "x": "2", "z": "2",
    "d": "3", "t": "3",
    "l": "4",
    "m": "5", "n": "5",
    "r": "6",
}
_SOUNDEX_SEPARATORS = {"h", "w"}


def soundex(word: str) -> str:
    """American Soundex code of ``word`` (e.g. ``"robert"`` → ``"R163"``).

    Non-alphabetic characters are ignored; an empty or fully
    non-alphabetic input yields ``"0000"``.
    """
    letters = [c for c in word.lower() if c.isalpha()]
    if not letters:
        return "0000"
    first = letters[0]
    code = [first.upper()]
    previous = _SOUNDEX_CODES.get(first, "")
    for letter in letters[1:]:
        digit = _SOUNDEX_CODES.get(letter, "")
        if digit and digit != previous:
            code.append(digit)
            if len(code) == 4:
                break
        # 'h'/'w' are transparent: the previous code survives across them,
        # while vowels reset it so repeated consonants re-emit.
        if letter not in _SOUNDEX_SEPARATORS:
            previous = digit
    return "".join(code).ljust(4, "0")
