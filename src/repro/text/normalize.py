"""Value and attribute-name normalization.

Sources publish the same information in wildly different surface forms:
``"Screen Size"`` vs ``"screen-size"``, ``"5.5 in"`` vs ``"13.97 cm"``,
``"black"`` vs ``"Black "``. The functions here perform the cheap,
lossless part of reconciliation — canonical casing, punctuation and
whitespace cleanup, numeric and unit parsing — leaving genuinely
semantic reconciliation to the schema-alignment stage.
"""

from __future__ import annotations

import re
import unicodedata
from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "NORMALIZE_CACHE_MAXSIZE",
    "canonical_value",
    "normalize_attribute_name",
    "normalize_value",
    "normalize_whitespace",
    "parse_measurement",
    "Measurement",
    "to_base_unit",
    "UNIT_CONVERSIONS",
]

#: Hard bound on the value-normalization memo cache. Long-running
#: corpora stream unboundedly many distinct values; an unbounded cache
#: would grow with them, so the memo is explicitly capped (LRU) and its
#: hit/miss ratio is observable via
#: :func:`repro.obs.observe_text_caches`.
NORMALIZE_CACHE_MAXSIZE = 16384

_NON_ALNUM = re.compile(r"[^a-z0-9]+")
_WHITESPACE = re.compile(r"\s+")
_NUMBER = re.compile(r"[-+]?\d+(?:[.,]\d+)?")
_MEASUREMENT = re.compile(
    r"^\s*(?P<number>[-+]?\d+(?:[.,]\d+)?)\s*(?P<unit>[a-zA-Z\"']*)\s*$"
)

#: Conversion factors from a unit's symbol to its dimension's base unit.
#: Lengths normalize to centimeters, weights to grams, frequency to hertz,
#: storage to gigabytes.
UNIT_CONVERSIONS: dict[str, tuple[str, float]] = {
    # length → cm
    "mm": ("cm", 0.1),
    "cm": ("cm", 1.0),
    "m": ("cm", 100.0),
    "in": ("cm", 2.54),
    "inch": ("cm", 2.54),
    "inches": ("cm", 2.54),
    '"': ("cm", 2.54),
    "ft": ("cm", 30.48),
    # weight → g
    "mg": ("g", 0.001),
    "g": ("g", 1.0),
    "kg": ("g", 1000.0),
    "oz": ("g", 28.3495),
    "lb": ("g", 453.592),
    "lbs": ("g", 453.592),
    # frequency → hz
    "hz": ("hz", 1.0),
    "khz": ("hz", 1e3),
    "mhz": ("hz", 1e6),
    "ghz": ("hz", 1e9),
    # storage → gb
    "mb": ("gb", 1.0 / 1024.0),
    "gb": ("gb", 1.0),
    "tb": ("gb", 1024.0),
}


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace to single spaces and strip the ends."""
    return _WHITESPACE.sub(" ", text).strip()


def normalize_attribute_name(name: str) -> str:
    """Canonicalize an attribute name for comparison.

    Lowercases, strips accents, and collapses every non-alphanumeric run
    to a single space: ``"Screen-Size (in.)"`` → ``"screen size in"``.
    This mirrors the normalization used in web-extraction studies when
    counting distinct attribute names.
    """
    decomposed = unicodedata.normalize("NFKD", name)
    ascii_only = decomposed.encode("ascii", "ignore").decode("ascii")
    return _NON_ALNUM.sub(" ", ascii_only.lower()).strip()


@lru_cache(maxsize=NORMALIZE_CACHE_MAXSIZE)
def normalize_value(value: str) -> str:
    """Canonicalize an attribute value for *string* comparison.

    Lowercases, strips accents, and collapses whitespace. Numbers and
    units are preserved textually; use :func:`parse_measurement` when a
    numeric interpretation is wanted.

    Results are memoized (the comparison hot path re-normalizes the
    same record values once per candidate pair otherwise); the cache is
    a safety net for callers that bypass the prepared-record fast path
    of :mod:`repro.linkage.engine`.
    """
    decomposed = unicodedata.normalize("NFKD", value)
    ascii_only = decomposed.encode("ascii", "ignore").decode("ascii")
    return normalize_whitespace(ascii_only.lower())


@dataclass(frozen=True)
class Measurement:
    """A parsed numeric value with an optional unit symbol."""

    value: float
    unit: str | None

    def in_base_unit(self) -> "Measurement":
        """Convert to the dimension's base unit if the unit is known."""
        if self.unit is None:
            return self
        converted = to_base_unit(self.value, self.unit)
        if converted is None:
            return self
        base_unit, base_value = converted
        return Measurement(base_value, base_unit)


def parse_measurement(value: str) -> Measurement | None:
    """Parse ``"5.5 in"`` / ``"2,5kg"`` / ``"42"`` into a measurement.

    Returns ``None`` when the value is not a single number with an
    optional trailing unit. Decimal commas are accepted.
    """
    match = _MEASUREMENT.match(value)
    if match is None:
        return None
    number = float(match.group("number").replace(",", "."))
    unit = match.group("unit").lower() or None
    return Measurement(number, unit)


def to_base_unit(value: float, unit: str) -> tuple[str, float] | None:
    """Convert ``value unit`` to its dimension's base unit.

    Returns ``(base_unit, converted_value)`` or ``None`` for unknown
    units.
    """
    entry = UNIT_CONVERSIONS.get(unit.lower())
    if entry is None:
        return None
    base_unit, factor = entry
    return base_unit, value * factor


def extract_numbers(value: str) -> list[float]:
    """All numbers appearing in ``value``, in order of appearance."""
    return [float(m.group().replace(",", ".")) for m in _NUMBER.finditer(value)]


def canonical_value(value: str) -> str:
    """Fully canonical value form for cross-source equality.

    Normalizes case/whitespace/accents, repairs decimal commas, and
    converts single measurements to their dimension's base unit with 4
    significant digits — so ``"5.5 in"``, ``"13,97 CM"``, and
    ``"13.97 cm"`` all canonicalize identically. Non-measurement
    values fall back to :func:`normalize_value`.
    """
    normalized = normalize_value(value)
    measurement = parse_measurement(normalized.replace(",", "."))
    if measurement is None:
        return normalized
    base = measurement.in_base_unit()
    magnitude = f"{base.value:.4g}"
    return f"{magnitude} {base.unit}" if base.unit else magnitude
