"""Corpus-level TF-IDF weighting and soft TF-IDF similarity.

Plain token overlap over-rewards frequent, uninformative tokens
(``"new"``, ``"black"``); TF-IDF down-weights them by corpus
frequency. Soft TF-IDF (Cohen, Ravikumar, Fienberg) additionally
credits *close* tokens (``"panasonc"`` ≈ ``"panasonic"``), combining
the robustness of edit distance with the discrimination of IDF.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Iterable, Mapping

from repro.core.errors import EmptyInputError
from repro.text.similarity import jaro_winkler_similarity
from repro.text.tokens import word_tokens

__all__ = ["TfidfModel", "soft_tfidf_similarity"]


class TfidfModel:
    """TF-IDF vectorizer fit on a corpus of documents.

    Parameters
    ----------
    documents:
        The corpus; each document is a string (word-tokenized) or a
        pre-tokenized iterable of tokens.

    IDF uses the smoothed form ``log((1 + N) / (1 + df)) + 1`` so unseen
    tokens still receive a positive (maximal) weight.
    """

    def __init__(self, documents: Iterable[str | Iterable[str]]) -> None:
        document_frequency: Counter[str] = Counter()
        n_documents = 0
        for document in documents:
            tokens = self._tokenize(document)
            document_frequency.update(set(tokens))
            n_documents += 1
        if n_documents == 0:
            raise EmptyInputError("TfidfModel requires at least one document")
        self._n_documents = n_documents
        self._idf: dict[str, float] = {
            token: math.log((1 + n_documents) / (1 + df)) + 1.0
            for token, df in document_frequency.items()
        }
        self._default_idf = math.log(1 + n_documents) + 1.0

    @staticmethod
    def _tokenize(document: str | Iterable[str]) -> list[str]:
        if isinstance(document, str):
            return word_tokens(document)
        return list(document)

    @property
    def n_documents(self) -> int:
        """Number of documents the model was fit on."""
        return self._n_documents

    def idf(self, token: str) -> float:
        """IDF weight of ``token`` (maximal for unseen tokens)."""
        return self._idf.get(token, self._default_idf)

    def vector(self, document: str | Iterable[str]) -> dict[str, float]:
        """L2-normalized TF-IDF vector of ``document``."""
        counts = Counter(self._tokenize(document))
        weights = {
            token: count * self.idf(token) for token, count in counts.items()
        }
        norm = math.sqrt(sum(w * w for w in weights.values()))
        if norm == 0.0:
            return {}
        return {token: w / norm for token, w in weights.items()}

    def similarity(
        self, a: str | Iterable[str], b: str | Iterable[str]
    ) -> float:
        """Cosine similarity of the two documents' TF-IDF vectors."""
        vec_a = self.vector(a)
        vec_b = self.vector(b)
        if not vec_a and not vec_b:
            return 1.0
        shared = vec_a.keys() & vec_b.keys()
        return sum(vec_a[t] * vec_b[t] for t in shared)


def soft_tfidf_similarity(
    a: str,
    b: str,
    model: TfidfModel,
    inner: Callable[[str, str], float] = jaro_winkler_similarity,
    threshold: float = 0.9,
) -> float:
    """Soft TF-IDF: TF-IDF cosine where tokens match softly via ``inner``.

    A token pair contributes when ``inner(token_a, token_b) >=
    threshold``, weighted by both tokens' normalized TF-IDF weight and
    the inner similarity itself. Symmetrized by averaging both
    directions.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    vec_a = model.vector(a)
    vec_b = model.vector(b)
    if not vec_a and not vec_b:
        return 1.0
    if not vec_a or not vec_b:
        return 0.0

    def directed(
        from_vec: Mapping[str, float], to_vec: Mapping[str, float]
    ) -> float:
        total = 0.0
        for token_a, weight_a in from_vec.items():
            best_sim = 0.0
            best_weight = 0.0
            for token_b, weight_b in to_vec.items():
                sim = inner(token_a, token_b)
                if sim >= threshold and sim > best_sim:
                    best_sim = sim
                    best_weight = weight_b
            total += weight_a * best_weight * best_sim
        return total

    return (directed(vec_a, vec_b) + directed(vec_b, vec_a)) / 2.0
