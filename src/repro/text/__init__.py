"""Text substrate: normalization, tokenizers, phonetics, similarities."""

from repro.text.normalize import (
    Measurement,
    canonical_value,
    normalize_attribute_name,
    normalize_value,
    normalize_whitespace,
    parse_measurement,
    to_base_unit,
)
from repro.text.phonetic import soundex
from repro.text.similarity import (
    cosine_similarity,
    damerau_levenshtein_distance,
    dice_similarity,
    exact_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    measurement_similarity,
    monge_elkan_similarity,
    numeric_similarity,
    overlap_coefficient,
    product_name_similarity,
)
from repro.text.tfidf import TfidfModel, soft_tfidf_similarity
from repro.text.tokens import (
    qgrams,
    shingles,
    token_counts,
    word_token_tuple,
    word_tokens,
)

#: The text layer's bounded memo caches, by report name. This is the
#: registry :func:`repro.obs.observe_text_caches` reads to publish
#: hit/miss gauges; anything added here shows up in run reports.
MEMO_CACHES = {
    "normalize_value": normalize_value,
    "word_tokens": word_token_tuple,
}

__all__ = [
    "MEMO_CACHES",
    "Measurement",
    "TfidfModel",
    "canonical_value",
    "cosine_similarity",
    "damerau_levenshtein_distance",
    "dice_similarity",
    "exact_similarity",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "measurement_similarity",
    "monge_elkan_similarity",
    "normalize_attribute_name",
    "normalize_value",
    "normalize_whitespace",
    "numeric_similarity",
    "overlap_coefficient",
    "parse_measurement",
    "product_name_similarity",
    "qgrams",
    "shingles",
    "soft_tfidf_similarity",
    "soundex",
    "to_base_unit",
    "token_counts",
    "word_tokens",
]
