"""Tokenizers used by blocking, schema matching, and similarity.

Three token granularities cover all consumers in the library:

* **word tokens** — for token blocking and set similarities;
* **q-grams** — character n-grams for typo-robust blocking and matching;
* **shingles** — word n-grams for longer text fields.
"""

from __future__ import annotations

import re
from collections import Counter
from functools import lru_cache
from typing import Iterable

__all__ = [
    "TOKEN_CACHE_MAXSIZE",
    "word_tokens",
    "word_token_tuple",
    "qgrams",
    "shingles",
    "token_counts",
]

_WORD = re.compile(r"[a-z0-9]+")

#: Hard bound on the tokenization memo cache — capped for the same
#: reason as :data:`repro.text.normalize.NORMALIZE_CACHE_MAXSIZE`, and
#: likewise observable via :func:`repro.obs.observe_text_caches`.
TOKEN_CACHE_MAXSIZE = 16384


@lru_cache(maxsize=TOKEN_CACHE_MAXSIZE)
def word_token_tuple(text: str) -> tuple[str, ...]:
    """Memoized, immutable variant of :func:`word_tokens`.

    The comparison hot path tokenizes the same record values once per
    candidate pair; caching an immutable tuple makes repeat calls free
    without risking aliasing bugs from a shared mutable list.
    """
    return tuple(_WORD.findall(text.lower()))


def word_tokens(text: str) -> list[str]:
    """Lowercased alphanumeric word tokens, in order of appearance."""
    return list(word_token_tuple(text))


def qgrams(text: str, q: int = 3, pad: bool = True) -> list[str]:
    """Character q-grams of ``text``.

    With ``pad=True`` (the default) the string is padded with ``q - 1``
    ``#``/``$`` sentinels on each side, so that prefixes and suffixes
    generate distinguishable grams — the standard construction for
    q-gram blocking.

    >>> qgrams("abc", q=2)
    ['#a', 'ab', 'bc', 'c$']
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    lowered = text.lower()
    if pad and q > 1:
        lowered = "#" * (q - 1) + lowered + "$" * (q - 1)
    if len(lowered) < q:
        return [lowered] if lowered else []
    return [lowered[i : i + q] for i in range(len(lowered) - q + 1)]


def shingles(text: str, n: int = 2) -> list[str]:
    """Word n-grams of ``text``.

    >>> shingles("big data integration", n=2)
    ['big data', 'data integration']
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    words = word_tokens(text)
    if len(words) < n:
        return [" ".join(words)] if words else []
    return [" ".join(words[i : i + n]) for i in range(len(words) - n + 1)]


def token_counts(tokens: Iterable[str]) -> Counter[str]:
    """Multiset view of a token sequence (for cosine/TF-IDF)."""
    return Counter(tokens)
