"""String and value similarity functions.

Every function returns a similarity in ``[0, 1]`` (1 = identical) so
that comparators can mix them freely. Edit-distance primitives are also
exposed raw for callers that need counts.

The toolbox covers the families the record-linkage literature relies
on: edit-based (Levenshtein, Damerau, Jaro, Jaro-Winkler), token-based
(Jaccard, Dice, overlap, cosine), hybrid (Monge-Elkan), and typed
(numeric with relative tolerance, measurements with unit conversion).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Iterable, Sequence

from repro.text.normalize import parse_measurement
from repro.text.tokens import word_tokens

__all__ = [
    "levenshtein_distance",
    "damerau_levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "jaccard_similarity",
    "dice_similarity",
    "overlap_coefficient",
    "cosine_similarity",
    "monge_elkan_similarity",
    "monge_elkan_tokens",
    "numeric_similarity",
    "measurement_similarity",
    "exact_similarity",
    "product_name_similarity",
    "product_name_similarity_tokens",
]

StringSimilarity = Callable[[str, str], float]


def levenshtein_distance(a: str, b: str) -> int:
    """Minimum number of single-character edits transforming ``a`` → ``b``."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) > len(b):
        a, b = b, a
    previous = list(range(len(a) + 1))
    for j, cb in enumerate(b, start=1):
        current = [j]
        for i, ca in enumerate(a, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(
                    previous[i] + 1,      # deletion
                    current[i - 1] + 1,   # insertion
                    previous[i - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def damerau_levenshtein_distance(a: str, b: str) -> int:
    """Edit distance that additionally allows adjacent transpositions."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Optimal string alignment variant: O(len(a) * len(b)), three rows.
    two_ago: list[int] | None = None
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            best = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + cost,
            )
            if (
                two_ago is not None
                and i > 1
                and j > 1
                and ca == b[j - 2]
                and a[i - 2] == cb
            ):
                best = min(best, two_ago[j - 2] + 1)
            current.append(best)
        two_ago, previous = previous, current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Levenshtein distance normalized to a similarity in [0, 1]."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity: matches within half the longer length, plus
    transposition penalty."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        low = max(0, i - window)
        high = min(len(b), i + window + 1)
        for j in range(low, high):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = True
                b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    a_matched = [c for c, flag in zip(a, a_flags) if flag]
    b_matched = [c for c, flag in zip(b, b_flags) if flag]
    transpositions = (
        sum(ca != cb for ca, cb in zip(a_matched, b_matched)) // 2
    )
    return (
        matches / len(a)
        + matches / len(b)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro similarity boosted for a shared prefix of up to 4 characters."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError(
            f"prefix_weight must be in [0, 0.25], got {prefix_weight}"
        )
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def _as_set(value: str | Iterable[str]) -> set[str]:
    """Token set of ``value``.

    Strings are word-tokenized; any other iterable is treated as
    *already tokenized* and used verbatim — duplicates collapse, but
    tokens are never re-tokenized, re-cased, or filtered, so callers
    that pass empty-string or non-ASCII tokens get exactly those tokens
    as set elements (the tokenizer itself never produces either: it
    emits only non-empty ``[a-z0-9]+`` runs).
    """
    if isinstance(value, str):
        return set(word_tokens(value))
    return set(value)


def jaccard_similarity(a: str | Iterable[str], b: str | Iterable[str]) -> float:
    """|A ∩ B| / |A ∪ B| over word tokens (or pre-tokenized iterables)."""
    set_a, set_b = _as_set(a), _as_set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def dice_similarity(a: str | Iterable[str], b: str | Iterable[str]) -> float:
    """2|A ∩ B| / (|A| + |B|) over word tokens."""
    set_a, set_b = _as_set(a), _as_set(b)
    if not set_a and not set_b:
        return 1.0
    total = len(set_a) + len(set_b)
    if total == 0:
        return 0.0
    return 2.0 * len(set_a & set_b) / total


def overlap_coefficient(a: str | Iterable[str], b: str | Iterable[str]) -> float:
    """|A ∩ B| / min(|A|, |B|) over word tokens."""
    set_a, set_b = _as_set(a), _as_set(b)
    if not set_a and not set_b:
        return 1.0
    smaller = min(len(set_a), len(set_b))
    if smaller == 0:
        return 0.0
    return len(set_a & set_b) / smaller


def _as_counts(value: Counter[str] | str | Iterable[str]) -> Counter[str]:
    """Token-count view of ``value``.

    Strings are word-tokenized; Counters pass through; any other
    iterable is treated as *already tokenized* and counted verbatim
    (duplicates keep their multiplicity). Historically a pre-tokenized
    list was handed to the tokenizer, which crashed on non-string
    input — token iterables are now first-class, matching ``_as_set``.
    """
    if isinstance(value, Counter):
        return value
    if isinstance(value, str):
        return Counter(word_tokens(value))
    return Counter(value)


def cosine_similarity(
    a: Counter[str] | str | Iterable[str],
    b: Counter[str] | str | Iterable[str],
) -> float:
    """Cosine of token-count vectors (strings are word-tokenized,
    non-Counter iterables are counted as pre-tokenized input)."""
    counts_a = _as_counts(a)
    counts_b = _as_counts(b)
    if not counts_a and not counts_b:
        return 1.0
    if not counts_a or not counts_b:
        return 0.0
    shared = counts_a.keys() & counts_b.keys()
    dot = sum(counts_a[t] * counts_b[t] for t in shared)
    norm_a = math.sqrt(sum(v * v for v in counts_a.values()))
    norm_b = math.sqrt(sum(v * v for v in counts_b.values()))
    return dot / (norm_a * norm_b)


def monge_elkan_tokens(
    tokens_a: Sequence[str],
    tokens_b: Sequence[str],
    inner: StringSimilarity = jaro_winkler_similarity,
) -> float:
    """Monge-Elkan over pre-tokenized inputs (the prepared fast path).

    Identical arithmetic to :func:`monge_elkan_similarity`; callers that
    have already tokenized (e.g. prepared records) skip re-tokenizing.
    """
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0

    def directed(xs: Sequence[str], ys: Sequence[str]) -> float:
        return sum(max(inner(x, y) for y in ys) for x in xs) / len(xs)

    return (directed(tokens_a, tokens_b) + directed(tokens_b, tokens_a)) / 2.0


def monge_elkan_similarity(
    a: str,
    b: str,
    inner: StringSimilarity = jaro_winkler_similarity,
) -> float:
    """Average best inner similarity of each token of ``a`` against ``b``.

    Asymmetric in principle; this implementation symmetrizes by
    averaging both directions, which is the common practice.
    """
    return monge_elkan_tokens(word_tokens(a), word_tokens(b), inner)


def numeric_similarity(a: float, b: float, tolerance: float = 0.1) -> float:
    """1 at equality, linearly decaying to 0 at ``tolerance`` relative gap.

    The gap is relative to the larger magnitude, so the function is
    symmetric and scale-free. ``tolerance=0.1`` means values 10% apart
    (or more) score 0.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    if a == b:
        return 1.0
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return 1.0
    relative_gap = abs(a - b) / scale
    return max(0.0, 1.0 - relative_gap / tolerance)


def measurement_similarity(a: str, b: str, tolerance: float = 0.05) -> float:
    """Similarity of two measurement strings after unit normalization.

    ``"5.5 in"`` vs ``"13.97 cm"`` score 1.0. Falls back to normalized
    Levenshtein when either side fails to parse as a measurement, so it
    is safe to apply to arbitrary value strings.
    """
    meas_a = parse_measurement(a)
    meas_b = parse_measurement(b)
    if meas_a is None or meas_b is None:
        return levenshtein_similarity(a.lower().strip(), b.lower().strip())
    base_a = meas_a.in_base_unit()
    base_b = meas_b.in_base_unit()
    if base_a.unit != base_b.unit:
        return 0.0
    return numeric_similarity(base_a.value, base_b.value, tolerance=tolerance)


def exact_similarity(a: str, b: str) -> float:
    """1.0 iff the strings are identical, else 0.0."""
    return 1.0 if a == b else 0.0


def _numeric_token_set(tokens: Iterable[str]) -> set[str]:
    """The subset of ``tokens`` containing at least one digit.

    ``str.isdigit`` is intentionally used per character, so tokens
    carrying *any* Unicode digit (including non-ASCII digits like
    ``"٣"``) count as numeric when handed pre-tokenized input, even
    though the built-in tokenizer itself only ever emits ASCII
    ``[a-z0-9]+`` tokens. Empty-string tokens are never numeric.
    """
    return {
        token
        for token in tokens
        if any(character.isdigit() for character in token)
    }


def _numeric_tokens(text: str) -> set[str]:
    return _numeric_token_set(word_tokens(text))


def product_name_similarity_tokens(
    tokens_a: Sequence[str],
    numbers_a: frozenset[str] | set[str],
    tokens_b: Sequence[str],
    numbers_b: frozenset[str] | set[str],
    inner: StringSimilarity = jaro_winkler_similarity,
) -> float:
    """Model-number-aware name similarity over pre-tokenized inputs.

    Identical arithmetic to :func:`product_name_similarity`; ``numbers_*``
    must be the numeric-token subsets of ``tokens_*`` (see
    :func:`repro.linkage.engine.prepare_records`, which caches both).
    ``inner`` replaces the token-level Jaro-Winkler in both the
    Monge-Elkan base and the model-number matching — the hook the
    columnar batch kernels use to inject a memoized (but numerically
    identical) token similarity.
    """
    base = monge_elkan_tokens(tokens_a, tokens_b, inner)
    if not numbers_a and not numbers_b:
        return base
    if not numbers_a or not numbers_b:
        return base * 0.7
    matched = 0
    for token_a in numbers_a:
        if any(
            inner(token_a, token_b) >= 0.8
            for token_b in numbers_b
        ):
            matched += 1
    overlap = matched / max(len(numbers_a), len(numbers_b))
    return base * (0.25 + 0.75 * overlap)


def product_name_similarity(a: str, b: str) -> float:
    """Name similarity where mismatched model numbers are near-fatal.

    Product names share long brand/series prefixes ("canon pro 512" vs
    "canon pro 3"), so plain token similarity over-matches. This
    measure starts from Monge-Elkan and multiplies in the agreement of
    the *numeric* tokens (soft-matched with Jaro-Winkler ≥ 0.8 so a
    typo'd digit still counts): names whose model numbers disagree are
    pushed well below any sensible match threshold.
    """
    tokens_a = word_tokens(a)
    tokens_b = word_tokens(b)
    return product_name_similarity_tokens(
        tokens_a, _numeric_token_set(tokens_a),
        tokens_b, _numeric_token_set(tokens_b),
    )
