"""Synthetic serving traffic: deterministic mixed read/write workloads.

The benchmark and the latency gate need the same thing: a reproducible
stream of ``ingest`` / ``match`` / ``get`` operations against a
:class:`~repro.serve.service.ResolutionService`, with per-operation
wall-clock latencies collected for percentile reporting. Everything is
driven by a seeded :class:`random.Random`, so two runs over the same
record pool issue the identical operation sequence.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record

__all__ = ["TrafficConfig", "TrafficResult", "percentile", "run_traffic"]


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one synthetic workload.

    Fractions pick the operation kind per step: ``ingest_fraction`` of
    steps ingest the next record from the pool, ``get_fraction`` fetch
    a known entity, and the rest issue read-only ``match`` probes.
    When the ingest pool runs dry, ingest steps degrade to matches.
    """

    n_ops: int = 1000
    ingest_fraction: float = 0.3
    get_fraction: float = 0.35
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_ops < 1:
            raise ConfigurationError("n_ops must be >= 1")
        if not 0.0 <= self.ingest_fraction <= 1.0:
            raise ConfigurationError("ingest_fraction must be in [0, 1]")
        if not 0.0 <= self.get_fraction <= 1.0 - self.ingest_fraction:
            raise ConfigurationError(
                "get_fraction must be in [0, 1 - ingest_fraction]"
            )


@dataclass
class TrafficResult:
    """Latency samples (seconds) per operation kind."""

    latencies: dict = field(
        default_factory=lambda: {"ingest": [], "match": [], "get": []}
    )
    ingested: int = 0
    matches_found: int = 0
    entities_seen: int = 0

    @property
    def n_ops(self) -> int:
        return sum(len(samples) for samples in self.latencies.values())

    def query_latencies(self) -> list[float]:
        """All read-path samples (``match`` + ``get``) pooled."""
        return self.latencies["match"] + self.latencies["get"]

    def summary(self) -> dict:
        """Percentile summary (milliseconds), ready for BENCH JSON."""
        queries = self.query_latencies()
        return {
            "ops": self.n_ops,
            "ingested": self.ingested,
            "queries": len(queries),
            "matches_found": self.matches_found,
            "query_p50_ms": percentile(queries, 50.0) * 1000.0,
            "query_p99_ms": percentile(queries, 99.0) * 1000.0,
            "ingest_p50_ms": percentile(self.latencies["ingest"], 50.0)
            * 1000.0,
            "ingest_p99_ms": percentile(self.latencies["ingest"], 99.0)
            * 1000.0,
        }


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (linear interpolation); 0.0 if empty."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError("percentile must be in [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def run_traffic(
    service,
    pool: Sequence[Record],
    config: TrafficConfig | None = None,
    clock=time.perf_counter,
) -> TrafficResult:
    """Drive ``service`` with a seeded mixed read/write workload.

    ``pool`` feeds the ingest side in order; ``match`` probes reuse the
    attributes of an already-ingested record under a fresh query id
    (so they exercise the candidate and cache paths without mutating
    anything); ``get`` fetches a uniformly chosen known entity id.
    """
    config = config or TrafficConfig()
    rng = random.Random(config.seed)
    result = TrafficResult()
    ingested: list[Record] = []
    entity_ids: list[str] = []
    cursor = 0
    for step in range(config.n_ops):
        roll = rng.random()
        kind = "match"
        if roll < config.ingest_fraction and cursor < len(pool):
            kind = "ingest"
        elif roll < config.ingest_fraction + config.get_fraction:
            kind = "get"
        if kind != "ingest" and not ingested:
            if cursor >= len(pool):
                break
            kind = "ingest"
        if kind == "ingest":
            record = pool[cursor]
            cursor += 1
            start = clock()
            outcome = service.ingest(record)
            result.latencies["ingest"].append(clock() - start)
            ingested.append(record)
            result.ingested += 1
            if outcome.entity_id is not None:
                entity_ids.append(outcome.entity_id)
        elif kind == "get":
            entity_id = entity_ids[rng.randrange(len(entity_ids))]
            start = clock()
            entity = service.get(entity_id)
            result.latencies["get"].append(clock() - start)
            if entity is not None:
                result.entities_seen += 1
        else:
            base = ingested[rng.randrange(len(ingested))]
            probe = Record(
                record_id=f"query/{step}",
                source_id="traffic-query",
                attributes=base.attributes,
            )
            start = clock()
            entity_id = service.match(probe)
            result.latencies["match"].append(clock() - start)
            if entity_id is not None:
                result.matches_found += 1
    return result
