"""The durable entity store: a resolved-entity projection that survives
process death.

Following the reconciliation pattern (sources *observe*, resolutions
*decide*, projections *serve*), the :class:`EntityStore` is the
projection layer's disk state. It owns two things:

1. **The record log** — ``records.jsonl``, an append-only JSONL file of
   every ingested record (one fsynced line per ingest, torn tails
   repaired on open). This is the source of truth for record payloads;
   random access goes through
   :class:`repro.outofcore.IndexedRecordStore` over the same file.
2. **Generation artifacts** — each background re-resolution saves its
   full resolved-entity projection (entity id → member record ids +
   fused attributes + provenance + confidence) as one checksummed
   :class:`repro.recovery.RunStore` artifact, stamped with the log
   *watermark* it covers. A tiny ``current`` pointer artifact names the
   live generation; because :meth:`RunStore.save` is atomic
   write-rename, publishing a generation is a single atomic swap.

Recovery contract: a restart loads the current generation artifact
(byte-identical to what was saved — checksums reject damage) and
replays the log suffix past its watermark through the same
deterministic incremental path the live service used, reconstructing
the exact pre-crash projection. A crash mid-ingest loses at most the
record whose log append had not completed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.io.stream import record_from_row
from repro.obs import NULL_TRACER
from repro.outofcore import IndexedRecordStore
from repro.recovery import RunStore

__all__ = ["EntityStore", "entity_id_for", "record_to_row"]

_LOG_NAME = "records.jsonl"
_CURRENT_KEY = "current"


def entity_id_for(member_ids) -> str:
    """Canonical entity id of a cluster: its smallest member record id.

    Deterministic across the batch and incremental paths — equal
    clusters always project to equal entity ids, and a merge's id is
    the min over the union.
    """
    return f"ent:{min(member_ids)}"


def record_to_row(record: Record) -> dict:
    """The JSONL row for one record (inverse of ``record_from_row``)."""
    row = {
        "record_id": record.record_id,
        "source_id": record.source_id,
        "attributes": dict(record.attributes),
    }
    if record.timestamp is not None:
        row["timestamp"] = record.timestamp
    return row


class EntityStore:
    """Durable state of one serving deployment, under one directory.

    Parameters
    ----------
    root:
        Directory to create/open. A fresh directory is an empty store;
        an existing one reopens the log and generation artifacts left
        by a previous process (crashed or not).
    fingerprint:
        Optional config fingerprint bound to the underlying
        :class:`RunStore` — reopening under a different service
        configuration raises
        :class:`~repro.recovery.CheckpointMismatchError` instead of
        silently mixing two deployments' state.
    tracer:
        An :class:`repro.obs.Tracer` for ``serve.*`` and ``recovery.*``
        counters (default no-op).
    durable:
        When ``True`` (default) every log append and artifact write
        fsyncs; ``False`` keeps atomicity but trades crash durability
        for speed (tests and benchmarks).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        fingerprint: str | None = None,
        tracer=None,
        durable: bool = True,
    ) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._durable = durable
        self._run_store = RunStore(
            self._root,
            run_id="serve",
            fingerprint=fingerprint,
            tracer=self._tracer,
            durable=durable,
        )
        self._view = self._run_store.sub("serve")
        self._log_path = self._root / _LOG_NAME
        self._n_log = self._repair_log()

    # --- the record log ----------------------------------------------

    def _repair_log(self) -> int:
        """Count intact log rows, truncating any torn tail in place.

        A crash mid-append can leave a partial last line; everything
        before it is intact (one ``write`` call per row). The partial
        tail is cut off so offset-indexed readers see only whole rows.
        """
        if not self._log_path.exists():
            self._log_path.touch()
            return 0
        valid_bytes = 0
        rows = 0
        with self._log_path.open("rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    break
                stripped = line.strip()
                if stripped:
                    try:
                        row = json.loads(stripped)
                        row["record_id"]
                    except (ValueError, KeyError, TypeError):
                        break
                    rows += 1
                valid_bytes += len(line)
        if valid_bytes < self._log_path.stat().st_size:
            with self._log_path.open("r+b") as handle:
                handle.truncate(valid_bytes)
            self._tracer.counter("serve.log_repairs").inc()
        return rows

    @property
    def root(self) -> Path:
        return self._root

    @property
    def log_path(self) -> Path:
        """The append-only ``records.jsonl`` ingest log."""
        return self._log_path

    @property
    def log_length(self) -> int:
        """Number of records durably appended so far."""
        return self._n_log

    @property
    def run_store(self) -> RunStore:
        """The underlying checkpoint store (manifest, artifacts)."""
        return self._run_store

    def append_record(self, record: Record) -> int:
        """Durably append one record; returns its log position.

        One ``write`` call per row keeps the append atomic under
        ``O_APPEND``; with ``durable=True`` the row is fsynced before
        this returns, so an acknowledged ingest survives ``kill -9``.
        """
        line = (
            json.dumps(record_to_row(record), sort_keys=True) + "\n"
        ).encode("utf-8")
        with self._log_path.open("ab") as handle:
            handle.write(line)
            handle.flush()
            if self._durable:
                os.fsync(handle.fileno())
        position = self._n_log
        self._n_log += 1
        self._tracer.counter("serve.log_appends").inc()
        return position

    def open_record_store(self, budget=None) -> IndexedRecordStore:
        """Random access over the log via an offset index.

        The returned :class:`IndexedRecordStore` snapshots the log as
        of now — records appended later need a fresh open. ``budget``
        is an optional :class:`repro.outofcore.MemoryBudget` bounding
        its read cache.
        """
        return IndexedRecordStore(self._log_path, budget=budget)

    def records_from(self, start: int, stop: int | None = None):
        """Yield log records with positions in ``[start, stop)``.

        The replay path: a restart reloads the current generation and
        feeds this suffix back through the incremental linker.
        """
        if stop is None:
            stop = self._n_log
        with self._log_path.open(encoding="utf-8") as handle:
            position = 0
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                if position >= stop:
                    break
                if position >= start:
                    yield record_from_row(json.loads(line))
                position += 1

    # --- generation artifacts ----------------------------------------

    def save_generation(
        self, generation: int, watermark: int, entities: dict
    ) -> dict:
        """Durably save one generation's full projection.

        ``entities`` maps entity id to a plain dict with ``members``,
        ``attributes``, ``provenance``, and ``confidence``; the payload
        is saved as one atomic, checksummed artifact and recorded in
        the manifest's stage ledger. The generation is not live until
        :meth:`publish_generation`.
        """
        payload = {
            "generation": generation,
            "watermark": watermark,
            "entities": entities,
        }
        meta = self._view.save(f"generation.{generation}", payload)
        self._run_store.mark_stage(
            f"serve.generation.{generation}",
            meta["key"],
            meta["sha256"],
        )
        return meta

    def publish_generation(self, generation: int) -> None:
        """Atomically point ``current`` at ``generation``.

        The pointer artifact is written via atomic write-rename, so a
        crash during publish leaves either the old or the new pointer —
        never a torn one. Refuses to publish a generation whose
        artifact is absent or damaged.
        """
        if self.load_generation(generation) is None:
            raise ConfigurationError(
                f"generation {generation} has no intact artifact; "
                "save it before publishing"
            )
        self._view.save(_CURRENT_KEY, {"generation": generation})
        self._tracer.counter("serve.generation_swaps").inc()

    def current_generation(self) -> int | None:
        """The published generation number, or ``None`` for a fresh store."""
        pointer = self._view.load(_CURRENT_KEY)
        if pointer is None:
            return None
        return pointer["generation"]

    def load_generation(self, generation: int) -> dict | None:
        """One generation's saved projection, or ``None`` if absent/damaged."""
        return self._view.load(f"generation.{generation}")

    def generation_bytes(self, generation: int) -> bytes | None:
        """Canonical JSON bytes of a saved generation's projection.

        The byte-identity witness the crash tests compare: two stores
        holding the same completed generation must return exactly equal
        bytes.
        """
        payload = self.load_generation(generation)
        if payload is None:
            return None
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def __repr__(self) -> str:
        return (
            f"EntityStore({str(self._root)!r}, log={self._n_log}, "
            f"current={self.current_generation()})"
        )
