"""Online entity-resolution serving: the projection layer made live.

Everything before this package is batch machinery — fast, resilient,
crash-recoverable, but offline. ``repro.serve`` turns it into a
serving system following the reconciliation pattern: *sources observe,
resolutions decide, projections serve*.

* :class:`EntityStore` — the durable resolved-entity projection: an
  fsynced append-only record log (random access via
  :class:`repro.outofcore.IndexedRecordStore`) plus generation-stamped
  projection artifacts in a :class:`repro.recovery.RunStore`, with an
  atomic ``current`` pointer. A restart reloads the exact pre-crash
  state for completed generations.
* :class:`ResolutionService` — the query/ingest API: ``ingest`` routes
  through the incremental linker and online fusion (never the batch
  pipeline), ``match``/``get``/``entities`` read a single consistent
  generation, and a background :meth:`~ResolutionService.refresh` runs
  full batch re-resolution into a *new* generation that readers swap
  to atomically.
* :class:`GenerationCache` — the read-path LRU keyed by generation
  stamp, so re-resolution (and every ingest) invalidates cached
  answers by construction.
* :func:`run_traffic` — the deterministic synthetic workload driver
  behind ``benchmarks/bench_e23_serve.py`` and the CI latency gate.

Service health is observable through the ``serve.*`` counters (ingests,
queries, cache hits/misses, generation swaps, quarantined ingests, …)
on any attached :class:`repro.obs.Tracer`.
"""

from repro.serve.cache import MISS, GenerationCache
from repro.serve.service import (
    IngestResult,
    ResolutionService,
    ResolvedEntity,
)
from repro.serve.store import EntityStore, entity_id_for, record_to_row
from repro.serve.traffic import (
    TrafficConfig,
    TrafficResult,
    percentile,
    run_traffic,
)

__all__ = [
    "EntityStore",
    "GenerationCache",
    "IngestResult",
    "MISS",
    "ResolutionService",
    "ResolvedEntity",
    "TrafficConfig",
    "TrafficResult",
    "entity_id_for",
    "percentile",
    "record_to_row",
    "run_traffic",
]
