"""The serving read-path cache: generation-keyed, invalidated by design.

Cache invalidation is where serving caches rot; this one sidesteps the
problem structurally. Every entry is keyed by ``(version, key)`` where
``version`` is the *generation stamp* of the store state the value was
computed from — ``(generation, mutation_count)``. A background
re-resolution swaps the generation, an ingest bumps the mutation count,
and either way every previously cached entry simply stops being
addressable: there is no invalidation code to get wrong, stale entries
age out of the LRU on their own.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.errors import ConfigurationError
from repro.obs import NULL_TRACER

__all__ = ["GenerationCache", "MISS"]


class _Miss:
    """Sentinel distinguishing "not cached" from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MISS"


#: Returned by :meth:`GenerationCache.get` when the key is absent
#: (``None`` is a legitimate cached value: "no matching entity").
MISS = _Miss()


class GenerationCache:
    """A bounded LRU keyed by ``(version, key)``.

    ``version`` is opaque to the cache — the service passes its
    generation stamp — so entries written under one store state can
    never answer reads against another. Hits and misses are emitted on
    the ``serve.cache_hits`` / ``serve.cache_misses`` counters.
    """

    def __init__(self, capacity: int = 1024, tracer=None) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {capacity!r}"
            )
        self._capacity = capacity
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._entries: OrderedDict[tuple, object] = OrderedDict()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, version, key):
        """The cached value for ``key`` under ``version``, or :data:`MISS`."""
        slot = (version, key)
        if slot in self._entries:
            self._entries.move_to_end(slot)
            self._tracer.counter("serve.cache_hits").inc()
            return self._entries[slot]
        self._tracer.counter("serve.cache_misses").inc()
        return MISS

    def put(self, version, key, value) -> None:
        """Cache ``value`` for ``key`` under ``version`` (LRU-evicting)."""
        slot = (version, key)
        self._entries[slot] = value
        self._entries.move_to_end(slot)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"GenerationCache(capacity={self._capacity}, "
            f"entries={len(self._entries)})"
        )
