"""The online entity-resolution service: query/ingest over a live store.

:class:`ResolutionService` is the projection layer of the
reconciliation pattern made user-facing. Four calls —

* ``ingest(record)`` — durably append the record, link it through the
  :class:`~repro.linkage.incremental.IncrementalLinker` (never the
  batch pipeline), and re-fuse the touched entity with
  :class:`~repro.fusion.online.OnlineFusion`;
* ``match(record)`` — read-only: which entity would this record join?
* ``get(entity_id)`` — the resolved entity: members, fused attributes,
  provenance, confidence;
* ``entities()`` — every resolved entity.

Writes and reads share one lock, so every read observes a consistent
*generation*: the full linker + entity projection built from a single
prefix of the ingest log. A background :meth:`refresh` runs the full
batch pipeline into a *new* generation off-lock, replays the records
that arrived meanwhile, and swaps readers over atomically — both in
memory (one reference assignment under the lock) and on disk (the
:class:`~repro.serve.store.EntityStore`'s atomic ``current`` pointer).
The read-path cache is keyed by the generation stamp, so a swap or an
ingest invalidates it by construction rather than by bookkeeping.

Durability: an acknowledged ingest has been fsynced to the record log
*before* linking begins; a ``kill -9`` mid-ingest loses nothing that
was acknowledged. A restarted service reloads the published generation
artifact (byte-identical to what was saved) and replays the log suffix
through the same deterministic incremental path, reconstructing the
pre-crash projection.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.fusion.base import Claim, ClaimSet
from repro.fusion.online import OnlineFusion
from repro.linkage.blocking.base import Blocker, KeyFunction
from repro.linkage.comparison import RecordComparator
from repro.linkage.incremental import IncrementalLinker
from repro.linkage.resolver import MatchClassifier, resolve
from repro.obs import NULL_TRACER, SystemClock
from repro.resilience import (
    DeadLetterEntry,
    DeadLetterLog,
    DeadlineExceededError,
    ResilienceConfig,
    RetryPolicy,
)
from repro.serve.cache import MISS, GenerationCache
from repro.serve.store import EntityStore, entity_id_for
from repro.supervision import AdmissionGate, CircuitBreaker, Overloaded, OverloadPolicy

__all__ = ["IngestResult", "ResolutionService", "ResolvedEntity"]

#: Accuracy assumed for sources the caller gave no estimate for.
DEFAULT_SOURCE_ACCURACY = 0.8


@dataclass(frozen=True)
class ResolvedEntity:
    """One resolved entity as served by :meth:`ResolutionService.get`.

    ``provenance`` maps each fused attribute to the (sorted) member
    record ids that claimed the chosen value; ``confidence`` carries
    the fusion posterior per attribute. ``generation`` stamps which
    resolution generation produced this view.
    """

    entity_id: str
    members: tuple[str, ...]
    attributes: Mapping[str, str]
    confidence: Mapping[str, float]
    provenance: Mapping[str, tuple[str, ...]]
    generation: int


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one :meth:`ResolutionService.ingest` call.

    ``position`` is the record's durable log position (assigned before
    linking — it stands even if linking is quarantined). A quarantined
    ingest has ``entity_id=None``; the record is reconciled by the next
    refresh or restart replay. A *shed* ingest (degraded mode with
    ``shed="dead_letter"``) was never appended to the log at all —
    ``position`` is ``-1`` and the payload lives only in the
    dead-letter log, for replay once the service recovers.
    """

    record_id: str
    position: int
    entity_id: str | None
    comparisons: int = 0
    matched_entities: tuple[str, ...] = ()
    quarantined: bool = False
    shed: bool = False


class _Generation:
    """One consistent resolution state: linker + entity projection."""

    __slots__ = ("number", "linker", "entities", "entity_of", "mutations")

    def __init__(self, number: int, linker: IncrementalLinker) -> None:
        self.number = number
        self.linker = linker
        #: entity_id -> {"members", "attributes", "confidence", "provenance"}
        self.entities: dict[str, dict] = {}
        #: record_id -> entity_id
        self.entity_of: dict[str, str] = {}
        self.mutations = 0

    @property
    def version(self) -> tuple[int, int]:
        """The cache stamp: any swap or in-place write changes it."""
        return (self.number, self.mutations)


class ResolutionService:
    """Live entity-resolution serving over a durable :class:`EntityStore`.

    Parameters
    ----------
    root:
        Store directory. Reopening a directory resumes the deployment:
        the published generation is reloaded and the log suffix past
        its watermark replayed.
    key_functions, comparator, classifier:
        The incremental linkage machinery (identical semantics to the
        batch pipeline's blocking/comparison/classification).
    refresh_blocker:
        Batch blocker used by :meth:`refresh`; required only if
        refreshes are requested.
    source_accuracies:
        Per-source accuracy estimates for fusion; unlisted sources get
        :data:`DEFAULT_SOURCE_ACCURACY`.
    resilience:
        Optional :class:`ResilienceConfig` guarding the linking step of
        every ingest (retry/skip with dead-lettering; the fault
        injector hook fires *after* the durable log append, modelling
        death mid-ingest).
    cache_capacity:
        Read-path LRU size (entries), keyed by generation stamp.
    durable:
        ``False`` skips fsyncs (benchmarks); atomicity is kept.
    overload:
        Optional :class:`repro.supervision.OverloadPolicy` turning on
        overload protection: a bounded admission gate on writes, a
        circuit breaker around ingest-side linking and refresh, and
        degraded-mode serving — reads keep answering from the last
        published generation while the breaker is open and writes are
        shed (rejected with :class:`~repro.supervision.Overloaded`, or
        dead-lettered under ``shed="dead_letter"``). The breaker
        re-arms automatically: after ``reset_timeout`` one trial write
        (or a successful :meth:`refresh`) closes it.
    """

    def __init__(
        self,
        root,
        key_functions: Sequence[KeyFunction],
        comparator: RecordComparator,
        classifier: MatchClassifier,
        refresh_blocker: Blocker | None = None,
        source_accuracies: Mapping[str, float] | None = None,
        resilience: ResilienceConfig | None = None,
        cache_capacity: int = 1024,
        max_candidates_per_record: int = 1000,
        tracer=None,
        fingerprint: str | None = None,
        durable: bool = True,
        overload: OverloadPolicy | None = None,
    ) -> None:
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._key_functions = tuple(key_functions)
        self._comparator = comparator
        self._classifier = classifier
        self._refresh_blocker = refresh_blocker
        self._source_accuracies = dict(source_accuracies or {})
        self._resilience = resilience
        self._max_candidates = max_candidates_per_record
        self._store = EntityStore(
            root,
            fingerprint=fingerprint,
            tracer=self._tracer,
            durable=durable,
        )
        self._cache = GenerationCache(cache_capacity, tracer=self._tracer)
        self._lock = threading.RLock()
        self._dead_letters = DeadLetterLog(
            path=resilience.dead_letter_path if resilience else None,
            max_entries=(
                resilience.dead_letter_max_entries if resilience else None
            ),
            max_bytes=(
                resilience.dead_letter_max_bytes if resilience else None
            ),
        )
        if overload is not None and not isinstance(overload, OverloadPolicy):
            raise ConfigurationError(
                "overload must be an OverloadPolicy or None"
            )
        self._overload = overload
        self._gate: AdmissionGate | None = None
        self._breaker: CircuitBreaker | None = None
        self._last_refresh_error: str | None = None
        if overload is not None:
            self._gate = AdmissionGate(
                overload.max_pending_writes,
                retry_after=overload.admission_retry_after,
                tracer=self._tracer,
                name="serve",
            )
            breaker_clock = overload.clock
            if breaker_clock is None and resilience is not None:
                breaker_clock = resilience.clock
            self._breaker = CircuitBreaker(
                failure_threshold=overload.failure_threshold,
                reset_timeout=overload.reset_timeout,
                clock=breaker_clock,
                tracer=self._tracer,
                name="serve.breaker",
                on_state_change=self._on_breaker_state,
            )
            self._tracer.gauge("serve.degraded").set(0.0)
        self._generation = self._restore()

    # --- construction / recovery -------------------------------------

    def _new_linker(self) -> IncrementalLinker:
        return IncrementalLinker(
            self._key_functions,
            self._comparator,
            self._classifier,
            max_candidates_per_record=self._max_candidates,
        )

    def _restore(self) -> _Generation:
        """Rebuild the live generation from the store (crash-safe).

        The published generation artifact supplies the resolved state
        for the log prefix it covers (zero comparisons to reload); the
        log suffix past its watermark is replayed through the normal
        incremental path — deterministic, so the projection equals the
        pre-crash one.
        """
        number = self._store.current_generation()
        if number is None:
            generation = _Generation(0, self._new_linker())
            watermark = 0
        else:
            payload = self._store.load_generation(number)
            if payload is None:
                raise ConfigurationError(
                    f"published generation {number} is missing or damaged "
                    f"in store {str(self._store.root)!r}"
                )
            watermark = payload["watermark"]
            generation = _Generation(number, self._new_linker())
            for record in self._store.records_from(0, watermark):
                generation.linker.resurrect(record)
            for entity_id, entity in payload["entities"].items():
                members = list(entity["members"])
                for left, right in zip(members, members[1:]):
                    generation.linker.merge(left, right)
                generation.entities[entity_id] = {
                    "members": list(members),
                    "attributes": dict(entity["attributes"]),
                    "confidence": dict(entity["confidence"]),
                    "provenance": {
                        attr: list(ids)
                        for attr, ids in entity["provenance"].items()
                    },
                }
                for member in members:
                    generation.entity_of[member] = entity_id
        replayed = 0
        for record in self._store.records_from(watermark):
            self._link_record(generation, record)
            replayed += 1
        if replayed:
            self._tracer.counter("serve.replayed_records").inc(replayed)
        return generation

    # --- internals ----------------------------------------------------

    def _fuse_members(self, generation: _Generation, member_ids) -> tuple[
        dict, dict, dict
    ]:
        """Fuse one entity's member records into attributes/confidence/
        provenance via online fusion (one claim per source per item)."""
        members = [
            generation.linker.record(member_id)
            for member_id in sorted(member_ids)
        ]
        claims: list[Claim] = []
        claimed: set[tuple[str, str]] = set()
        for record in members:
            for attribute in sorted(record.attributes):
                value = record.attributes[attribute]
                key = (record.source_id, attribute)
                if key in claimed or not value:
                    continue
                claimed.add(key)
                claims.append(Claim(record.source_id, attribute, value))
        if not claims:
            return {}, {}, {}
        accuracies = {
            record.source_id: self._source_accuracies.get(
                record.source_id, DEFAULT_SOURCE_ACCURACY
            )
            for record in members
        }
        fusion = OnlineFusion(accuracies)
        result, _ = fusion.run(ClaimSet(claims))
        attributes = {
            item: result.chosen[item] for item in sorted(result.chosen)
        }
        confidence = {
            item: result.confidence.get(item, 0.0)
            for item in sorted(result.chosen)
        }
        provenance = {
            item: sorted(
                record.record_id
                for record in members
                if record.attributes.get(item) == chosen
            )
            for item, chosen in attributes.items()
        }
        return attributes, confidence, provenance

    def _set_entity(self, generation: _Generation, member_ids) -> str:
        """(Re)project the entity containing ``member_ids``."""
        entity_id = entity_id_for(member_ids)
        attributes, confidence, provenance = self._fuse_members(
            generation, member_ids
        )
        generation.entities[entity_id] = {
            "members": sorted(member_ids),
            "attributes": attributes,
            "confidence": confidence,
            "provenance": provenance,
        }
        for member in member_ids:
            generation.entity_of[member] = entity_id
        return entity_id

    def _link_record(
        self, generation: _Generation, record: Record
    ) -> IngestResult:
        """Fold one record into ``generation`` (linker + projection).

        The single write path: live ingests, restart replay, and
        refresh catch-up all come through here, which is what makes
        the three provably agree.
        """
        if record.record_id in generation.linker:
            # A retried attempt after a partial failure: withdraw the
            # previous attempt's index entries before relinking.
            generation.linker.remove(record.record_id)
        stats = generation.linker.add_batch([record])
        absorbed = []
        seen = set()
        for _, other_id in stats.match_pairs:
            entity_id = generation.entity_of.get(other_id)
            if entity_id is not None and entity_id not in seen:
                seen.add(entity_id)
                absorbed.append(entity_id)
        members = {record.record_id}
        for entity_id in absorbed:
            members.update(generation.entities.pop(entity_id)["members"])
        new_entity = self._set_entity(generation, members)
        generation.mutations += 1
        self._tracer.counter("serve.ingests").inc()
        self._tracer.counter("serve.ingest_comparisons").inc(
            stats.comparisons
        )
        self._tracer.counter("serve.ingest_matches").inc(stats.matches)
        return IngestResult(
            record_id=record.record_id,
            position=-1,
            entity_id=new_entity,
            comparisons=stats.comparisons,
            matched_entities=tuple(absorbed),
        )

    def _now(self) -> float:
        if self._overload is not None and self._overload.clock is not None:
            return self._overload.clock.now()
        if self._resilience is not None and self._resilience.clock is not None:
            return self._resilience.clock.now()
        return SystemClock().now()

    def _on_breaker_state(self, old: str, new: str) -> None:
        """Mirror breaker transitions into the degraded-mode gauge."""
        self._tracer.gauge("serve.degraded").set(
            1.0 if new == "open" else 0.0
        )

    def _effective_deadline(self, deadline: float | None) -> float | None:
        if deadline is not None:
            return deadline
        if self._overload is not None:
            return self._overload.deadline
        return None

    def _shed(self, record: Record) -> IngestResult:
        """Degraded mode: refuse (or dead-letter) one write.

        The record is *not* appended to the log — shedding exists to
        keep the ingest path's work off a struggling service entirely.
        Under ``shed="dead_letter"`` the payload is preserved in the
        dead-letter log for replay after recovery; under ``"reject"``
        the caller gets :class:`~repro.supervision.Overloaded` with the
        breaker's remaining open window as ``retry_after``.
        """
        assert self._breaker is not None and self._overload is not None
        retry_after = self._breaker.retry_after()
        self._tracer.counter("serve.shed").inc()
        self._tracer.counter("serve.shed_degraded").inc()
        if self._overload.shed == "dead_letter":
            self._dead_letters.add(
                DeadLetterEntry(
                    scope="serve.ingest.shed",
                    chunk_id=str(self._store.log_length),
                    kind="overload",
                    error_type="Overloaded",
                    error=(
                        f"breaker open; retry after {retry_after:.3f}s"
                    ),
                    attempts=0,
                    items=(record.record_id,),
                    quarantined_at=self._now(),
                )
            )
            return IngestResult(
                record_id=record.record_id,
                position=-1,
                entity_id=None,
                quarantined=True,
                shed=True,
            )
        raise Overloaded(
            f"service degraded (breaker open); retry after "
            f"{retry_after:.3f}s",
            retry_after=retry_after,
        )

    def _guarded_link(
        self,
        generation: _Generation,
        record: Record,
        position: int,
        deadline: float | None = None,
    ) -> IngestResult:
        """Run the linking step under the resilience policy.

        The fault injector (if any) fires per attempt with the log
        position as the chunk index — ``kill`` specs model process
        death *after* the durable append, mid-ingest. Quarantined
        records stay durable-but-unlinked singletons until the next
        refresh or restart replays them.

        ``deadline`` (seconds on the service clock) caps the whole
        retry loop: once it expires, remaining attempts are abandoned —
        quarantined as ``kind="deadline"`` under ``failure="skip"``,
        raised as :class:`DeadlineExceededError` otherwise.
        """
        config = self._resilience
        if config is None and deadline is None:
            return self._link_record(generation, record)
        failure = config.failure if config is not None else "fail"
        retry = config.retry if config is not None else None
        sleep = (
            config.sleep
            if config is not None and config.sleep is not None
            else time.sleep
        )
        attempts = max(1, retry.max_attempts) if retry is not None else 1
        injector = config.fault_injector if config is not None else None
        started = self._now()
        last_error: Exception | None = None
        timed_out = False
        attempt = 0
        for attempt in range(1, attempts + 1):
            if deadline is not None and self._now() - started > deadline:
                timed_out = True
                break
            try:
                if injector is not None:
                    injector.on_attempt(
                        position, [record.record_id], attempt
                    )
                return self._link_record(generation, record)
            except Exception as error:  # noqa: BLE001 - policy boundary
                last_error = error
                if failure == "fail":
                    raise
                if attempt < attempts:
                    sleep(
                        retry.delay(
                            attempt, salt=f"serve.ingest.{position}"
                        )
                    )
        made = attempts
        if timed_out:
            made = attempt - 1
            elapsed = self._now() - started
            self._tracer.counter("serve.deadline_exceeded").inc()
            if failure != "skip":
                raise DeadlineExceededError(deadline, elapsed)
            kind = "deadline"
            error_type = "DeadlineExceededError"
            error_text = (
                f"ingest deadline of {deadline}s exceeded after "
                f"{elapsed:.3f}s"
            )
        else:
            if failure == "retry":
                assert last_error is not None
                raise last_error
            # failure == "skip": quarantine and keep serving.
            kind = "crash"
            error_type = type(last_error).__name__
            error_text = str(last_error)
        self._dead_letters.add(
            DeadLetterEntry(
                scope="serve.ingest",
                chunk_id=str(position),
                kind=kind,
                error_type=error_type,
                error=error_text,
                attempts=made,
                items=(record.record_id,),
                quarantined_at=self._now(),
            )
        )
        self._tracer.counter("serve.quarantined_ingests").inc()
        return IngestResult(
            record_id=record.record_id,
            position=position,
            entity_id=None,
            quarantined=True,
        )

    # --- the serving API ---------------------------------------------

    @property
    def store(self) -> EntityStore:
        return self._store

    @property
    def dead_letters(self) -> DeadLetterLog:
        """Ingests quarantined under a ``failure="skip"`` policy."""
        return self._dead_letters

    @property
    def generation(self) -> int:
        """The generation number current reads are served from."""
        with self._lock:
            return self._generation.number

    def ingest(
        self, record: Record, deadline: float | None = None
    ) -> IngestResult:
        """Durably ingest one record and link it incrementally.

        The record is fsynced to the log *before* linking: once this
        method has appended, the record survives any crash (the restart
        replay relinks it). Linking runs under the resilience policy;
        see :class:`IngestResult` for the quarantine outcome.

        With an :class:`~repro.supervision.OverloadPolicy` configured,
        the write first passes the admission gate (raising
        :class:`~repro.supervision.Overloaded` when too many writes are
        already in flight) and then the circuit breaker: while the
        breaker is open the write is shed *before* the durable append
        (see :meth:`_shed`). ``deadline`` (seconds, default from the
        policy) caps this request's linking work.
        """
        if self._gate is not None:
            self._gate.acquire()
        try:
            with self._lock:
                generation = self._generation
                if record.record_id in generation.linker:
                    raise ConfigurationError(
                        f"record {record.record_id!r} already ingested"
                    )
                if self._breaker is not None and not self._breaker.allow():
                    return self._shed(record)
                position = self._store.append_record(record)
                try:
                    result = self._guarded_link(
                        generation,
                        record,
                        position,
                        deadline=self._effective_deadline(deadline),
                    )
                except Exception:
                    if self._breaker is not None:
                        self._breaker.record_failure()
                    raise
                if self._breaker is not None:
                    if result.quarantined:
                        self._breaker.record_failure()
                    else:
                        self._breaker.record_success()
                if result.quarantined:
                    return result
                return IngestResult(
                    record_id=result.record_id,
                    position=position,
                    entity_id=result.entity_id,
                    comparisons=result.comparisons,
                    matched_entities=result.matched_entities,
                )
        finally:
            if self._gate is not None:
                self._gate.release()

    def match(self, record: Record) -> str | None:
        """Which entity would ``record`` resolve to? (read-only)

        Probes the incremental linker without indexing anything;
        ``None`` means no indexed record matches. Results are cached
        under the generation stamp, so refreshes and ingests invalidate
        by construction.
        """
        with self._lock:
            generation = self._generation
            key = (
                "match",
                record.record_id,
                record.source_id,
                tuple(sorted(record.attributes.items())),
            )
            cached = self._cache.get(generation.version, key)
            self._tracer.counter("serve.queries").inc()
            if cached is not MISS:
                return cached
            probe = generation.linker.probe(record)
            entity_id = None
            for other_id, _ in probe.matches:
                entity_id = generation.entity_of.get(other_id)
                if entity_id is not None:
                    break
            self._cache.put(generation.version, key, entity_id)
            if entity_id is not None:
                self._tracer.counter("serve.matches_found").inc()
            return entity_id

    def get(self, entity_id: str) -> ResolvedEntity | None:
        """The resolved entity with this id, or ``None``."""
        with self._lock:
            generation = self._generation
            key = ("entity", entity_id)
            cached = self._cache.get(generation.version, key)
            self._tracer.counter("serve.queries").inc()
            if cached is not MISS:
                return cached
            entity = generation.entities.get(entity_id)
            resolved = None
            if entity is not None:
                resolved = ResolvedEntity(
                    entity_id=entity_id,
                    members=tuple(entity["members"]),
                    attributes=dict(entity["attributes"]),
                    confidence=dict(entity["confidence"]),
                    provenance={
                        attr: tuple(ids)
                        for attr, ids in entity["provenance"].items()
                    },
                    generation=generation.number,
                )
            self._cache.put(generation.version, key, resolved)
            return resolved

    def entities(self) -> tuple[ResolvedEntity, ...]:
        """Every resolved entity, sorted by entity id."""
        with self._lock:
            generation = self._generation
            return tuple(
                ResolvedEntity(
                    entity_id=entity_id,
                    members=tuple(entity["members"]),
                    attributes=dict(entity["attributes"]),
                    confidence=dict(entity["confidence"]),
                    provenance={
                        attr: tuple(ids)
                        for attr, ids in entity["provenance"].items()
                    },
                    generation=generation.number,
                )
                for entity_id, entity in sorted(generation.entities.items())
            )

    def snapshot(self) -> dict:
        """A canonical, JSON-able view of the current projection.

        Taken under the lock, so it is internally consistent (one
        generation); used by the equivalence and crash tests to compare
        whole services.
        """
        with self._lock:
            generation = self._generation
            return {
                "generation": generation.number,
                "entities": self._canonical_entities(generation),
            }

    @staticmethod
    def _canonical_entities(generation: _Generation) -> dict:
        return {
            entity_id: {
                "members": sorted(entity["members"]),
                "attributes": {
                    attr: entity["attributes"][attr]
                    for attr in sorted(entity["attributes"])
                },
                "confidence": {
                    attr: entity["confidence"][attr]
                    for attr in sorted(entity["confidence"])
                },
                "provenance": {
                    attr: sorted(entity["provenance"][attr])
                    for attr in sorted(entity["provenance"])
                },
            }
            for entity_id, entity in sorted(generation.entities.items())
        }

    def set_source_accuracies(
        self, accuracies: Mapping[str, float]
    ) -> None:
        """Swap the per-source fusion accuracies and re-fuse in place.

        The drift-response hook: a streaming monitor that concludes a
        source's quality has shifted pushes the new estimates here, and
        every entity is re-fused under them within the *current*
        generation (membership is untouched — only fused values,
        confidence, and provenance move). The generation's mutation
        stamp is bumped, so read caches invalidate by construction.
        Follow with :meth:`refresh` when linkage itself is suspect.
        """
        for source, accuracy in accuracies.items():
            if not 0.0 < accuracy < 1.0:
                raise ConfigurationError(
                    f"accuracy for {source!r} must be in (0, 1)"
                )
        with self._lock:
            self._source_accuracies = dict(accuracies)
            generation = self._generation
            for entity_id in list(generation.entities):
                members = generation.entities[entity_id]["members"]
                self._set_entity(generation, members)
            generation.mutations += 1
            self._tracer.counter("serve.accuracy_updates").inc()

    # --- background refresh ------------------------------------------

    def refresh(self, deadline: float | None = None) -> int:
        """Full batch re-resolution into a new generation; atomic swap.

        The expensive part — batch blocking/comparison/clustering over
        the log prefix — runs *without* the lock, so serving continues.
        Under the lock, records ingested meanwhile are replayed into
        the new generation through the normal incremental path, the
        generation is durably saved and published, and readers are
        swapped with a single reference assignment. Concurrent readers
        therefore always see either the old generation or the complete
        new one.

        ``deadline`` (seconds, default from the overload policy)
        propagates into the batch engine's per-chunk deadline checks —
        a refresh that can't finish in budget aborts with
        :class:`DeadlineExceededError` instead of monopolizing the
        host. A failed refresh counts against the circuit breaker (and
        into ``serve.refresh_failures`` / :meth:`health`); a successful
        one records a breaker success, which is the automatic re-arm
        path after degraded mode.
        """
        if self._refresh_blocker is None:
            raise ConfigurationError(
                "refresh requires a refresh_blocker (the batch blocker "
                "to re-resolve with)"
            )
        try:
            number = self._refresh(self._effective_deadline(deadline))
        except Exception as error:  # noqa: BLE001 - health boundary
            if self._breaker is not None:
                self._breaker.record_failure()
            self._tracer.counter("serve.refresh_failures").inc()
            self._last_refresh_error = f"{type(error).__name__}: {error}"
            raise
        if self._breaker is not None:
            self._breaker.record_success()
        self._last_refresh_error = None
        return number

    def _refresh(self, deadline: float | None) -> int:
        with self._lock:
            watermark = self._store.log_length
            number = self._generation.number + 1
        base_records = list(self._store.records_from(0, watermark))
        engine_resilience = None
        if deadline is not None:
            clock = None
            if self._overload is not None:
                clock = self._overload.clock
            if clock is None and self._resilience is not None:
                clock = self._resilience.clock
            engine_resilience = ResilienceConfig(
                retry=RetryPolicy(max_attempts=1, base_delay=0.0),
                failure="fail",
                deadline=deadline,
                clock=clock,
            )
        result = resolve(
            base_records,
            self._refresh_blocker,
            self._comparator,
            self._classifier,
            clustering="components",
            resilience=engine_resilience,
        )
        fresh = _Generation(number, self._new_linker())
        for record in base_records:
            fresh.linker.resurrect(record)
        for cluster in result.clusters:
            for left, right in zip(cluster, cluster[1:]):
                fresh.linker.merge(left, right)
            self._set_entity(fresh, cluster)
        with self._lock:
            caught_up = 0
            for record in self._store.records_from(watermark):
                self._link_record(fresh, record)
                caught_up += 1
            if caught_up:
                self._tracer.counter("serve.replayed_records").inc(
                    caught_up
                )
            self._store.save_generation(
                fresh.number,
                self._store.log_length,
                self._canonical_entities(fresh),
            )
            self._store.publish_generation(fresh.number)
            self._generation = fresh
            self._tracer.counter("serve.refreshes").inc()
            return fresh.number

    def refresh_async(self, deadline: float | None = None) -> threading.Thread:
        """The background refresh hook: :meth:`refresh` on a thread.

        A failing background refresh never kills the thread with an
        unhandled traceback: the exception is already accounted for by
        :meth:`refresh` (breaker failure, ``serve.refresh_failures``,
        ``last_refresh_error`` in :meth:`health`) and then swallowed.
        """

        def target() -> None:
            try:
                self.refresh(deadline)
            except Exception:  # noqa: BLE001, S110 - recorded in health()
                pass

        thread = threading.Thread(
            target=target, name="serve-refresh", daemon=True
        )
        thread.start()
        return thread

    # --- probes -------------------------------------------------------

    def health(self) -> dict:
        """The liveness/degradation probe (one consistent snapshot).

        ``status`` is ``"degraded"`` exactly while the circuit breaker
        is open — reads still serve (from the last published
        generation) but writes are being shed. Without an overload
        policy the breaker reads as permanently ``"closed"``.
        """
        with self._lock:
            generation = self._generation
            breaker_state = (
                self._breaker.state if self._breaker is not None else "closed"
            )
            return {
                "status": "degraded" if breaker_state == "open" else "ok",
                "generation": generation.number,
                "entities": len(generation.entities),
                "log_length": self._store.log_length,
                "breaker": breaker_state,
                "pending_writes": (
                    self._gate.depth if self._gate is not None else 0
                ),
                "dead_letters": len(self._dead_letters),
                "last_refresh_error": self._last_refresh_error,
            }

    def readiness(self) -> dict:
        """The routing probe: can this service take traffic?

        ``ready`` covers reads (always true once constructed — the
        generation is restored before the constructor returns);
        ``writes_accepted`` is false while the breaker is open or the
        admission gate is full, which is the signal a load balancer
        uses to route writes elsewhere while still sending reads here.
        """
        with self._lock:
            breaker_state = (
                self._breaker.state if self._breaker is not None else "closed"
            )
            gate_full = (
                self._gate is not None
                and self._gate.depth >= self._gate.limit
            )
            return {
                "ready": True,
                "generation": self._generation.number,
                "writes_accepted": breaker_state != "open" and not gate_full,
            }

    def checkpoint(self) -> int:
        """Durably persist the *current* generation's projection as-is.

        Cheaper than :meth:`refresh` (no batch re-resolution): saves
        the live projection with the current log watermark and
        republishes the same generation number, shrinking the replay
        a restart must do.
        """
        with self._lock:
            generation = self._generation
            self._store.save_generation(
                generation.number,
                self._store.log_length,
                self._canonical_entities(generation),
            )
            self._store.publish_generation(generation.number)
            return generation.number

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ResolutionService(root={str(self._store.root)!r}, "
                f"generation={self._generation.number}, "
                f"entities={len(self._generation.entities)})"
            )
