"""The metrics registry: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the mutable metric store of one run.
Instruments are created lazily by name (``registry.counter("x").inc()``)
so instrumented code never has to pre-declare what it emits, and a
metric read before any increment reports zero — empty inputs produce a
well-formed, zeroed report rather than missing keys.

Cross-worker collection protocol
--------------------------------

Worker processes cannot share a registry, so aggregation is snapshot
based: a worker calls :meth:`MetricsRegistry.snapshot` (a plain,
picklable dict), ships it back over whatever channel the executor
already uses, and the parent folds it in with
:meth:`MetricsRegistry.merge`. Counters and histogram buckets add;
gauges take the incoming value (last writer wins). The
:class:`~repro.linkage.engine.ParallelComparisonEngine` workers use the
degenerate form of the same protocol — plain counter dicts merged with
:meth:`merge_counters` — because their per-chunk metrics are pure
counters.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Generic magnitude buckets (counts, sizes, costs). Callers measuring
#: a known range (e.g. scores in [0, 1]) should pass their own.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

#: Buckets for similarity scores and other [0, 1] quantities.
SCORE_BUCKETS: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (cache sizes, ratios, worker counts)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket histogram.

    ``buckets`` are ascending upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or in the implicit
    overflow bucket past the last bound. Count, sum, min, and max are
    tracked exactly, so the mean is recoverable whatever the buckets.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        ordered = tuple(float(bound) for bound in buckets)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name!r} buckets must be distinct and ascending"
            )
        self.name = name
        self.buckets = ordered
        self.counts = [0] * (len(ordered) + 1)  # last = overflow
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """All metrics of one run, created lazily by name.

    Thread-safe: instrument creation and snapshot/merge hold a lock, so
    thread-based callers can share one registry. Process-based callers
    use the snapshot/merge protocol described in the module docstring.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, buckets if buckets is not None else DEFAULT_BUCKETS
                )
            elif buckets is not None and tuple(
                float(b) for b in buckets
            ) != instrument.buckets:
                raise ValueError(
                    f"histogram {name!r} already exists with different buckets"
                )
            return instrument

    # --- collection protocol -----------------------------------------

    def snapshot(self) -> dict:
        """A picklable plain-dict copy of every metric."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in self._counters.items()
                },
                "gauges": {
                    name: g.value for name, g in self._gauges.items()
                },
                "histograms": {
                    name: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "count": h.count,
                        "sum": h.sum,
                        "min": h.min,
                        "max": h.max,
                    }
                    for name, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: Mapping) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value. Histograms with the same name must share buckets.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, data["buckets"])
            with self._lock:
                for index, count in enumerate(data["counts"]):
                    histogram.counts[index] += count
                histogram.count += data["count"]
                histogram.sum += data["sum"]
                for bound, better in (("min", min), ("max", max)):
                    incoming = data[bound]
                    if incoming is None:
                        continue
                    current = getattr(histogram, bound)
                    setattr(
                        histogram,
                        bound,
                        incoming if current is None
                        else better(current, incoming),
                    )

    def merge_counters(
        self, counts: Mapping[str, int | float], prefix: str = ""
    ) -> None:
        """Fold a plain counter dict (the degenerate worker snapshot)."""
        for name, value in counts.items():
            self.counter(prefix + name).inc(value)

    def to_dict(self) -> dict:
        """Alias of :meth:`snapshot` for report serialization."""
        return self.snapshot()
