"""Run reports: one structured artifact per instrumented run.

A :class:`RunReport` freezes a tracer's span tree plus the metrics
snapshot and renders both ways benchmarks and CI need them: a
plain-text tree for humans (:meth:`RunReport.render`) and JSON for
machines (:meth:`RunReport.to_json`), with a lossless round-trip
(:meth:`RunReport.from_json`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.tracer import Span

__all__ = ["RunReport"]


def _format_duration(duration: float | None) -> str:
    if duration is None:
        return "open"
    if duration >= 0.1:
        return f"{duration:.3f}s"
    return f"{duration * 1000:.2f}ms"


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(item) for item in value) + "]"
    return str(value)


@dataclass
class RunReport:
    """The structured artifact of one instrumented run."""

    name: str
    spans: list[Span] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "spans": [span.to_dict() for span in self.spans],
            "metrics": self.metrics,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        return cls(
            name=data["name"],
            spans=[Span.from_dict(span) for span in data["spans"]],
            metrics=data.get("metrics", {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def find_span(self, name: str) -> Span | None:
        """First span named ``name`` anywhere in the tree."""
        for root in self.spans:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def span_names(self) -> list[str]:
        """Every span name in the tree, depth-first."""
        names: list[str] = []

        def walk(span: Span) -> None:
            names.append(span.name)
            for child in span.children:
                walk(child)

        for root in self.spans:
            walk(root)
        return names

    # --- rendering ---------------------------------------------------

    def render(self, show_buckets: bool = True) -> str:
        """The human-readable report: span tree, then metric tables."""
        lines = [f"run report: {self.name}"]
        for root in self.spans:
            self._render_span(root, lines, prefix="", is_last=True)
        counters = self.metrics.get("counters", {})
        gauges = self.metrics.get("gauges", {})
        histograms = self.metrics.get("histograms", {})
        if counters:
            lines.append("counters:")
            width = max(len(name) for name in counters)
            for name in sorted(counters):
                lines.append(
                    f"  {name.ljust(width)}  {_format_value(counters[name])}"
                )
        if gauges:
            lines.append("gauges:")
            width = max(len(name) for name in gauges)
            for name in sorted(gauges):
                lines.append(
                    f"  {name.ljust(width)}  {_format_value(gauges[name])}"
                )
        if histograms:
            lines.append("histograms:")
            for name in sorted(histograms):
                data = histograms[name]
                summary = (
                    f"  {name}  count={data['count']}"
                    f" sum={_format_value(data['sum'])}"
                )
                if data["count"]:
                    mean = data["sum"] / data["count"]
                    summary += (
                        f" min={_format_value(data['min'])}"
                        f" mean={_format_value(mean)}"
                        f" max={_format_value(data['max'])}"
                    )
                lines.append(summary)
                if show_buckets and data["count"]:
                    for bound, count in zip(
                        data["buckets"], data["counts"]
                    ):
                        if count:
                            lines.append(
                                f"    <= {_format_value(bound)}  {count}"
                            )
                    overflow = data["counts"][len(data["buckets"])]
                    if overflow:
                        bound = data["buckets"][-1]
                        lines.append(
                            f"    >  {_format_value(bound)}  {overflow}"
                        )
        return "\n".join(lines)

    def _render_span(
        self, span: Span, lines: list[str], prefix: str, is_last: bool
    ) -> None:
        connector = "└─ " if is_last else "├─ "
        attributes = "  ".join(
            f"{key}={_format_value(value)}"
            for key, value in span.attributes.items()
        )
        label = f"{span.name}  [{_format_duration(span.duration)}]"
        if attributes:
            label = f"{label}  {attributes}"
        lines.append(prefix + connector + label)
        child_prefix = prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(span.children):
            self._render_span(
                child,
                lines,
                child_prefix,
                index == len(span.children) - 1,
            )
