"""repro.obs — observability: spans, metrics, and run reports.

The instrumentation layer of the integration stack. A
:class:`Tracer` produces nested, deterministic stage spans (wall time
through an injectable :class:`Clock`) and owns a
:class:`MetricsRegistry` of counters, gauges, and fixed-bucket
histograms; worker processes aggregate back into the parent run via
the snapshot/merge collection protocol; and a finished run freezes
into a :class:`RunReport` that renders as a plain-text tree or JSON.

The default everywhere is :data:`NULL_TRACER` — a no-op whose overhead
on the comparison hot path is held under the E20 bench noise floor —
so instrumentation is strictly opt-in::

    from repro import BDIPipeline
    from repro.obs import Tracer

    tracer = Tracer()
    result = BDIPipeline().run(dataset, tracer=tracer)
    print(tracer.report(name="pipeline").render())
"""

from repro.obs.clock import Clock, ManualClock, SystemClock
from repro.obs.instruments import (
    BLOCK_SIZE_BUCKETS,
    STREAM_LAG_BUCKETS,
    observe_block_collection,
    observe_candidate_pruning,
    observe_stream_window,
    observe_supervisor,
    observe_text_caches,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    SCORE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import RunReport
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BLOCK_SIZE_BUCKETS",
    "Clock",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RunReport",
    "SCORE_BUCKETS",
    "STREAM_LAG_BUCKETS",
    "Span",
    "SystemClock",
    "Tracer",
    "observe_block_collection",
    "observe_candidate_pruning",
    "observe_stream_window",
    "observe_supervisor",
    "observe_text_caches",
]
