"""Injectable clocks for deterministic span timing.

Every obs timestamp flows through a :class:`Clock`, so production runs
get monotonic wall time (:class:`SystemClock`) while tests inject a
:class:`ManualClock` and assert *exact* durations — no sleeps, no
tolerance bands.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "ManualClock", "SystemClock"]


@runtime_checkable
class Clock(Protocol):
    """Anything that can produce a monotonic timestamp in seconds."""

    def now(self) -> float: ...


class SystemClock:
    """Monotonic wall time (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


class ManualClock:
    """A deterministic clock for tests.

    ``now()`` returns the current reading and then advances it by
    ``tick`` — so with the default ``tick=1.0`` the n-th reading is
    exactly ``start + n``. Set ``tick=0`` and drive time explicitly
    with :meth:`advance` when a test wants full control.
    """

    def __init__(self, start: float = 0.0, tick: float = 1.0) -> None:
        self._current = float(start)
        self._tick = float(tick)

    def now(self) -> float:
        reading = self._current
        self._current += self._tick
        return reading

    def advance(self, seconds: float) -> None:
        """Move the clock forward without consuming a reading."""
        self._current += seconds
