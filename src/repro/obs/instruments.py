"""Ready-made instrumentation helpers for library data structures.

These keep the wiring in one place: consumers (the resolver, the
pipeline, the distributed driver) call one function instead of
re-deriving the same counters and histograms from a
:class:`~repro.linkage.blocking.base.BlockCollection` or the text-layer
``lru_cache`` statistics.
"""

from __future__ import annotations

__all__ = [
    "BLOCK_SIZE_BUCKETS",
    "STREAM_LAG_BUCKETS",
    "observe_block_collection",
    "observe_candidate_pruning",
    "observe_stream_window",
    "observe_supervisor",
    "observe_text_caches",
]

#: Power-of-two-ish block-size buckets; blocks past the last bound land
#: in the overflow bucket (the oversized blocks blockers cap or split).
BLOCK_SIZE_BUCKETS: tuple[float, ...] = (
    2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)


def observe_block_collection(tracer, blocks, prefix: str = "blocking") -> None:
    """Record a block collection's shape into the tracer's metrics.

    Emits ``{prefix}.blocks_built`` and ``{prefix}.comparisons``
    counters plus a ``{prefix}.block_size`` histogram — the block-size
    distribution is the skew signal the load-balancing experiments
    (and `max_block_size` tuning) turn on.
    """
    tracer.counter(f"{prefix}.blocks_built").inc(len(blocks))
    tracer.counter(f"{prefix}.comparisons").inc(blocks.n_comparisons)
    histogram = tracer.histogram(
        f"{prefix}.block_size", BLOCK_SIZE_BUCKETS
    )
    histogram.observe_many(float(len(block)) for block in blocks)


#: Ingest-to-visible latency buckets (seconds), log-spaced from "sub-ms
#: in-memory window" out to "seconds behind" — the staleness alert range.
STREAM_LAG_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0,
)


def observe_stream_window(tracer, result, prefix: str = "streaming") -> None:
    """Record one closed streaming window into the tracer's metrics.

    ``result`` is a :class:`repro.streaming.runtime.WindowResult` (duck
    typed — anything with the same counters works). Emits the
    per-window cost counters, the watermark/match-rate gauges the
    drift dashboards plot, and the ingest-to-visible lag histogram
    (``{prefix}.lag``) whose p99 the streaming benchmark gates.
    """
    tracer.counter(f"{prefix}.windows_closed").inc()
    tracer.counter(f"{prefix}.window_records").inc(result.n_records)
    tracer.counter(f"{prefix}.comparisons").inc(result.comparisons)
    tracer.counter(f"{prefix}.matches").inc(result.matches)
    tracer.gauge(f"{prefix}.watermark").set(result.watermark)
    tracer.gauge(f"{prefix}.entities_touched").set(
        float(result.entities_touched)
    )
    histogram = tracer.histogram(f"{prefix}.lag", STREAM_LAG_BUCKETS)
    histogram.observe_many(result.lags)


def observe_candidate_pruning(
    tracer, n_before: int, n_after: int, prefix: str = "metablocking"
) -> None:
    """Record a pruning pass: pairs in, retained, pruned."""
    tracer.counter(f"{prefix}.pairs_before").inc(n_before)
    tracer.counter(f"{prefix}.pairs_retained").inc(n_after)
    tracer.counter(f"{prefix}.pairs_pruned").inc(max(0, n_before - n_after))


def observe_supervisor(
    tracer, supervisor, prefix: str = "supervision"
) -> None:
    """Publish a supervisor's healing summary as gauges.

    The :class:`~repro.supervision.Supervisor` already counts its
    decisions live (``supervision.{starts,deaths,hangs,restarts,
    recovered,exhausteds}``); this helper adds the end-of-run summary
    gauges a dashboard alerts on — total events, distinct shards that
    needed healing, and the worst per-shard restart count.
    """
    restarts_by_shard: dict[int, int] = {}
    for event in supervisor.events:
        if event.kind == "restart":
            restarts_by_shard[event.shard] = (
                restarts_by_shard.get(event.shard, 0) + 1
            )
    tracer.gauge(f"{prefix}.events").set(float(len(supervisor.events)))
    tracer.gauge(f"{prefix}.healed_shards").set(
        float(len(restarts_by_shard))
    )
    tracer.gauge(f"{prefix}.max_shard_restarts").set(
        float(max(restarts_by_shard.values(), default=0))
    )


def observe_text_caches(tracer) -> None:
    """Publish the text-layer memo-cache statistics as gauges.

    Reads every cache registered in :data:`repro.text.MEMO_CACHES`
    (the bounded ``lru_cache`` wrappers on the normalize/tokenize hot
    path) and emits ``text.<name>.cache_{hits,misses,size,maxsize}``
    plus a derived ``text.<name>.cache_hit_ratio`` gauge.
    """
    from repro.text import MEMO_CACHES

    for name, cached_function in MEMO_CACHES.items():
        info = cached_function.cache_info()
        base = f"text.{name}"
        tracer.gauge(f"{base}.cache_hits").set(info.hits)
        tracer.gauge(f"{base}.cache_misses").set(info.misses)
        tracer.gauge(f"{base}.cache_size").set(info.currsize)
        tracer.gauge(f"{base}.cache_maxsize").set(info.maxsize or 0)
        total = info.hits + info.misses
        tracer.gauge(f"{base}.cache_hit_ratio").set(
            info.hits / total if total else 0.0
        )
