"""Tracers: nested stage spans over an injectable clock.

:class:`Tracer` records a tree of :class:`Span` objects (one per
pipeline stage, engine pass, solver loop, …) and owns the run's
:class:`~repro.obs.metrics.MetricsRegistry`. :class:`NullTracer` is the
default everywhere instrumentation is wired: every method is a no-op
returning a shared singleton, so the hot paths pay essentially nothing
when nobody is watching (asserted against the E20 bench baseline).

Instrumented code holds whichever tracer it was given and never
branches on the type::

    with tracer.span("engine.match_pairs", execution=mode) as span:
        ...
        tracer.counter("engine.pairs_total").inc(n)
        span.set("n_pairs", n)

Spans nest by call order within one tracer (a stack), which matches the
single-threaded orchestration of the pipeline; worker processes report
back through the metrics collection protocol, not through spans.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.obs.clock import Clock, SystemClock
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]


class Span:
    """One timed, attributed stage of a run."""

    __slots__ = ("name", "start", "end", "attributes", "children")

    def __init__(
        self, name: str, start: float, attributes: dict | None = None
    ) -> None:
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attributes: dict = attributes or {}
        self.children: list[Span] = []

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    @property
    def duration(self) -> float | None:
        """Seconds from start to end; ``None`` while the span is open."""
        return None if self.end is None else self.end - self.start

    def find(self, name: str) -> "Span | None":
        """First descendant (depth-first) named ``name``, or self."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(data["name"], data["start"], dict(data["attributes"]))
        span.end = data["end"]
        span.children = [
            cls.from_dict(child) for child in data["children"]
        ]
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration={self.duration}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Collects nested spans and metrics for one run.

    Parameters
    ----------
    clock:
        Timestamp source; defaults to monotonic wall time. Tests inject
        :class:`~repro.obs.clock.ManualClock` for exact durations.
    metrics:
        The metrics registry to write into; defaults to a fresh one.
    """

    enabled = True

    def __init__(
        self,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._clock = clock or SystemClock()
        self._metrics = metrics or MetricsRegistry()
        self._roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def metrics(self) -> MetricsRegistry:
        """The run's metrics registry."""
        return self._metrics

    @property
    def roots(self) -> tuple[Span, ...]:
        """Top-level spans recorded so far."""
        return tuple(self._roots)

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Span]:
        """Open a child span of the currently open span (or a root)."""
        span = Span(name, self._clock.now(), attributes)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = self._clock.now()
            self._stack.pop()

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def time(self) -> float:
        """A clock reading (for rate computations inside spans)."""
        return self._clock.now()

    # Metric shorthands, so instrumented code needs only the tracer.

    def counter(self, name: str) -> Counter:
        return self._metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self._metrics.gauge(name)

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None
    ) -> Histogram:
        return self._metrics.histogram(name, buckets)

    def report(self, name: str = "run") -> "RunReport":
        """Freeze everything recorded so far into a RunReport."""
        from repro.obs.report import RunReport

        return RunReport(
            name=name,
            spans=list(self._roots),
            metrics=self._metrics.snapshot(),
        )


class _NullSpan:
    """Inert span: context manager and attribute sink in one object."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass

    duration = None
    children: tuple = ()


class _NullInstrument:
    """Inert counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NullTracer:
    """The do-nothing tracer wired in by default.

    Every method returns a shared inert singleton; no state is ever
    allocated, so instrumentation points cost one attribute lookup and
    one call — provably negligible against the E20 engine bench.
    """

    enabled = False

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def time(self) -> float:
        return 0.0

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def report(self, name: str = "run") -> "RunReport":
        from repro.obs.report import RunReport

        return RunReport(name=name, spans=[], metrics={})


#: Shared default instance — instrumented modules use this instead of
#: allocating a NullTracer per call.
NULL_TRACER = NullTracer()
