"""Deterministic chaos: the fault-injection harness.

A :class:`FaultInjector` is the test double the resilient executor
consults around every chunk attempt. It is configured with declarative
:class:`FaultSpec` rules — *make chunk N crash on attempt K*, *hang any
chunk containing this pair*, *return garbage once* — and fires them
with no randomness whatsoever: the same workload plus the same specs
produces the same faults, attempt for attempt. Pair it with a
:class:`~repro.obs.clock.ManualClock` (and ``sleep=clock.advance``) in
the :class:`~repro.resilience.policy.ResilienceConfig` and the entire
failure→backoff→recovery timeline becomes exactly assertable.

Fault kinds
-----------

- ``"crash"``   — raises :class:`~repro.resilience.policy.InjectedCrash`
  before the attempt dispatches (stands in for a dead worker process).
- ``"hang"``    — raises :class:`~repro.resilience.policy.InjectedHang`;
  the executor charges the attempt its full timeout on the injected
  clock and records a timeout failure (a worker that never answers).
- ``"garbage"`` — replaces the attempt's result with ``payload``
  (default ``None``), exercising result-shape validation (a corrupted
  response).
- ``"kill"``    — terminates the *driver process itself* via
  ``os._exit(137)``: no stack unwinding, no ``finally`` blocks, no
  atexit hooks — the faithful model of an OOM kill, a ``kill -9``, or
  a node loss mid-run. Only checkpointing
  (:mod:`repro.recovery`) survives it; pair with a
  :class:`~repro.recovery.RunStore` and resume the run in a fresh
  process.
- ``"slow"``    — injects ``delay`` seconds of latency (through the
  injector's ``sleeper``, real by default) before the attempt runs: a
  degraded-but-alive worker, the input hang detectors must *not*
  mistake for a dead one.
- ``"flap"``    — raises
  :class:`~repro.resilience.policy.InjectedWorkerDeath`, a
  ``BaseException`` the retry machinery cannot absorb: the worker is
  dead and only a supervisor restart (or, in a real worker process, a
  hard exit 137) handles it. Target specific restarts with
  ``incarnations`` — ``flap(shard=1, incarnations=(1, 2))`` kills the
  shard's first two incarnations and lets the third run clean, which
  is how repeated-crash-then-recover timelines stay deterministic.

Targeting composes: ``chunk`` matches the top-level chunk index,
``item`` matches any chunk *containing* that item (which is how a
poison pair keeps failing through bisection until it is isolated),
``attempts`` limits firing to specific 1-based attempt numbers (omit it
for a persistent fault, ``attempts=1`` for a transient one), and
``incarnations`` limits firing to specific 1-based worker incarnations
(bound via :meth:`FaultInjector.bind_incarnation` by the supervisor on
every launch and restart).

This module ships with the library — not just its test suite — so
downstream users can chaos-test their own deployments the same way::

    from repro.obs import ManualClock
    from repro.resilience import ResilienceConfig, RetryPolicy
    from repro.resilience.testing import FaultInjector, crash

    clock = ManualClock(tick=0.0)
    config = ResilienceConfig(
        retry=RetryPolicy(max_attempts=3, base_delay=1.0),
        failure="retry",
        clock=clock,
        sleep=clock.advance,
        fault_injector=FaultInjector(crash(chunk=0, attempts=1)),
    )
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import ConfigurationError
from repro.resilience.policy import (
    InjectedCrash,
    InjectedHang,
    InjectedWorkerDeath,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "KILL_EXIT_CODE",
    "crash",
    "flap",
    "garbage",
    "hang",
    "kill",
    "slow",
]

FAULT_KINDS: tuple[str, ...] = (
    "crash", "hang", "garbage", "kill", "slow", "flap",
)

#: Exit status used by ``kind="kill"`` — the conventional status of a
#: process terminated by SIGKILL (128 + 9), so resume harnesses can
#: distinguish an injected kill from an ordinary crash.
KILL_EXIT_CODE = 137


def _normalize_attempts(attempts) -> frozenset | None:
    if attempts is None:
        return None
    if isinstance(attempts, int):
        return frozenset((attempts,))
    return frozenset(attempts)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault rule.

    ``chunk`` / ``item`` / ``attempts`` / ``shard`` / ``incarnations``
    are conjunctive filters; a ``None`` filter matches everything.
    ``shard`` restricts the rule to the worker bound to that shard id
    via :meth:`FaultInjector.bind_shard` (the sharded runtime binds
    each worker before it runs its chunks); an unbound injector never
    fires shard-targeted rules. ``incarnations`` restricts the rule to
    specific 1-based worker incarnations (bound via
    :meth:`FaultInjector.bind_incarnation`; an unbound injector is
    incarnation 1). ``max_fires`` caps how many times the rule fires
    in total (``None`` = unlimited). ``payload`` is the garbage value
    substituted for ``kind="garbage"``; ``delay`` is the injected
    latency in seconds for ``kind="slow"``.
    """

    kind: str
    chunk: int | None = None
    item: object | None = None
    attempts: object = None
    max_fires: int | None = None
    payload: object = None
    shard: int | None = None
    incarnations: object = None
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigurationError("max_fires must be >= 1")
        if (
            not isinstance(self.delay, (int, float))
            or not math.isfinite(self.delay)
            or self.delay < 0
        ):
            raise ConfigurationError(
                f"delay must be a finite number >= 0, got {self.delay!r}"
            )
        object.__setattr__(
            self, "attempts", _normalize_attempts(self.attempts)
        )
        object.__setattr__(
            self, "incarnations", _normalize_attempts(self.incarnations)
        )

    def matches(self, chunk_index: int, items: list, attempt: int) -> bool:
        if self.chunk is not None and self.chunk != chunk_index:
            return False
        if self.item is not None and self.item not in items:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True


def crash(
    chunk: int | None = None,
    item: object | None = None,
    attempts=None,
    max_fires: int | None = None,
    shard: int | None = None,
    incarnations=None,
) -> FaultSpec:
    """A crash rule (see :class:`FaultSpec` for targeting)."""
    return FaultSpec(
        "crash", chunk, item, attempts, max_fires,
        shard=shard, incarnations=incarnations,
    )


def hang(
    chunk: int | None = None,
    item: object | None = None,
    attempts=None,
    max_fires: int | None = None,
    shard: int | None = None,
    incarnations=None,
) -> FaultSpec:
    """A hang rule: the attempt burns its full timeout, then fails."""
    return FaultSpec(
        "hang", chunk, item, attempts, max_fires,
        shard=shard, incarnations=incarnations,
    )


def kill(
    chunk: int | None = None,
    item: object | None = None,
    attempts=None,
    max_fires: int | None = None,
    shard: int | None = None,
    incarnations=None,
) -> FaultSpec:
    """A process-kill rule: the driver dies hard via ``os._exit``.

    Unlike ``crash`` this is unrecoverable in-process — the run ends
    instantly with exit status :data:`KILL_EXIT_CODE` and must be
    resumed from its checkpoints in a fresh process. Use only inside a
    sacrificial subprocess (see ``tests/recovery_driver.py``) or a
    supervised worker.
    """
    return FaultSpec(
        "kill", chunk, item, attempts, max_fires,
        shard=shard, incarnations=incarnations,
    )


def garbage(
    chunk: int | None = None,
    item: object | None = None,
    attempts=None,
    max_fires: int | None = None,
    payload: object = None,
    shard: int | None = None,
    incarnations=None,
) -> FaultSpec:
    """A garbage rule: the attempt's result is replaced by ``payload``."""
    return FaultSpec(
        "garbage", chunk, item, attempts, max_fires, payload,
        shard=shard, incarnations=incarnations,
    )


def slow(
    chunk: int | None = None,
    item: object | None = None,
    attempts=None,
    max_fires: int | None = None,
    shard: int | None = None,
    incarnations=None,
    delay: float = 0.05,
) -> FaultSpec:
    """A latency rule: the attempt is delayed ``delay`` seconds.

    The attempt still runs (and usually succeeds) after the delay — a
    degraded worker, not a dead one. Hang detection built on heartbeat
    *sequence numbers* keeps making progress through a slow fault;
    detection built on wall-clock gaps would falsely kill the worker.
    """
    return FaultSpec(
        "slow", chunk, item, attempts, max_fires,
        shard=shard, incarnations=incarnations, delay=delay,
    )


def flap(
    chunk: int | None = None,
    item: object | None = None,
    attempts=None,
    max_fires: int | None = None,
    shard: int | None = None,
    incarnations=None,
) -> FaultSpec:
    """A repeating-death rule: the worker dies, restarts, dies again.

    Fires :class:`~repro.resilience.policy.InjectedWorkerDeath` (in a
    supervised worker process: a hard exit 137) on every matching
    incarnation. ``flap(shard=1, incarnations=(1, 2))`` is the
    canonical flapping worker: dead on launch, dead on first restart,
    clean on the second — exactly reproducible because the supervisor
    binds the incarnation number before every (re)launch.
    """
    return FaultSpec(
        "flap", chunk, item, attempts, max_fires,
        shard=shard, incarnations=incarnations,
    )


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (the injector's audit trail)."""

    kind: str
    chunk: int
    attempt: int
    n_items: int
    incarnation: int = 1


class FaultInjector:
    """The executor-facing hook that fires :class:`FaultSpec` rules.

    The executor calls :meth:`on_attempt` before dispatching a chunk
    attempt (crash/hang/kill/slow/flap rules fire here) and
    :meth:`on_result` after a successful attempt (garbage rules fire
    here). Every firing is appended to :attr:`history` so tests can
    assert exactly which faults the run absorbed.

    ``sleeper`` serves ``slow`` faults (default :func:`time.sleep`);
    inject a :meth:`ManualClock.advance <repro.obs.clock.ManualClock.advance>`
    to make injected latency instant and exact.
    """

    def __init__(self, *specs: FaultSpec, sleeper=None) -> None:
        self._specs: list[list] = [[spec, 0] for spec in specs]
        self._shard: int | None = None
        self._incarnation: int = 1
        self._sleeper = sleeper if sleeper is not None else time.sleep
        self.history: list[FaultEvent] = []

    def bind_shard(self, shard: int | None) -> None:
        """Declare which shard this injector is currently serving.

        Shard-targeted specs (``shard=`` filter) fire only while the
        injector is bound to that shard id. The sharded runtime calls
        this in each worker before the shard's chunks run; outside a
        sharded run the injector stays unbound and shard-targeted
        specs never fire.
        """
        self._shard = shard

    def bind_incarnation(self, incarnation: int) -> None:
        """Declare which worker incarnation (1-based) is running.

        The supervisor binds ``1`` on first launch and ``restarts + 1``
        on every restart (in the worker process itself for the process
        backend), so ``incarnations``-targeted specs replay identically
        across supervised runs. An unbound injector is incarnation 1.
        """
        if not isinstance(incarnation, int) or incarnation < 1:
            raise ConfigurationError(
                f"incarnation must be an integer >= 1, got {incarnation!r}"
            )
        self._incarnation = incarnation

    def _fire(self, kinds, chunk_index, items, attempt) -> FaultSpec | None:
        for slot in self._specs:
            spec, fired = slot
            if spec.kind not in kinds:
                continue
            if spec.max_fires is not None and fired >= spec.max_fires:
                continue
            if spec.shard is not None and spec.shard != self._shard:
                continue
            if (
                spec.incarnations is not None
                and self._incarnation not in spec.incarnations
            ):
                continue
            if spec.matches(chunk_index, list(items), attempt):
                slot[1] = fired + 1
                self.history.append(
                    FaultEvent(
                        spec.kind, chunk_index, attempt, len(items),
                        self._incarnation,
                    )
                )
                return spec
        return None

    def on_attempt(self, chunk_index: int, items, attempt: int) -> None:
        """Raise the configured crash/hang/death — or kill or delay
        the process — for this attempt, if any rule fires."""
        spec = self._fire(
            ("crash", "hang", "kill", "slow", "flap"),
            chunk_index, items, attempt,
        )
        if spec is None:
            return
        if spec.kind == "kill":
            # Hard death: no unwinding, no cleanup. Models SIGKILL.
            os._exit(KILL_EXIT_CODE)
        if spec.kind == "flap":
            raise InjectedWorkerDeath(self._shard, self._incarnation)
        if spec.kind == "slow":
            if spec.delay:
                self._sleeper(spec.delay)
            return
        if spec.kind == "crash":
            raise InjectedCrash(
                f"injected crash: chunk {chunk_index} attempt {attempt}"
            )
        raise InjectedHang(
            f"injected hang: chunk {chunk_index} attempt {attempt}"
        )

    def on_result(self, chunk_index: int, items, attempt: int, value):
        """Substitute garbage for this attempt's result, if configured."""
        spec = self._fire(("garbage",), chunk_index, items, attempt)
        if spec is None:
            return value
        return spec.payload

    def fired(self, kind: str | None = None) -> int:
        """How many faults fired (optionally of one kind)."""
        if kind is None:
            return len(self.history)
        return sum(1 for event in self.history if event.kind == kind)
