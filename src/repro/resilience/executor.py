"""The resilient chunk executor: retry → bisect → quarantine.

This is the recovery loop every fault-tolerant execution path shares.
Work arrives as an ordered list of chunks (lists of items — id pairs
for the comparison engine, reduce keys for MapReduce) plus a
``run_attempt(items, timeout)`` callable supplied by the caller (a
direct call for serial execution, a pool submission with a real future
timeout for the process backend). The executor then guarantees:

1. **Retry with backoff** — a crashed, timed-out, or garbage-returning
   attempt is retried up to ``RetryPolicy.max_attempts`` times, sleeping
   the policy's exponential-backoff schedule between attempts (through
   the injectable clock/sleep, so tests assert exact timings).
2. **Bisection** — a chunk that exhausts its attempts is split in half
   and each half gets a fresh attempt budget, recursively, isolating
   the *poison item* from its innocent neighbours in O(log n) rounds.
3. **Graceful degradation** — what happens to the isolated failure is
   the :data:`~repro.resilience.policy.FailurePolicy`'s call: ``"fail"``
   aborts on first failure, ``"retry"`` raises
   :class:`~repro.resilience.policy.PoisonPairError` after exhaustion,
   ``"skip"`` quarantines into the
   :class:`~repro.resilience.deadletter.DeadLetterLog` and the run
   completes with partial results.

Every attempt, retry, failure, bisection, and quarantine emits
``resilience.*`` counters, and a heartbeat gauge set
(``resilience.heartbeat_seq`` / ``heartbeat_chunk`` /
``heartbeat_time``) is written *before* each attempt blocks — so a
hung worker is visible in the :class:`~repro.obs.report.RunReport` as
a heartbeat frozen at the stalled chunk. The sequence number is the
load-bearing one: it increments monotonically per attempt, so a
supervisor comparing consecutive observations can tell "dead between
heartbeats" from "slow" without consulting any wall clock — a frozen
seq is staleness regardless of how timestamps drift. When the config
carries a ``heartbeat`` emitter
(:class:`repro.supervision.HeartbeatEmitter`), the same beat is
published cross-process before every attempt.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.obs import NULL_TRACER
from repro.obs.clock import SystemClock
from repro.resilience.deadletter import DeadLetterEntry, DeadLetterLog
from repro.resilience.policy import (
    ChunkExecutionError,
    ChunkResultInvalid,
    ChunkTimeoutError,
    DeadlineExceededError,
    InjectedHang,
    PoisonPairError,
    ResilienceConfig,
)

__all__ = ["ResilientChunkExecutor", "ResilientOutcome"]

RunAttempt = Callable[[list, "float | None"], object]
Validator = Callable[[list, object], None]


@dataclass
class ResilientOutcome:
    """What one resilient pass produced.

    ``results`` lists ``(items, value)`` units in input order; after
    bisection one input chunk may contribute several units, and
    quarantined items contribute none. ``completed_chunks`` counts
    top-level chunks whose every item succeeded.
    """

    results: list[tuple[list, object]] = field(default_factory=list)
    dead_letters: DeadLetterLog = field(default_factory=DeadLetterLog)
    n_chunks: int = 0
    completed_chunks: int = 0
    n_attempts: int = 0
    n_retries: int = 0
    n_bisections: int = 0
    replayed_chunks: int = 0

    @property
    def quarantined_items(self) -> tuple:
        return self.dead_letters.quarantined_items()


class _Failure:
    """The classified outcome of an exhausted attempt loop."""

    __slots__ = ("kind", "error", "attempts")

    def __init__(self, kind: str, error: BaseException, attempts: int):
        self.kind = kind
        self.error = error
        self.attempts = attempts


class ResilientChunkExecutor:
    """Runs chunked work under a :class:`ResilienceConfig`.

    Parameters
    ----------
    config:
        Retry policy, failure policy, timeout/deadline, injectable
        clock/sleep, and the optional fault injector.
    tracer:
        An :class:`repro.obs.Tracer` for the ``resilience.*`` counters,
        heartbeat gauges, and the per-run span. Defaults to the no-op.
    scope:
        Names the execution layer in dead-letter entries and span
        attributes (``"engine.chunk"``, ``"mapreduce.key"``).
    checkpoint:
        An optional checkpoint store (a
        :class:`repro.recovery.RunStore` or a view of one). When set,
        each completed top-level chunk — its result units, its
        dead-letter entries, whether it was fully clean — is durably
        saved under ``chunk.{index}``, and a later run over the same
        chunk list replays saved chunks instead of recomputing them. A
        per-chunk content signature guards against replaying another
        workload's chunks.
    """

    def __init__(
        self,
        config: ResilienceConfig,
        tracer=None,
        scope: str = "engine.chunk",
        checkpoint=None,
    ) -> None:
        self._config = config
        self._clock = config.clock or SystemClock()
        self._sleep = config.sleep or time.sleep
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._scope = scope
        self._checkpoint = checkpoint
        self._heartbeat_seq = 0
        # Route the store's recovery.* counters into this run's tracer
        # unless the caller already bound one.
        if (
            checkpoint is not None
            and self._tracer is not NULL_TRACER
            and getattr(checkpoint, "tracer", None) is NULL_TRACER
        ):
            checkpoint.tracer = self._tracer

    def run(
        self,
        chunks: Sequence[list],
        run_attempt: RunAttempt,
        validate: Validator | None = None,
    ) -> ResilientOutcome:
        """Execute every chunk, recovering per the configured policy.

        ``validate(items, value)`` (optional) must raise
        :class:`ChunkResultInvalid` when a result's shape is wrong —
        the garbage-detection hook that turns silent corruption into a
        retryable failure.
        """
        return self._execute(chunks, run_attempt, validate, None, len(chunks))

    def run_stream(
        self,
        chunks,
        run_attempt: RunAttempt,
        validate: Validator | None = None,
        consume=None,
    ) -> ResilientOutcome:
        """Like :meth:`run` over a lazily produced chunk sequence.

        ``chunks`` may be any iterable — its length is never taken, so
        a generator feeding chunks straight out of a spill merge works;
        the outcome's ``n_chunks`` is counted as chunks arrive. When
        ``consume(items, value)`` is given, each completed result unit
        is handed to it in input order and *not* retained on the
        outcome, keeping resident memory bounded by one chunk's results
        however long the stream runs. Checkpoint persist/replay still
        operates per top-level chunk, before the units are consumed.
        """
        return self._execute(iter(chunks), run_attempt, validate, consume, None)

    def _execute(
        self,
        chunks,
        run_attempt: RunAttempt,
        validate: Validator | None,
        consume,
        n_chunks: int | None,
    ) -> ResilientOutcome:
        tracer = self._tracer
        outcome = ResilientOutcome(
            n_chunks=n_chunks or 0,
            dead_letters=DeadLetterLog(
                path=self._config.dead_letter_path,
                max_entries=self._config.dead_letter_max_entries,
                max_bytes=self._config.dead_letter_max_bytes,
            ),
        )
        started = self._clock.now()
        deadline_at = (
            started + self._config.deadline
            if self._config.deadline is not None
            else None
        )
        with tracer.span(
            "resilience.execute",
            scope=self._scope,
            failure_policy=self._config.failure,
        ) as span:
            for index, chunk in enumerate(chunks):
                items = list(chunk)
                if n_chunks is None:
                    outcome.n_chunks = index + 1
                n_units = len(outcome.results)
                n_dead = len(outcome.dead_letters)
                if not self._replay(index, items, outcome):
                    fully_ok = self._recover(
                        str(index),
                        index,
                        items,
                        run_attempt,
                        validate,
                        deadline_at,
                        outcome,
                    )
                    if fully_ok:
                        outcome.completed_chunks += 1
                    self._persist(
                        index, items, outcome, n_units, n_dead, fully_ok
                    )
                if consume is not None:
                    for unit_items, value in outcome.results[n_units:]:
                        consume(unit_items, value)
                    del outcome.results[n_units:]
                tracer.gauge("resilience.chunks_done").set(index + 1)
            span.set("n_chunks", outcome.n_chunks)
            self._publish(span, outcome)
        return outcome

    # --- checkpointing -----------------------------------------------

    @staticmethod
    def _signature(items: list) -> str:
        """Content signature tying a checkpoint to its exact workload."""
        return hashlib.sha256(repr(items).encode("utf-8")).hexdigest()

    def _replay(self, index: int, items: list, outcome) -> bool:
        """Restore chunk ``index`` from the checkpoint store, if saved.

        A signature mismatch (different items at this position) or a
        corrupt artifact falls through to recomputation — a stale or
        damaged checkpoint can cost time, never correctness.
        """
        if self._checkpoint is None:
            return False
        saved = self._checkpoint.load(f"chunk.{index}")
        if saved is None:
            return False
        if saved.get("signature") != self._signature(items):
            self._tracer.counter("recovery.signature_mismatch").inc()
            return False
        outcome.results.extend(saved["units"])
        # Replayed dead letters were already persisted by the killed
        # run; restore() re-attaches them without re-appending to the
        # durable sink.
        outcome.dead_letters.restore(saved["dead"])
        if saved["fully_ok"]:
            outcome.completed_chunks += 1
        outcome.replayed_chunks += 1
        self._tracer.counter("recovery.chunks_replayed").inc()
        return True

    def _persist(
        self,
        index: int,
        items: list,
        outcome,
        n_units: int,
        n_dead: int,
        fully_ok: bool,
    ) -> None:
        """Durably checkpoint what chunk ``index`` just produced."""
        if self._checkpoint is None:
            return
        self._checkpoint.save(
            f"chunk.{index}",
            {
                "signature": self._signature(items),
                "units": outcome.results[n_units:],
                "dead": list(outcome.dead_letters.entries[n_dead:]),
                "fully_ok": fully_ok,
            },
        )

    # --- recovery ----------------------------------------------------

    def _recover(
        self,
        chunk_id: str,
        top_index: int,
        items: list,
        run_attempt: RunAttempt,
        validate: Validator | None,
        deadline_at: float | None,
        outcome: ResilientOutcome,
    ) -> bool:
        """Run one (sub-)chunk to success, bisection, or quarantine."""
        config = self._config
        if deadline_at is not None and self._clock.now() >= deadline_at:
            return self._expire(chunk_id, items, deadline_at, outcome)
        value, failure = self._attempt_loop(
            chunk_id, top_index, items, run_attempt, validate, outcome
        )
        if failure is None:
            outcome.results.append((items, value))
            return True
        if config.failure == "fail":
            raise ChunkExecutionError(
                chunk_id,
                failure.kind,
                failure.attempts,
                tuple(items),
                failure.error,
            )
        if len(items) > 1:
            outcome.n_bisections += 1
            self._tracer.counter("resilience.bisections").inc()
            mid = len(items) // 2
            left_ok = self._recover(
                chunk_id + ".0", top_index, items[:mid],
                run_attempt, validate, deadline_at, outcome,
            )
            right_ok = self._recover(
                chunk_id + ".1", top_index, items[mid:],
                run_attempt, validate, deadline_at, outcome,
            )
            return left_ok and right_ok
        if config.failure == "skip":
            self._quarantine(chunk_id, failure, items, outcome)
            return False
        raise PoisonPairError(
            chunk_id,
            failure.kind,
            failure.attempts,
            items[0],
            failure.error,
        )

    def _attempt_loop(
        self,
        chunk_id: str,
        top_index: int,
        items: list,
        run_attempt: RunAttempt,
        validate: Validator | None,
        outcome: ResilientOutcome,
    ) -> tuple[object, _Failure | None]:
        """Try one chunk up to the policy's attempt budget."""
        config = self._config
        tracer = self._tracer
        injector = config.fault_injector
        max_attempts = (
            1 if config.failure == "fail" else config.retry.max_attempts
        )
        failure: _Failure | None = None
        for attempt in range(1, max_attempts + 1):
            # Heartbeat first, so a stall leaves the last dispatched
            # chunk/attempt/timestamp visible in the run report. The
            # sequence number increments on every attempt: a worker
            # that dies between beats leaves it frozen, which is how
            # staleness is detected without wall clocks.
            self._heartbeat_seq += 1
            tracer.gauge("resilience.heartbeat_seq").set(self._heartbeat_seq)
            tracer.gauge("resilience.heartbeat_chunk").set(top_index)
            tracer.gauge("resilience.heartbeat_attempt").set(attempt)
            tracer.gauge("resilience.heartbeat_time").set(self._clock.now())
            if config.heartbeat is not None:
                config.heartbeat.beat(chunk=top_index, attempt=attempt)
            outcome.n_attempts += 1
            tracer.counter("resilience.attempts").inc()
            try:
                if injector is not None:
                    injector.on_attempt(top_index, items, attempt)
                value = run_attempt(list(items), config.timeout)
                if injector is not None:
                    value = injector.on_result(
                        top_index, items, attempt, value
                    )
                if validate is not None:
                    validate(items, value)
                return value, None
            except InjectedHang as error:
                # Simulate waiting out the full per-attempt timeout.
                if config.timeout is not None:
                    self._sleep(config.timeout)
                failure = _Failure("timeout", error, attempt)
            except ChunkTimeoutError as error:
                failure = _Failure("timeout", error, attempt)
            except ChunkResultInvalid as error:
                failure = _Failure("garbage", error, attempt)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:  # noqa: BLE001 — any worker crash
                failure = _Failure("crash", error, attempt)
            tracer.counter("resilience.failures").inc()
            tracer.counter(f"resilience.failures_{failure.kind}").inc()
            if attempt < max_attempts:
                delay = config.retry.delay(attempt, salt=chunk_id)
                tracer.counter("resilience.backoff_seconds").inc(delay)
                self._sleep(delay)
                tracer.counter("resilience.retries").inc()
                outcome.n_retries += 1
        return None, failure

    def _expire(
        self,
        chunk_id: str,
        items: list,
        deadline_at: float,
        outcome: ResilientOutcome,
    ) -> bool:
        """Handle a chunk reached after the run deadline passed."""
        started = deadline_at - self._config.deadline
        elapsed = self._clock.now() - started
        if self._config.failure == "skip":
            error = DeadlineExceededError(self._config.deadline, elapsed)
            self._quarantine(
                chunk_id, _Failure("deadline", error, 0), items, outcome
            )
            return False
        raise DeadlineExceededError(self._config.deadline, elapsed)

    def _quarantine(
        self,
        chunk_id: str,
        failure: _Failure,
        items: list,
        outcome: ResilientOutcome,
    ) -> None:
        entry = DeadLetterEntry(
            scope=self._scope,
            chunk_id=chunk_id,
            kind=failure.kind,
            error_type=type(failure.error).__name__,
            error=str(failure.error),
            attempts=failure.attempts,
            items=tuple(items),
            quarantined_at=self._clock.now(),
        )
        outcome.dead_letters.add(entry)
        self._tracer.counter("resilience.quarantined_items").inc(len(items))
        self._tracer.counter("resilience.quarantined_entries").inc()

    def _publish(self, span, outcome: ResilientOutcome) -> None:
        """Touch every counter and stamp the span (zeroed when clean)."""
        tracer = self._tracer
        for name in (
            "resilience.attempts",
            "resilience.retries",
            "resilience.failures",
            "resilience.bisections",
            "resilience.quarantined_items",
            "resilience.quarantined_entries",
            "resilience.backoff_seconds",
        ):
            tracer.counter(name).inc(0)
        span.set("completed_chunks", outcome.completed_chunks)
        span.set("replayed_chunks", outcome.replayed_chunks)
        span.set("n_attempts", outcome.n_attempts)
        span.set("n_retries", outcome.n_retries)
        span.set("n_bisections", outcome.n_bisections)
        span.set("n_quarantined", len(outcome.quarantined_items))
