"""repro.resilience — fault-tolerant execution for every parallel path.

Big-data integration jobs run over many unreliable sources and many
unreliable workers; partial failure is the norm. This package makes
the stack degrade gracefully instead of aborting:

- :class:`RetryPolicy` — exponential backoff with a cap and
  deterministic jitter, timed through an injectable clock/sleep.
- :data:`FailurePolicy` — ``"fail"`` (abort fast), ``"retry"`` (retry,
  bisect, then raise on the isolated poison item), ``"skip"``
  (quarantine and complete with partial results).
- :class:`ResilienceConfig` — the one object threaded through
  :class:`~repro.linkage.engine.ParallelComparisonEngine`,
  :func:`~repro.dist.parallel_linkage.run_distributed_linkage`,
  :class:`~repro.dist.mapreduce.MapReduceJob`, and
  :class:`~repro.core.pipeline.PipelineConfig`.
- :class:`ResilientChunkExecutor` — the shared retry → bisect →
  quarantine loop, emitting ``resilience.*`` counters and heartbeat
  gauges into :mod:`repro.obs`.
- :class:`DeadLetterLog` — quarantined work carried on run results and
  serialized to JSON for CI artifacts.
- :mod:`repro.resilience.testing` — the deterministic fault-injection
  harness (:class:`~repro.resilience.testing.FaultInjector`) for
  chaos-testing this library and systems built on it.
"""

from repro.resilience.deadletter import DeadLetterEntry, DeadLetterLog
from repro.resilience.executor import (
    ResilientChunkExecutor,
    ResilientOutcome,
)
from repro.resilience.policy import (
    ChunkExecutionError,
    ChunkResultInvalid,
    ChunkTimeoutError,
    DeadlineExceededError,
    FailurePolicy,
    InjectedCrash,
    InjectedHang,
    InjectedWorkerDeath,
    PoisonPairError,
    ResilienceConfig,
    ResilienceError,
    RetryPolicy,
)

__all__ = [
    "ChunkExecutionError",
    "ChunkResultInvalid",
    "ChunkTimeoutError",
    "DeadLetterEntry",
    "DeadLetterLog",
    "DeadlineExceededError",
    "FailurePolicy",
    "InjectedCrash",
    "InjectedHang",
    "InjectedWorkerDeath",
    "PoisonPairError",
    "ResilienceConfig",
    "ResilienceError",
    "ResilientChunkExecutor",
    "ResilientOutcome",
    "RetryPolicy",
]
