"""Retry, timeout, and failure policies for fault-tolerant execution.

At web scale partial failure is the norm, not the exception: a worker
process dies, a chunk of comparisons hangs on a pathological input, a
reducer returns garbage after an OOM. The policies here describe *what
the driver should do about it* — how many times to retry, how long to
back off, whether to abort, keep trying, or quarantine — as frozen,
picklable data that threads unchanged through the engine, the
distributed driver, and the pipeline config.

Timing is fully injectable: backoff sleeps and deadline checks flow
through the clock/sleep carried on :class:`ResilienceConfig`, so tests
pair a :class:`~repro.obs.clock.ManualClock` with ``sleep=clock.advance``
and assert *exact* schedules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Literal

from repro.core.errors import ConfigurationError, ReproError

__all__ = [
    "ChunkExecutionError",
    "ChunkResultInvalid",
    "ChunkTimeoutError",
    "DeadlineExceededError",
    "FailurePolicy",
    "InjectedCrash",
    "InjectedHang",
    "InjectedWorkerDeath",
    "PoisonPairError",
    "ResilienceConfig",
    "ResilienceError",
    "RetryPolicy",
]

#: What to do with a unit of work that keeps failing.
#:
#: - ``"fail"``  — abort on the *first* failure, no retries (fail fast).
#: - ``"retry"`` — retry with backoff, bisect repeated failures down to
#:   the poison unit, then raise :class:`PoisonPairError`.
#: - ``"skip"``  — like ``"retry"``, but quarantine persistent failures
#:   into a :class:`~repro.resilience.deadletter.DeadLetterLog` and
#:   complete the run with partial results.
FailurePolicy = Literal["fail", "retry", "skip"]

FAILURE_POLICIES: tuple[str, ...] = ("fail", "retry", "skip")


class ResilienceError(ReproError):
    """Base class for fault-tolerance errors."""


class ChunkExecutionError(ResilienceError):
    """A chunk of work failed beyond what the policy allows.

    Carries enough to identify the failing work: the chunk id (a
    bisection path like ``"3"`` or ``"3.1.0"``), the failure kind, the
    attempt count, and the items the chunk held.
    """

    def __init__(
        self,
        chunk_id: str,
        kind: str,
        attempts: int,
        items: tuple,
        cause: BaseException | None = None,
    ) -> None:
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"chunk {chunk_id} failed ({kind}) after "
            f"{attempts} attempt(s) over {len(items)} item(s){detail}"
        )
        self.chunk_id = chunk_id
        self.kind = kind
        self.attempts = attempts
        self.items = items
        self.cause = cause


class PoisonPairError(ChunkExecutionError):
    """Bisection isolated a single item that fails every attempt.

    Raised under ``FailurePolicy="retry"``; under ``"skip"`` the same
    item is quarantined instead.
    """

    def __init__(
        self,
        chunk_id: str,
        kind: str,
        attempts: int,
        item,
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(chunk_id, kind, attempts, (item,), cause)
        self.item = item


class ChunkTimeoutError(ResilienceError):
    """One chunk attempt exceeded its per-attempt timeout."""

    def __init__(self, timeout: float) -> None:
        super().__init__(f"chunk attempt exceeded timeout of {timeout}s")
        self.timeout = timeout


class DeadlineExceededError(ResilienceError):
    """The run's total deadline expired with work still pending."""

    def __init__(self, deadline: float, elapsed: float) -> None:
        super().__init__(
            f"run deadline of {deadline}s exceeded after {elapsed:.3f}s"
        )
        self.deadline = deadline
        self.elapsed = elapsed


class ChunkResultInvalid(ResilienceError):
    """A chunk returned a result that fails shape validation (garbage)."""


class InjectedCrash(RuntimeError):
    """A crash raised by a fault injector (stands in for any worker
    exception, so deliberately *not* a :class:`ReproError`)."""


class InjectedHang(ResilienceError):
    """A simulated hang: the executor charges the attempt its full
    timeout on the injected clock and records a timeout failure."""


class InjectedWorkerDeath(BaseException):
    """An injected hard worker death (the ``flap`` fault).

    Deliberately a :class:`BaseException`: the in-process retry /
    bisect / quarantine machinery must *not* absorb it — a dead worker
    is not a failed chunk. Only a supervisor
    (:class:`repro.supervision.Supervisor`) handles it, by restarting
    the worker; in a real worker process the supervised wrapper
    converts it into a hard exit with status 137.
    """

    def __init__(self, shard: int | None, incarnation: int) -> None:
        super().__init__(
            f"injected worker death: shard {shard} "
            f"incarnation {incarnation}"
        )
        self.shard = shard
        self.incarnation = incarnation


def _unit_fraction(text: str) -> float:
    """Deterministic hash of ``text`` folded into [0, 1).

    Python's ``hash`` is salted per process, so jitter uses the same
    stable fold as :func:`repro.dist.mapreduce.hash_partitioner`.
    """
    value = 0
    for character in text:
        value = (value * 131 + ord(character)) % 1_000_000_007
    return value / 1_000_000_007


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a cap and deterministic jitter.

    After the n-th failed attempt (1-based) the delay is
    ``min(base_delay * multiplier**(n-1), max_delay)``, optionally
    stretched by up to ``jitter`` (a fraction, e.g. ``0.25`` for +25%)
    using a deterministic hash of the salt and attempt number — so two
    chunks retrying in lockstep de-synchronize, yet every run of the
    same workload backs off identically.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be an integer >= 1, "
                f"got {self.max_attempts!r}"
            )
        for name in ("base_delay", "multiplier", "max_delay", "jitter"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or not math.isfinite(
                value
            ):
                raise ConfigurationError(
                    f"{name} must be a finite number, got {value!r}"
                )
        if self.base_delay < 0:
            raise ConfigurationError(
                f"base_delay must be >= 0, got {self.base_delay!r}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier!r}"
            )
        if self.max_delay < self.base_delay:
            raise ConfigurationError(
                f"max_delay (the backoff cap, {self.max_delay!r}) must "
                f"be >= base_delay ({self.base_delay!r})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter!r}"
            )

    def delay(self, attempt: int, salt: str = "") -> float:
        """Backoff before retrying after failed ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError("attempt numbers are 1-based")
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if self.jitter:
            raw *= 1.0 + self.jitter * _unit_fraction(f"{salt}#{attempt}")
        return raw

    def schedule(self, salt: str = "") -> tuple[float, ...]:
        """The full backoff schedule: delays after attempts 1..n-1."""
        return tuple(
            self.delay(attempt, salt)
            for attempt in range(1, self.max_attempts)
        )


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the resilient executor needs, in one object.

    ``clock``/``sleep`` default to real time
    (:class:`~repro.obs.clock.SystemClock` / :func:`time.sleep`); tests
    inject a :class:`~repro.obs.clock.ManualClock` with
    ``sleep=clock.advance`` for exact, instant backoff timing.
    ``fault_injector`` is the chaos-testing hook
    (:class:`repro.resilience.testing.FaultInjector`); production runs
    leave it ``None``.

    ``timeout`` bounds one chunk *attempt* (enforced preemptively only
    by the process backend — a serial chunk cannot be interrupted, so
    serial timeouts fire only for injected hangs); ``deadline`` bounds
    the whole run as measured on the injected clock.

    ``dead_letter_path``, when set, makes every quarantine durable: the
    executor's :class:`~repro.resilience.deadletter.DeadLetterLog`
    appends each entry to that JSONL file with flush+fsync as it is
    written, so quarantined work survives process death mid-run.
    ``dead_letter_max_entries`` / ``dead_letter_max_bytes`` bound that
    log under sustained skip-mode faults (oldest entries rotate out,
    the newest tail is always retained).

    ``heartbeat``, when set (a
    :class:`repro.supervision.HeartbeatEmitter`), is beaten before
    every chunk attempt with a monotonic sequence number — the
    cross-process liveness signal a supervisor watches to tell a dead
    worker from a slow one without wall clocks.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    failure: str = "retry"
    timeout: float | None = None
    deadline: float | None = None
    clock: object | None = None
    sleep: Callable[[float], None] | None = None
    fault_injector: object | None = None
    dead_letter_path: str | None = None
    dead_letter_max_entries: int | None = None
    dead_letter_max_bytes: int | None = None
    heartbeat: object | None = None

    def __post_init__(self) -> None:
        if self.failure not in FAILURE_POLICIES:
            raise ConfigurationError(
                f"unknown failure policy {self.failure!r}; "
                f"expected one of {FAILURE_POLICIES}"
            )
        for name in ("timeout", "deadline"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, (int, float)) or not math.isfinite(
                value
            ):
                raise ConfigurationError(
                    f"{name} must be a finite number, got {value!r}"
                )
            if value <= 0:
                raise ConfigurationError(
                    f"{name} must be > 0, got {value!r}"
                )
        for name in ("dead_letter_max_entries", "dead_letter_max_bytes"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"{name} must be an integer >= 1, got {value!r}"
                )
        if (
            self.timeout is not None
            and self.deadline is not None
            and self.deadline < self.timeout
        ):
            raise ConfigurationError(
                f"deadline ({self.deadline!r}) must be >= the "
                f"per-attempt timeout ({self.timeout!r}); no attempt "
                "could ever finish inside the run budget"
            )
