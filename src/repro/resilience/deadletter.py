"""The dead-letter log: quarantined work, preserved not lost.

Under ``FailurePolicy="skip"`` a unit of work that keeps failing after
retries and bisection is *quarantined*: pulled out of the run and
appended here with everything needed to triage it later — which chunk,
what kind of failure, how many attempts, the offending items, and when.
A run that quarantined work still completes and still produces a
well-formed :class:`~repro.obs.report.RunReport`; the log rides on the
run result (:class:`~repro.linkage.engine.EngineRun`,
:class:`~repro.dist.parallel_linkage.DistributedRun`) and round-trips
through JSON so CI can ship it as an artifact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["DeadLetterEntry", "DeadLetterLog"]


def _jsonable(value):
    """Best-effort JSON form: tuples become lists, opaque values repr."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _tupled(value):
    """Inverse of :func:`_jsonable` for the list/tuple case."""
    if isinstance(value, list):
        return tuple(_tupled(item) for item in value)
    return value


@dataclass(frozen=True)
class DeadLetterEntry:
    """One quarantined unit of work.

    ``scope`` names the execution layer (``"engine.chunk"``,
    ``"mapreduce.key"``); ``chunk_id`` is the bisection path of the
    failing chunk (``"3"``, ``"3.1.0"``); ``kind`` is the failure class
    (``"crash"``, ``"timeout"``, ``"garbage"``, ``"deadline"``);
    ``items`` holds the quarantined work itself (id pairs for the
    engine, reduce keys for MapReduce); ``quarantined_at`` is the clock
    reading when the entry was written.
    """

    scope: str
    chunk_id: str
    kind: str
    error_type: str
    error: str
    attempts: int
    items: tuple
    quarantined_at: float

    def to_dict(self) -> dict:
        return {
            "scope": self.scope,
            "chunk_id": self.chunk_id,
            "kind": self.kind,
            "error_type": self.error_type,
            "error": self.error,
            "attempts": self.attempts,
            "items": _jsonable(list(self.items)),
            "quarantined_at": self.quarantined_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeadLetterEntry":
        return cls(
            scope=data["scope"],
            chunk_id=data["chunk_id"],
            kind=data["kind"],
            error_type=data["error_type"],
            error=data["error"],
            attempts=data["attempts"],
            items=tuple(_tupled(item) for item in data["items"]),
            quarantined_at=data["quarantined_at"],
        )


class DeadLetterLog:
    """An append-only list of :class:`DeadLetterEntry`.

    Merges across workers and runs like the obs collection protocol
    (:meth:`merge`), and serializes losslessly for JSON-able items
    (:meth:`to_json` / :meth:`from_json`).

    When constructed with ``path``, the log is *durable*: every
    :meth:`add` appends the entry as one JSON line to that file via a
    single write followed by flush+fsync, so quarantined work survives
    the driver dying right after the quarantine decision. A process
    killed mid-write can at worst leave one torn trailing line, which
    :meth:`from_jsonl` skips. Entries passed to the constructor (or
    :meth:`restore`) are assumed already persisted and are not
    re-written.

    ``max_entries`` / ``max_bytes`` bound the log: once either limit
    is exceeded, the *oldest* entries rotate out — in memory and, when
    durable, by atomically rewriting the sink — with the retained-tail
    guarantee that the newest ``max_entries`` entries (respectively the
    newest entries fitting in ``max_bytes``, and always at least the
    newest one) survive. :attr:`dropped` counts everything rotated
    away, so a sustained skip-mode fault storm stays accounted for
    even though the log stops growing.
    """

    def __init__(
        self,
        entries: Iterable[DeadLetterEntry] = (),
        path: str | None = None,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        for name, value in (
            ("max_entries", max_entries), ("max_bytes", max_bytes),
        ):
            if value is not None and (
                not isinstance(value, int) or value < 1
            ):
                raise ValueError(
                    f"{name} must be an integer >= 1, got {value!r}"
                )
        self._entries: list[DeadLetterEntry] = list(entries)
        self._path = path
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        #: Entries rotated out over this log's lifetime.
        self.dropped = 0
        #: How many rotation passes actually dropped entries.
        self.rotations = 0
        self._rotate()

    @property
    def path(self) -> str | None:
        """The durable JSONL sink, if any."""
        return self._path

    @staticmethod
    def _line(entry: DeadLetterEntry) -> str:
        return json.dumps(
            entry.to_dict(), sort_keys=True, ensure_ascii=False
        )

    def _append_durable(self, entry: DeadLetterEntry) -> None:
        # One write() call for the whole line keeps the append atomic
        # under O_APPEND; fsync makes it durable before we return.
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(self._line(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _rotate(self) -> None:
        """Drop the oldest entries past the configured bounds.

        Retained-tail guarantee: the suffix that survives is always the
        newest entries, and never empty while the log has any — even a
        single entry larger than ``max_bytes`` is kept, because losing
        the *latest* quarantine would defeat the log's purpose.
        """
        if self._max_entries is None and self._max_bytes is None:
            return
        keep_from = 0
        if (
            self._max_entries is not None
            and len(self._entries) > self._max_entries
        ):
            keep_from = len(self._entries) - self._max_entries
        if self._max_bytes is not None and self._entries:
            total = 0
            cutoff = len(self._entries) - 1
            for index in range(len(self._entries) - 1, -1, -1):
                total += len(
                    self._line(self._entries[index]).encode("utf-8")
                ) + 1
                if total > self._max_bytes and index < len(self._entries) - 1:
                    break
                cutoff = index
            keep_from = max(keep_from, cutoff)
        if keep_from <= 0:
            return
        self.dropped += keep_from
        self.rotations += 1
        del self._entries[:keep_from]
        if self._path is not None:
            self._rewrite_durable()

    def _rewrite_durable(self) -> None:
        """Atomically replace the sink with the retained tail."""
        tmp = f"{self._path}.rotate.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._path)

    def add(self, entry: DeadLetterEntry) -> None:
        self._entries.append(entry)
        if self._path is not None:
            self._append_durable(entry)
        self._rotate()

    def restore(self, entries: Iterable[DeadLetterEntry]) -> None:
        """Re-attach already-persisted entries (checkpoint replay)
        without re-appending them to the durable sink."""
        self._entries.extend(entries)
        self._rotate()

    def merge(self, other: "DeadLetterLog") -> None:
        """Append every entry of ``other`` (in order), durably when
        this log has a sink."""
        for entry in other._entries:
            self.add(entry)

    @property
    def entries(self) -> tuple[DeadLetterEntry, ...]:
        return tuple(self._entries)

    def quarantined_items(self) -> tuple:
        """Every quarantined item across all entries, in order."""
        return tuple(
            item for entry in self._entries for item in entry.items
        )

    def by_kind(self, kind: str) -> tuple[DeadLetterEntry, ...]:
        """Entries whose failure class is ``kind``."""
        return tuple(e for e in self._entries if e.kind == kind)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DeadLetterEntry]:
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeadLetterLog):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        return f"DeadLetterLog({len(self._entries)} entries)"

    # --- serialization -----------------------------------------------

    def to_dicts(self) -> list[dict]:
        return [entry.to_dict() for entry in self._entries]

    @classmethod
    def from_dicts(cls, data: Iterable[dict]) -> "DeadLetterLog":
        return cls(DeadLetterEntry.from_dict(item) for item in data)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dicts(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DeadLetterLog":
        return cls.from_dicts(json.loads(text))

    def to_jsonl(self) -> str:
        """One compact JSON object per line (the durable sink format)."""
        return "".join(
            json.dumps(e.to_dict(), sort_keys=True, ensure_ascii=False)
            + "\n"
            for e in self._entries
        )

    @classmethod
    def from_jsonl(cls, text: str) -> "DeadLetterLog":
        """Parse a JSONL sink, skipping a torn (crash-cut) last line."""
        entries = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(DeadLetterEntry.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                continue
        return cls(entries)
