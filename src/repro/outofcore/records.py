"""Random-access record lookup over a JSONL file with bounded memory.

:class:`IndexedRecordStore` gives the comparison engine the
``record_id → Record`` mapping it needs without holding the corpus
resident: one initial pass builds an id → byte-offset index (only ids
stay in memory), and lookups seek, parse, and cache the record in an
LRU whose cost is charged to the shared :class:`MemoryBudget`.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from collections.abc import Mapping
from pathlib import Path
from typing import Iterator

from repro.core.errors import DataModelError
from repro.core.record import Record
from repro.io.stream import record_from_row
from repro.outofcore.budget import MemoryBudget, record_nbytes

__all__ = ["IndexedRecordStore"]


class IndexedRecordStore(Mapping):
    """A ``record_id → Record`` mapping backed by ``records.jsonl``.

    Iteration order (and hence ``sorted(store)`` and ``.values()``)
    follows file order, matching the dict the in-memory path builds
    from the same file. ``values()`` streams the file sequentially
    without touching the cache, so full passes stay O(1) resident.
    """

    def __init__(
        self,
        records_path: str | Path,
        budget: MemoryBudget | None = None,
    ) -> None:
        self._path = Path(records_path)
        self._budget = budget
        self._cache: OrderedDict[str, tuple[Record, int]] = OrderedDict()
        self._offsets: dict[str, int] = {}
        try:
            with self._path.open("rb") as handle:
                position = 0
                for line_number, line in enumerate(handle, start=1):
                    length = len(line)
                    if line.strip():
                        try:
                            row = json.loads(line)
                        except json.JSONDecodeError as error:
                            raise DataModelError(
                                f"{self._path.name}:{line_number}: invalid "
                                f"JSON ({error})"
                            ) from error
                        self._offsets[row["record_id"]] = position
                    position += length
        except OSError as error:
            raise DataModelError(
                f"cannot read records file {self._path}: {error}"
            ) from error

    @property
    def path(self) -> Path:
        """The underlying ``.records.jsonl`` file."""
        return self._path

    def __len__(self) -> int:
        return len(self._offsets)

    def __iter__(self) -> Iterator[str]:
        return iter(self._offsets)

    def __contains__(self, record_id) -> bool:
        return record_id in self._offsets

    def __getitem__(self, record_id: str) -> Record:
        entry = self._cache.get(record_id)
        if entry is not None:
            self._cache.move_to_end(record_id)
            return entry[0]
        offset = self._offsets.get(record_id)
        if offset is None:
            raise KeyError(record_id)
        with self._path.open("rb") as handle:
            handle.seek(offset)
            record = record_from_row(json.loads(handle.readline()))
        cost = record_nbytes(record)
        if self._budget is not None:
            while self._cache and self._budget.would_exceed(cost):
                _, (_, old_cost) = self._cache.popitem(last=False)
                self._budget.remove(old_cost)
            if self._budget.would_exceed(cost):
                # Another component holds the remaining budget; serve
                # the record uncached rather than exceed the limit.
                return record
            self._budget.add(cost)
        self._cache[record_id] = (record, cost)
        return record

    def values(self):
        """Stream records in file order without populating the cache."""
        return _FileOrderValues(self)

    def release(self) -> None:
        """Drop the cache and release its budget tracking."""
        if self._budget is not None:
            for _, cost in self._cache.values():
                self._budget.remove(cost)
        self._cache.clear()

    def __repr__(self) -> str:
        return (
            f"IndexedRecordStore({str(self._path)!r}, "
            f"n_records={len(self._offsets)})"
        )


class _FileOrderValues:
    """Re-iterable sequential pass over the store's records."""

    def __init__(self, store: IndexedRecordStore) -> None:
        self._store = store

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Record]:
        with self._store.path.open(encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                yield record_from_row(json.loads(line))
