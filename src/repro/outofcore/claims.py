"""Bounded-memory grouped-claims aggregation and streaming fusion.

:class:`SpillableClaimGroups` accumulates claims out of core and
streams them back grouped by item, in item first-seen order with each
item's claims in claim order and at most one claim per
``(source, item)`` (first wins) — exactly the view a
:class:`~repro.fusion.base.ClaimSet` built by the in-memory pipeline
presents to the fusers. :func:`stream_voting` and
:func:`stream_accuvote` replay the corresponding fusers over that
stream, reproducing their output **bit for bit**: voting copies the
tie-break expression verbatim, and AccuVote's accuracy update re-sorts
per-claim posterior contributions back into claim order before summing,
because float addition order is part of the contract.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping

from repro.core.errors import ConfigurationError, EmptyInputError
from repro.fusion.accu import _ACCURACY_CEIL, _ACCURACY_FLOOR
from repro.fusion.base import Claim, FusionResult
from repro.outofcore.budget import MemoryBudget
from repro.outofcore.spill import ExternalSorter, entry_nbytes

__all__ = [
    "ClaimStreamSummary",
    "SpillableClaimGroups",
    "stream_accuvote",
    "stream_voting",
]


class ClaimStreamSummary:
    """What remains of the claims stage after streaming fusion consumed it.

    Stands in for the :class:`~repro.fusion.base.ClaimSet` slot on
    :class:`~repro.core.pipeline.PipelineResult` in out-of-core runs,
    where materializing every claim would defeat the memory bound.
    """

    def __init__(self, n_claims: int, n_items: int, n_sources: int) -> None:
        self.n_claims = n_claims
        self.n_items = n_items
        self.n_sources = n_sources

    def __len__(self) -> int:
        return self.n_claims

    def __repr__(self) -> str:
        return (
            f"ClaimStreamSummary(claims={self.n_claims}, "
            f"items={self.n_items}, sources={self.n_sources})"
        )


class SpillableClaimGroups:
    """Claims accumulated with bounded memory, re-streamable by item.

    Only the id-scale maps (item and source first-seen order) stay
    resident — the same asymptotic footprint as the fusion *output* —
    while the claims themselves live in budget-bounded sorted runs,
    keyed ``(item first-seen seq, claim seq)`` so the merge restores
    ClaimSet iteration semantics exactly. Duplicate ``(source, item)``
    claims are dropped at stream time, first claim wins, mirroring the
    pipeline's pre-insertion ``seen`` set.
    """

    def __init__(self, store, budget: MemoryBudget) -> None:
        self._sorter = ExternalSorter(store, budget, name="claims")
        self._item_seq: dict[str, int] = {}
        self._source_seq: dict[str, int] = {}
        self._n_added = 0

    @property
    def n_claims(self) -> int:
        """Claims added (before (source, item) deduplication)."""
        return self._n_added

    @property
    def n_items(self) -> int:
        """Distinct items seen."""
        return len(self._item_seq)

    @property
    def n_sources(self) -> int:
        """Distinct sources seen."""
        return len(self._source_seq)

    def add(self, source_id: str, item_id: str, value: str) -> None:
        """Register one claim; later duplicates of a (source, item) are
        dropped when the groups stream out."""
        item_seq = self._item_seq.setdefault(item_id, len(self._item_seq))
        self._source_seq.setdefault(source_id, len(self._source_seq))
        self._sorter.add(
            (item_seq, self._n_added, item_id, source_id, value),
            entry_nbytes(item_id, source_id, value, 0, 0),
        )
        self._n_added += 1

    def sources(self) -> tuple[str, ...]:
        """Source ids in first-seen order (ClaimSet.sources semantics)."""
        return tuple(self._source_seq)

    def items(self) -> tuple[str, ...]:
        """Item ids in first-seen order (ClaimSet.items semantics)."""
        return tuple(self._item_seq)

    def summary(self) -> ClaimStreamSummary:
        """The stream's cardinalities for reports and results."""
        return ClaimStreamSummary(
            n_claims=self._n_added,
            n_items=len(self._item_seq),
            n_sources=len(self._source_seq),
        )

    def indexed_groups(
        self,
    ) -> Iterator[tuple[str, list[tuple[int, Claim]]]]:
        """``(item_id, [(claim seq, claim), ...])`` groups, re-iterable.

        Groups arrive in item first-seen order; within a group claims
        are in claim order with ``(source, item)`` duplicates dropped
        (first wins). Each call starts a fresh merge over the runs.
        """
        current_item: str | None = None
        current: list[tuple[int, Claim]] = []
        seen_sources: set[str] = set()
        for __, seq, item_id, source_id, value in self._sorter.sorted_stream():
            if item_id != current_item:
                if current_item is not None:
                    yield current_item, current
                current_item = item_id
                current = []
                seen_sources = set()
            if source_id in seen_sources:
                continue
            seen_sources.add(source_id)
            current.append((seq, Claim(source_id, item_id, value)))
        if current_item is not None:
            yield current_item, current

    def groups(self) -> Iterator[tuple[str, list[Claim]]]:
        """``(item_id, claims)`` groups — :meth:`indexed_groups` minus seqs."""
        for item_id, indexed in self.indexed_groups():
            yield item_id, [claim for __, claim in indexed]

    def release(self) -> None:
        """Release the resident buffer's budget tracking."""
        self._sorter.release()


def stream_voting(groups: SpillableClaimGroups) -> FusionResult:
    """Majority voting over a claim stream.

    Bit-identical to :class:`repro.fusion.VotingFuser` over the
    equivalent ClaimSet — including its first-in-claim-order tie-break.
    """
    if groups.n_claims == 0:
        raise EmptyInputError("claim set is empty")
    chosen: dict[str, str] = {}
    confidence: dict[str, float] = {}
    for item, claims in groups.groups():
        counts: dict[str, int] = {}
        for claim in claims:
            counts[claim.value] = counts.get(claim.value, 0) + 1
        total = sum(counts.values())
        best_value = max(
            counts,
            key=lambda value: (counts[value], -list(counts).index(value)),
        )
        chosen[item] = best_value
        confidence[item] = counts[best_value] / total if total else 0.0
    return FusionResult(chosen=chosen, confidence=confidence)


def _vote_count(n_false_values: int, accuracy: float) -> float:
    accuracy = min(_ACCURACY_CEIL, max(_ACCURACY_FLOOR, accuracy))
    return math.log(n_false_values * accuracy / (1.0 - accuracy))


def _group_posteriors(
    claims: list[Claim],
    accuracy: Mapping[str, float],
    n_false_values: int,
) -> tuple[list[str], dict[str, float]]:
    """One item's value posteriors, mirroring ``AccuVote._posteriors``.

    Values in first-seen order; per-value scores sum supporter vote
    counts in claim order; softmax with peak subtraction — the same
    operations in the same order as the in-memory implementation, so
    every float matches exactly.
    """
    values: dict[str, None] = {}
    for claim in claims:
        values.setdefault(claim.value, None)
    ordered = list(values)
    scores = []
    for value in ordered:
        scores.append(
            sum(
                _vote_count(n_false_values, accuracy[claim.source_id])
                for claim in claims
                if claim.value == value
            )
        )
    peak = max(scores)
    exps = [math.exp(score - peak) for score in scores]
    total = sum(exps)
    posteriors = {
        value: weight / total for value, weight in zip(ordered, exps)
    }
    return ordered, posteriors


def stream_accuvote(
    groups: SpillableClaimGroups,
    store,
    budget: MemoryBudget,
    *,
    n_false_values: int = 10,
    initial_accuracy: float = 0.8,
    known_accuracies: Mapping[str, float] | None = None,
    max_iterations: int = 50,
    tolerance: float = 1e-4,
) -> FusionResult:
    """AccuVote over a claim stream, bit-identical to the in-memory run.

    The accuracy update is the delicate part: in memory, a source's
    accuracy is ``sum(posterior of its claims in claim order) / count``,
    and float addition order changes the low bits. The stream arrives
    grouped by *item*, so each iteration spills per-claim posterior
    contributions keyed by claim seq and merges them back into claim
    order before summing — restoring the exact addition sequence.
    """
    if groups.n_claims == 0:
        raise EmptyInputError("claim set is empty")
    if n_false_values < 1:
        raise ConfigurationError("n_false_values must be >= 1")
    if not 0.0 < initial_accuracy < 1.0:
        raise ConfigurationError("initial_accuracy must be in (0, 1)")
    sources = groups.sources()
    if known_accuracies is not None:
        accuracy = {
            source: known_accuracies.get(source, initial_accuracy)
            for source in sources
        }
        acc_used = accuracy
        iterations = 1
    else:
        accuracy = {source: initial_accuracy for source in sources}
        acc_used = accuracy
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            acc_used = accuracy
            contributions = ExternalSorter(store, budget, name="accu.contrib")
            for __, indexed in groups.indexed_groups():
                claims = [claim for __, claim in indexed]
                _, posteriors = _group_posteriors(
                    claims, accuracy, n_false_values
                )
                for seq, claim in indexed:
                    contributions.add(
                        (seq, claim.source_id, posteriors[claim.value]),
                        entry_nbytes(claim.source_id, 0, 0.0),
                    )
            sums: dict[str, float] = {}
            counts: dict[str, int] = {}
            for __, source_id, posterior in contributions.sorted_stream():
                sums[source_id] = sums.get(source_id, 0) + posterior
                counts[source_id] = counts.get(source_id, 0) + 1
            contributions.discard()
            new_accuracy: dict[str, float] = {}
            for source in sources:
                mean_posterior = sums[source] / counts[source]
                new_accuracy[source] = min(
                    _ACCURACY_CEIL,
                    max(_ACCURACY_FLOOR, mean_posterior),
                )
            change = max(
                abs(new_accuracy[s] - accuracy[s]) for s in sources
            )
            accuracy = new_accuracy
            if change < tolerance:
                break
    # The in-memory path picks winners from the posteriors of the final
    # iteration, which were computed with that iteration's *pre-update*
    # accuracies — hence acc_used, not accuracy, here.
    chosen: dict[str, str] = {}
    confidence: dict[str, float] = {}
    for item_id, indexed in groups.indexed_groups():
        claims = [claim for __, claim in indexed]
        ordered, posteriors = _group_posteriors(
            claims, acc_used, n_false_values
        )
        best = max(ordered, key=lambda v: (posteriors[v], v))
        chosen[item_id] = best
        confidence[item_id] = posteriors[best]
    return FusionResult(
        chosen=chosen,
        confidence=confidence,
        source_accuracy=dict(accuracy),
        iterations=iterations,
    )
