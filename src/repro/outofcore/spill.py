"""Spill-to-disk building blocks: bounded indexes, sort, and dedup.

Three structures cover every larger-than-memory shape the linkage
stages produce, all spilling through :class:`repro.recovery.RunStore`
streamed artifacts (atomic write + checksum, corruption treated as
absence):

* :class:`SpillableBlockIndex` — a ``key → [record ids]`` blocking
  index. Partitions spill as runs sorted by key; the merge reassembles
  each key's id list in insertion order, so the merged output is
  exactly what :meth:`BlockCollection.from_key_map` would have built.
* :class:`ExternalSorter` — generic external sort over picklable,
  totally ordered items (used for sorted-neighborhood keys, claim
  groups, and AccuVote posterior contributions).
* :class:`ExternalPairDeduper` — accumulates unordered candidate pairs
  and streams them back sorted and deduplicated, which is precisely the
  order :func:`repro.linkage.resolve` feeds the comparison engine.

:class:`SpillSession` bundles the spill store and shared budget that
streaming blockers receive.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.outofcore.budget import (
    OBJECT_OVERHEAD,
    MemoryBudget,
    pair_nbytes,
    str_nbytes,
)

__all__ = [
    "ExternalPairDeduper",
    "ExternalSorter",
    "SpillSession",
    "SpillableBlockIndex",
    "merge_sorted_streams",
]


def merge_sorted_streams(streams, *, dedup: bool = False) -> Iterator:
    """K-way merge of already-sorted item streams.

    ``streams`` is an iterable of sorted iterables — typically
    :meth:`~repro.recovery.store.RunStore.load_stream` readers over
    spilled runs, which is how the sharded runtime merges per-shard
    shuffle output. The merge is lazy (one resident item per stream).
    With ``dedup``, consecutive equal items collapse to one — over
    sorted inputs that is a full dedup, exactly ``sorted(set(...))``
    of the union.
    """
    merged = heapq.merge(*streams)
    if not dedup:
        yield from merged
        return
    previous = _NO_ITEM
    for item in merged:
        if item == previous:
            continue
        previous = item
        yield item


class SpillSession:
    """The shared spill context of one out-of-core run.

    Carries the spill store (a :class:`~repro.recovery.RunStore` or a
    view of one) and the run's :class:`MemoryBudget`; components
    namespace their runs with :meth:`scoped`.
    """

    def __init__(self, store, budget: MemoryBudget) -> None:
        self.store = store
        self.budget = budget

    def scoped(self, name: str):
        """A store view namespaced under ``name`` for one component."""
        return self.store.sub(name)


def _tagged(run: Iterable, index: int) -> Iterator[tuple]:
    # Helper (not a nested genexp) so each stream binds its own run.
    for key, ids in run:
        yield key, index, ids


class SpillableBlockIndex:
    """A blocking index built with bounded resident memory.

    ``add(key, record_id)`` accumulates an in-memory partition; when
    the shared budget would be exceeded the partition spills to a
    sorted on-disk run. :meth:`merged` streams back ``(key, ids)``
    groups in sorted key order with each key's ids in insertion order
    across all spills — byte-identical to sorting the full in-memory
    key map, which is what ``BlockCollection.from_key_map`` does.
    """

    def __init__(self, store, budget: MemoryBudget, *, name: str = "index") -> None:
        self._store = store
        self._budget = budget
        self._name = name
        self._by_key: dict[str, list[str]] = {}
        self._resident = 0
        self._n_runs = 0
        self._sealed = False

    @property
    def n_runs(self) -> int:
        """Number of on-disk runs spilled so far."""
        return self._n_runs

    def add(self, key: str, record_id: str) -> None:
        """Register ``record_id`` under blocking ``key``."""
        if self._sealed:
            raise RuntimeError("cannot add to a block index after merging")
        cost = pair_nbytes(key, record_id)
        if self._by_key and self._budget.would_exceed(cost):
            self._spill()
        self._by_key.setdefault(key, []).append(record_id)
        self._resident += cost
        self._budget.add(cost)

    def _spill(self) -> None:
        items = sorted(self._by_key.items())
        meta = self._store.save_stream(f"{self._name}.run.{self._n_runs}", items)
        self._n_runs += 1
        self._by_key = {}
        self._budget.remove(self._resident)
        self._resident = 0
        self._budget.record_spill(meta["size"])

    def merged(self) -> Iterator[tuple[str, list[str]]]:
        """Stream ``(key, ids)`` groups in sorted key order.

        Once any partition has spilled, the in-memory tail is spilled
        too so the merge holds at most one frame per run resident.
        """
        self._sealed = True
        if self._n_runs and self._by_key:
            self._spill()
        if not self._n_runs:
            try:
                for key in sorted(self._by_key):
                    yield key, self._by_key[key]
            finally:
                self._budget.remove(self._resident)
                self._resident = 0
            return
        streams = [
            _tagged(self._store.load_stream(f"{self._name}.run.{index}"), index)
            for index in range(self._n_runs)
        ]
        # Merging on (key, run index) keeps a key split across spills in
        # spill order, so its ids concatenate back to insertion order.
        merge = heapq.merge(*streams, key=lambda entry: (entry[0], entry[1]))
        current_key: str | None = None
        current_ids: list[str] = []
        for key, _, ids in merge:
            if key == current_key:
                current_ids.extend(ids)
            else:
                if current_key is not None:
                    yield current_key, current_ids
                current_key, current_ids = key, list(ids)
        if current_key is not None:
            yield current_key, current_ids


_NO_ITEM = object()


class ExternalSorter:
    """External sort over picklable, totally ordered items.

    Items accumulate in an in-memory buffer charged to the shared
    budget; the buffer spills as a sorted run when an addition would
    exceed it. :meth:`sorted_stream` merges the runs (plus the resident
    tail) into one globally sorted stream. Re-iterable: every call
    starts a fresh merge over the same runs.
    """

    def __init__(self, store, budget: MemoryBudget, *, name: str = "sort") -> None:
        self._store = store
        self._budget = budget
        self._name = name
        self._buffer: list = []
        self._resident = 0
        self._n_runs = 0
        self._n_items = 0

    @property
    def n_items(self) -> int:
        """Total items added."""
        return self._n_items

    @property
    def n_runs(self) -> int:
        """Number of on-disk runs spilled so far."""
        return self._n_runs

    def add(self, item, cost: int) -> None:
        """Buffer ``item`` whose resident footprint is ``cost`` bytes."""
        if self._buffer and self._budget.would_exceed(cost):
            self._spill()
        self._buffer.append(item)
        self._resident += cost
        self._budget.add(cost)
        self._n_items += 1

    def _spill(self) -> None:
        self._buffer.sort()
        meta = self._store.save_stream(
            f"{self._name}.run.{self._n_runs}", self._buffer
        )
        self._n_runs += 1
        self._buffer = []
        self._budget.remove(self._resident)
        self._resident = 0
        self._budget.record_spill(meta["size"])

    def sorted_stream(self) -> Iterator:
        """All items in sorted order (duplicates retained)."""
        if self._n_runs and self._buffer:
            self._spill()
        if not self._n_runs:
            self._buffer.sort()
            yield from self._buffer
            return
        streams = [
            self._store.load_stream(f"{self._name}.run.{index}")
            for index in range(self._n_runs)
        ]
        yield from heapq.merge(*streams)

    def release(self) -> None:
        """Drop the resident buffer and release its budget tracking."""
        self._buffer = []
        self._budget.remove(self._resident)
        self._resident = 0

    def discard(self) -> None:
        """Release the buffer and delete this sorter's on-disk runs."""
        self.release()
        for index in range(self._n_runs):
            self._store.delete(f"{self._name}.run.{index}")
        self._n_runs = 0
        self._n_items = 0


class ExternalPairDeduper:
    """Candidate pairs accumulated unordered, streamed back canonical.

    Pairs are normalized to ``(min, max)`` on entry; each resident
    buffer is a set (cheap within-buffer dedup) spilled as a sorted
    run, and the merge drops cross-run duplicates. :meth:`stream`
    therefore yields exactly the ``sorted(set(normalized pairs))``
    sequence the in-memory resolver builds — lazily.
    """

    def __init__(self, store, budget: MemoryBudget, *, name: str = "pairs") -> None:
        self._store = store
        self._budget = budget
        self._name = name
        self._buffer: set[tuple[str, str]] = set()
        self._resident = 0
        self._n_runs = 0
        self._n_unique = 0
        self._streamed = False

    @property
    def n_pairs(self) -> int:
        """Unique pairs yielded by :meth:`stream` (valid after it runs)."""
        return self._n_unique

    @property
    def n_runs(self) -> int:
        """Number of on-disk runs spilled so far."""
        return self._n_runs

    def add_block(self, record_ids) -> None:
        """Register every unordered pair within one block."""
        for position, left in enumerate(record_ids):
            for right in record_ids[position + 1 :]:
                if left == right:
                    continue
                self.add_pair((left, right) if left < right else (right, left))

    def add_pair(self, pair: tuple[str, str]) -> None:
        """Register one already-normalized ``(min, max)`` pair."""
        if pair in self._buffer:
            return
        cost = pair_nbytes(*pair)
        if self._buffer and self._budget.would_exceed(cost):
            self._spill()
            if pair in self._buffer:  # pragma: no cover - buffer now empty
                return
        self._buffer.add(pair)
        self._resident += cost
        self._budget.add(cost)

    def _spill(self) -> None:
        meta = self._store.save_stream(
            f"{self._name}.run.{self._n_runs}", sorted(self._buffer)
        )
        self._n_runs += 1
        self._buffer = set()
        self._budget.remove(self._resident)
        self._resident = 0
        self._budget.record_spill(meta["size"])

    def stream(self) -> Iterator[tuple[str, str]]:
        """All unique pairs in sorted order, smaller id first."""
        if self._n_runs and self._buffer:
            self._spill()
        if not self._n_runs:
            ordered = sorted(self._buffer)
            source: Iterable = ordered
        else:
            streams = [
                self._store.load_stream(f"{self._name}.run.{index}")
                for index in range(self._n_runs)
            ]
            source = heapq.merge(*streams)
        previous = _NO_ITEM
        count = 0
        try:
            for pair in source:
                if pair == previous:
                    continue
                previous = pair
                count += 1
                yield pair
        finally:
            self._n_unique = count
            if not self._n_runs:
                self._buffer = set()
                self._budget.remove(self._resident)
                self._resident = 0


def entry_nbytes(*parts) -> int:
    """Estimated cost of a small tuple of strings/numbers held resident."""
    total = OBJECT_OVERHEAD
    for part in parts:
        if isinstance(part, str):
            total += str_nbytes(part)
        else:
            total += 32
    return total
