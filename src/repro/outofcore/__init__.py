"""Out-of-core execution: memory-bounded streaming over large corpora.

The in-memory pipeline materializes the full corpus (records, block
indexes, candidate pairs, grouped claims) before each stage runs. This
package replays the same algorithms under a configurable memory budget:
structures that would exceed the budget spill to sorted on-disk runs
through the :mod:`repro.recovery` atomic-write/checksum machinery and
are merged back as streams. Every streaming path is required to be
**byte-identical** to its in-memory counterpart — same blocks, same
candidate-pair order, same clusters, same fused values — which the
differential tests in ``tests/test_outofcore.py`` assert directly.

Building blocks:

* :class:`MemoryBudget` — the shared tracked-bytes ledger every
  spillable structure charges against.
* :class:`SpillableBlockIndex`, :class:`ExternalSorter`,
  :class:`ExternalPairDeduper` — bounded blocking indexes, external
  sort, and candidate-pair deduplication.
* :class:`SpillableClaimGroups` with :func:`stream_voting` /
  :func:`stream_accuvote` — bounded grouped-claims aggregation and
  streaming fusion.
* :class:`IndexedRecordStore` — random-access record lookup over a
  ``records.jsonl`` file through a budget-tracked LRU cache.
* :class:`SpillSession` — bundles the spill store and budget handed to
  streaming blockers.
"""

from repro.outofcore.budget import (
    MemoryBudget,
    columnar_block_nbytes,
    pair_nbytes,
    record_nbytes,
    str_nbytes,
)
from repro.outofcore.claims import (
    ClaimStreamSummary,
    SpillableClaimGroups,
    stream_accuvote,
    stream_voting,
)
from repro.outofcore.records import IndexedRecordStore
from repro.outofcore.spill import (
    ExternalPairDeduper,
    ExternalSorter,
    SpillableBlockIndex,
    SpillSession,
    merge_sorted_streams,
)

__all__ = [
    "ClaimStreamSummary",
    "ExternalPairDeduper",
    "ExternalSorter",
    "IndexedRecordStore",
    "MemoryBudget",
    "SpillSession",
    "columnar_block_nbytes",
    "SpillableBlockIndex",
    "SpillableClaimGroups",
    "merge_sorted_streams",
    "pair_nbytes",
    "record_nbytes",
    "str_nbytes",
    "stream_accuvote",
    "stream_voting",
]
