"""Memory accounting for the out-of-core execution layer.

CPython will not report the resident size of a nested structure both
cheaply and deterministically, so the out-of-core layer *tracks* a
deterministic estimate instead: every spillable structure registers the
estimated cost of what it holds resident against one shared
:class:`MemoryBudget`, spills **before** an addition would push the
total over the limit, and releases its tracking as buffers drain. Peak
tracked bytes is therefore a portable, reproducible measure of resident
footprint — identical on every platform and run — which is what the
differential tests and the E21 bench gate assert against.

The estimators deliberately use ``len``-based formulas rather than
``sys.getsizeof`` so the numbers (and hence spill points, and hence
on-disk run layout) never vary across interpreter builds.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError

__all__ = [
    "MemoryBudget",
    "columnar_block_nbytes",
    "pair_nbytes",
    "record_nbytes",
    "str_nbytes",
]

# Flat per-object overhead (headers, pointers) baked into every
# estimate; chosen once and never tuned, because only *consistency*
# matters for reproducible spill behaviour.
OBJECT_OVERHEAD = 56
_STR_OVERHEAD = 49

# Prepared records (normalized + tokenized attribute views) cost a
# small multiple of the raw record payload.
PREPARED_RECORD_FACTOR = 4


def str_nbytes(text: str) -> int:
    """Deterministic estimate of a string's resident size."""
    return _STR_OVERHEAD + len(text)


def pair_nbytes(left: str, right: str) -> int:
    """Estimated cost of one resident ``(left, right)`` string pair."""
    return OBJECT_OVERHEAD + str_nbytes(left) + str_nbytes(right)


def columnar_block_nbytes(block) -> int:
    """Estimated resident size of one :class:`ColumnarBlock`.

    Delegates to the block's own deterministic ``nbytes`` estimate
    (array buffers plus interned payload tables under the same overhead
    constants used here), so streaming columnar chunks charge the
    shared budget with the same reproducibility guarantees as record
    and pair estimates.
    """
    return block.nbytes


def record_nbytes(record) -> int:
    """Estimated resident size of one :class:`Record` payload."""
    total = (
        OBJECT_OVERHEAD
        + str_nbytes(record.record_id)
        + str_nbytes(record.source_id)
    )
    for name, value in record.attributes.items():
        total += OBJECT_OVERHEAD + str_nbytes(name) + str_nbytes(str(value))
    return total


class MemoryBudget:
    """A shared tracked-bytes ledger with a hard limit.

    All spillable structures of one run charge the same budget, so the
    bound applies to their *sum*: a block index flushing its partition
    frees room the pair deduper can then use. Structures must call
    :meth:`would_exceed` and spill before :meth:`add` — the peak is
    only meaningful if nothing is added past the limit.
    """

    def __init__(self, limit_bytes: int, tracer=None) -> None:
        from repro.obs import NULL_TRACER

        limit_bytes = int(limit_bytes)
        if limit_bytes < 1:
            raise ConfigurationError(
                f"memory budget must be positive, got {limit_bytes}"
            )
        self._limit = limit_bytes
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._tracked = 0
        self._peak = 0
        self._spill_count = 0
        self._spill_bytes = 0

    @property
    def limit(self) -> int:
        """The configured hard limit in (estimated) bytes."""
        return self._limit

    @property
    def tracked(self) -> int:
        """Bytes currently registered as resident."""
        return self._tracked

    @property
    def peak(self) -> int:
        """Highest tracked-bytes watermark seen so far."""
        return self._peak

    @property
    def spill_count(self) -> int:
        """Number of spill-to-disk events charged to this budget."""
        return self._spill_count

    @property
    def spill_bytes(self) -> int:
        """Total on-disk bytes written by spill events."""
        return self._spill_bytes

    def add(self, nbytes: int) -> None:
        """Register ``nbytes`` as newly resident."""
        self._tracked += nbytes
        if self._tracked > self._peak:
            self._peak = self._tracked

    def remove(self, nbytes: int) -> None:
        """Release ``nbytes`` of previously registered residency."""
        self._tracked = max(0, self._tracked - nbytes)

    def would_exceed(self, nbytes: int) -> bool:
        """Would adding ``nbytes`` push the tracked total past the limit?"""
        return self._tracked + nbytes > self._limit

    def record_spill(self, nbytes_on_disk: int) -> None:
        """Account one spill event that wrote ``nbytes_on_disk``."""
        self._spill_count += 1
        self._spill_bytes += nbytes_on_disk
        self._tracer.counter("outofcore.spills").inc()
        self._tracer.counter("outofcore.spilled_bytes").inc(nbytes_on_disk)

    def publish(self) -> None:
        """Export the run's budget statistics as observability gauges."""
        self._tracer.gauge("outofcore.peak_tracked_bytes").set(self._peak)
        self._tracer.gauge("outofcore.spill_count").set(self._spill_count)
        self._tracer.gauge("outofcore.spill_bytes").set(self._spill_bytes)
        self._tracer.gauge("outofcore.budget_limit_bytes").set(self._limit)

    def stats(self) -> dict:
        """The budget counters as a plain dict (for reports/benches)."""
        return {
            "limit_bytes": self._limit,
            "peak_tracked_bytes": self._peak,
            "spill_count": self._spill_count,
            "spill_bytes": self._spill_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"MemoryBudget(limit={self._limit}, tracked={self._tracked}, "
            f"peak={self._peak}, spills={self._spill_count})"
        )
