"""Velocity substrate: corpus snapshots, diffing, incremental maintenance."""

from repro.velocity.incremental_pipeline import SnapshotCost, SnapshotMaintainer
from repro.velocity.snapshots import (
    SnapshotConfig,
    SnapshotDiff,
    diff_datasets,
    render_snapshots,
)

__all__ = [
    "SnapshotConfig",
    "SnapshotCost",
    "SnapshotDiff",
    "SnapshotMaintainer",
    "diff_datasets",
    "render_snapshots",
]
