"""Incremental pipeline maintenance across corpus snapshots.

:class:`SnapshotMaintainer` keeps linkage clusters alive across
snapshots: new pages are folded in through the incremental linker,
vanished pages are tombstoned, and changed pages are updated *in
place* — a re-crawled page keeps its identity, so content drift costs
re-indexing but zero pairwise comparisons. The per-snapshot comparison
count is the cost the velocity experiment compares against full
recomputation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.dataset import Dataset
from repro.linkage.blocking.base import Blocker, KeyFunction
from repro.linkage.comparison import RecordComparator
from repro.linkage.incremental import IncrementalLinker
from repro.linkage.resolver import MatchClassifier, resolve
from repro.velocity.snapshots import diff_datasets

__all__ = ["SnapshotCost", "SnapshotMaintainer"]


@dataclass(frozen=True)
class SnapshotCost:
    """Per-snapshot maintenance costs (incremental path)."""

    snapshot: int
    new_records: int
    removed_records: int
    changed_records: int
    comparisons: int


class SnapshotMaintainer:
    """Maintains linkage clusters as snapshots arrive.

    Identity assumption: a record id (``source/entity`` page) denotes
    the same real-world page across snapshots, so changed content
    never re-opens its linkage — only genuinely *new* pages are
    compared. Pages that die and later reappear resume their old
    identity.
    """

    def __init__(
        self,
        key_functions: Sequence[KeyFunction],
        comparator: RecordComparator,
        classifier: MatchClassifier,
    ) -> None:
        self._linker = IncrementalLinker(
            key_functions, comparator, classifier
        )
        self._comparator = comparator
        self._classifier = classifier
        self._previous: Dataset | None = None
        self._ever_added: set[str] = set()
        self._snapshot_index = 0

    def process_snapshot(self, dataset: Dataset) -> SnapshotCost:
        """Fold one snapshot into the maintained clustering."""
        if self._previous is None:
            new_ids = list(dataset.record_ids())
            removed: list[str] = []
            changed: list[str] = []
        else:
            diff = diff_datasets(self._previous, dataset)
            new_ids = list(diff.added_records)
            removed = list(diff.removed_records)
            changed = list(diff.changed_records)
        for record_id in removed:
            self._linker.remove(record_id)
        for record_id in changed:
            self._linker.update(dataset.record(record_id))
        fresh: list = []
        for record_id in new_ids:
            record = dataset.record(record_id)
            if record_id in self._ever_added:
                # A resurrected page resumes its identity: re-index it
                # without re-linking.
                self._linker.resurrect(record)
                continue
            self._ever_added.add(record_id)
            fresh.append(record)
        stats = self._linker.add_batch(fresh)
        cost = SnapshotCost(
            snapshot=self._snapshot_index,
            new_records=len(new_ids),
            removed_records=len(removed),
            changed_records=len(changed),
            comparisons=stats.comparisons,
        )
        self._previous = dataset
        self._snapshot_index += 1
        return cost

    def process_stream(
        self,
        snapshots: Iterable[Dataset],
        max_snapshots: int | None = None,
    ) -> Iterator[SnapshotCost]:
        """Fold snapshots as they arrive; yield each snapshot's cost.

        Pull-driven, so an *unbounded* snapshot iterator (e.g.
        :func:`repro.synth.stream_world_snapshots` rendered to
        datasets) works: stop iterating to stop consuming, or bound
        the run with ``max_snapshots``.
        """
        if max_snapshots is not None:
            snapshots = itertools.islice(snapshots, max_snapshots)
        for dataset in snapshots:
            yield self.process_snapshot(dataset)

    def clusters(self) -> list[list[str]]:
        """Clusters over currently indexed (alive) records."""
        return self._linker.clusters()

    @staticmethod
    def full_recompute(
        dataset: Dataset,
        blocker: Blocker,
        comparator: RecordComparator,
        classifier: MatchClassifier,
    ) -> tuple[list[list[str]], int]:
        """The from-scratch baseline: clusters plus comparison count."""
        records = list(dataset.records())
        result = resolve(records, blocker, comparator, classifier)
        return result.clusters, result.n_candidates
