"""Corpus snapshots over time: rendering, diffing, survival statistics.

The velocity dimension is about *churn*: sources appear and die, pages
appear and die, surviving pages change content. This module renders an
evolving world through a churning source population into successive
:class:`~repro.core.dataset.Dataset` snapshots with *stable record
ids* (``source/entity``), so snapshots can be diffed exactly — the
analogue of re-crawling a URL list and counting what still resolves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.dataset import Dataset
from repro.core.errors import ConfigurationError
from repro.core.ground_truth import GroundTruth
from repro.core.record import Record
from repro.core.source import Source
from repro.synth.sources import (
    CorpusConfig,
    SourceProfile,
    build_source_profiles,
    render_value,
)
from repro.synth.world import World

__all__ = ["SnapshotConfig", "SnapshotDiff", "diff_datasets", "render_snapshots"]


@dataclass(frozen=True)
class SnapshotConfig:
    """Churn knobs for snapshot rendering.

    Per snapshot step, each source dies with probability
    ``source_death_rate`` (replaced by a fresh source when
    ``replace_sources``); each of a surviving source's pages dies with
    probability ``page_death_rate``; and new pages for entities the
    source didn't cover appear at ``page_birth_rate`` (as a fraction of
    its current page count).
    """

    source_death_rate: float = 0.1
    page_death_rate: float = 0.15
    page_birth_rate: float = 0.1
    replace_sources: bool = True
    seed: int = 31

    def __post_init__(self) -> None:
        for name in (
            "source_death_rate",
            "page_death_rate",
            "page_birth_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")


@dataclass(frozen=True)
class SnapshotDiff:
    """Exact difference between two snapshots."""

    added_sources: tuple[str, ...]
    removed_sources: tuple[str, ...]
    added_records: tuple[str, ...]
    removed_records: tuple[str, ...]
    changed_records: tuple[str, ...]
    unchanged_records: int

    @property
    def record_survival(self) -> float:
        """Fraction of old records still present (changed or not)."""
        old_total = (
            len(self.removed_records)
            + len(self.changed_records)
            + self.unchanged_records
        )
        if old_total == 0:
            return 1.0
        return (
            len(self.changed_records) + self.unchanged_records
        ) / old_total


def diff_datasets(old: Dataset, new: Dataset) -> SnapshotDiff:
    """Diff two snapshots by source id and record id."""
    old_sources = set(old.source_ids)
    new_sources = set(new.source_ids)
    old_ids = set(old.record_ids())
    new_ids = set(new.record_ids())
    changed: list[str] = []
    unchanged = 0
    for record_id in sorted(old_ids & new_ids):
        before = dict(old.record(record_id).attributes)
        after = dict(new.record(record_id).attributes)
        if before != after:
            changed.append(record_id)
        else:
            unchanged += 1
    return SnapshotDiff(
        added_sources=tuple(sorted(new_sources - old_sources)),
        removed_sources=tuple(sorted(old_sources - new_sources)),
        added_records=tuple(sorted(new_ids - old_ids)),
        removed_records=tuple(sorted(old_ids - new_ids)),
        changed_records=tuple(changed),
        unchanged_records=unchanged,
    )


@dataclass
class _SourceState:
    profile: SourceProfile
    covered: list[str] = field(default_factory=list)  # entity ids


def render_snapshots(
    world_snapshots: Sequence[World],
    corpus_config: CorpusConfig | None = None,
    snapshot_config: SnapshotConfig | None = None,
) -> list[Dataset]:
    """Render evolving-world snapshots through a churning source set.

    Record ids are ``source/entity`` and therefore stable: the same id
    in consecutive snapshots is the same page, re-crawled. Ground
    truth (record → entity plus true values) is attached per snapshot.
    """
    if not world_snapshots:
        raise ConfigurationError("at least one world snapshot required")
    corpus_config = corpus_config or CorpusConfig()
    snapshot_config = snapshot_config or SnapshotConfig()
    rng = random.Random(snapshot_config.seed)
    world0 = world_snapshots[0]
    profiles = build_source_profiles(world0, corpus_config)
    next_offset = corpus_config.n_sources

    states: list[_SourceState] = []
    for index, profile in enumerate(profiles):
        state = _SourceState(profile=profile)
        category = world0.categories[index % len(world0.categories)]
        candidates = list(world0.entities_in(category))
        rng.shuffle(candidates)
        size = rng.randint(
            corpus_config.min_source_size,
            min(corpus_config.max_source_size, len(candidates)),
        )
        state.covered = [entity.entity_id for entity in candidates[:size]]
        states.append(state)

    datasets: list[Dataset] = []
    for step, world in enumerate(world_snapshots):
        if step > 0:
            survivors: list[_SourceState] = []
            for state in states:
                if rng.random() < snapshot_config.source_death_rate:
                    if snapshot_config.replace_sources:
                        replacement = build_source_profiles(
                            world0,
                            corpus_config,
                            n_profiles=1,
                            id_offset=next_offset,
                        )[0]
                        next_offset += 1
                        new_state = _SourceState(profile=replacement)
                        category = world0.categories[
                            (next_offset - 1) % len(world0.categories)
                        ]
                        pool = [
                            entity.entity_id
                            for entity in world.entities_in(category)
                        ]
                        rng.shuffle(pool)
                        new_state.covered = pool[
                            : rng.randint(
                                corpus_config.min_source_size,
                                max(
                                    corpus_config.min_source_size,
                                    min(
                                        corpus_config.max_source_size,
                                        len(pool),
                                    ),
                                ),
                            )
                        ]
                        survivors.append(new_state)
                    continue
                # Page churn for surviving sources.
                alive_entities = {
                    entity.entity_id for entity in world.entities
                }
                kept = [
                    entity_id
                    for entity_id in state.covered
                    if entity_id in alive_entities
                    and rng.random() >= snapshot_config.page_death_rate
                ]
                births = int(
                    round(len(kept) * snapshot_config.page_birth_rate)
                )
                uncovered = [
                    entity.entity_id
                    for entity in world.entities
                    if entity.entity_id not in set(kept)
                ]
                rng.shuffle(uncovered)
                state.covered = kept + uncovered[:births]
                survivors.append(state)
            states = survivors

        sources: list[Source] = []
        record_to_entity: dict[str, str] = {}
        true_values: dict[tuple[str, str], str] = {}
        attribute_map: dict[tuple[str, str], str] = {}
        for entity in world.entities:
            for attribute, value in entity.true_values.items():
                true_values[(entity.entity_id, attribute)] = value
        for state in states:
            profile = state.profile
            source = Source(
                profile.source_id, metadata={"snapshot": str(step)}
            )
            alive = {entity.entity_id for entity in world.entities}
            for entity_id in state.covered:
                if entity_id not in alive:
                    continue
                entity = world.entity(entity_id)
                vocabulary = world.vocabulary(entity.category)
                attributes: dict[str, str] = {}
                name_attr = profile.dialect.get("name", "name")
                attributes[name_attr] = entity.name
                attribute_map[(profile.source_id, name_attr)] = "name"
                for mediated in profile.rendered_attributes:
                    spec = vocabulary.spec(mediated)
                    if spec.kind == "identifier" and not (
                        profile.publishes_identifier
                    ):
                        continue
                    rendered = render_value(
                        spec, entity.true_values[mediated], profile
                    )
                    source_attr = profile.dialect[mediated]
                    attributes[source_attr] = rendered
                    attribute_map[(profile.source_id, source_attr)] = mediated
                record = Record(
                    record_id=f"{profile.source_id}/{entity_id}",
                    source_id=profile.source_id,
                    attributes=attributes,
                    timestamp=float(step),
                )
                source.add(record)
                record_to_entity[record.record_id] = entity_id
            sources.append(source)
        truth = GroundTruth(record_to_entity, true_values, attribute_map)
        datasets.append(
            Dataset(sources, truth, name=f"snapshot-{step}")
        )
    return datasets
