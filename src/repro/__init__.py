"""repro — Big Data Integration.

A complete reproduction of the systems covered by the ICDE 2013 "Big
Data Integration" tutorial (Dong & Srivastava): schema alignment,
record linkage, and data fusion, re-examined under the volume /
velocity / variety / veracity dimensions, together with the synthetic
substrates (web-like corpora, claim worlds, a simulated MapReduce
cluster) needed to regenerate the canonical experimental results.

Quickstart
----------

>>> from repro import BDIPipeline, build_corpus, FourVKnobs
>>> corpus = build_corpus(FourVKnobs(volume=0.1, variety=0.5, veracity=0.3))
>>> result = BDIPipeline().run(corpus.dataset)
>>> report = BDIPipeline().evaluate(corpus.dataset, result)

Subpackages
-----------

- :mod:`repro.core` — records, sources, datasets, ground truth, pipeline
- :mod:`repro.text` — normalization, tokenizers, similarity toolbox
- :mod:`repro.synth` — synthetic worlds, sources, claims, evolution
- :mod:`repro.schema` — attribute matching, mediated & probabilistic schemas
- :mod:`repro.linkage` — blocking, meta-blocking, classifiers, clustering
- :mod:`repro.dist` — simulated MapReduce, skew-aware partitioning
- :mod:`repro.obs` — tracing spans, metrics registry, run reports
- :mod:`repro.fusion` — voting, TruthFinder, AccuVote, AccuCopy, online
- :mod:`repro.selection` — source profiling, less-is-more selection
- :mod:`repro.velocity` — snapshots, diffing, incremental maintenance
- :mod:`repro.quality` — evaluation metrics and report rendering
"""

from repro.core import (
    Dataset,
    GroundTruth,
    Record,
    ReproError,
    Source,
)
from repro.core.pipeline import (
    BDIPipeline,
    PipelineConfig,
    PipelineReport,
    PipelineResult,
)
from repro.synth import FourVKnobs, build_corpus

__version__ = "1.0.0"

__all__ = [
    "BDIPipeline",
    "Dataset",
    "FourVKnobs",
    "GroundTruth",
    "PipelineConfig",
    "PipelineReport",
    "PipelineResult",
    "Record",
    "ReproError",
    "Source",
    "build_corpus",
    "__version__",
]
