"""AccuVote: Bayesian accuracy-aware fusion (Dong, Berti-Équille &
Srivastava, VLDB'09 — the copy-free half of their model).

Each source has an accuracy ``A(s)``: it claims an item's true value
with probability ``A(s)``, else one of ``n`` false values uniformly.
Under that model a claimed value's posterior follows from summing its
supporters' *vote counts*

    C(s) = ln( n · A(s) / (1 - A(s)) )

so accurate sources carry more weight and very inaccurate sources
carry almost none. Accuracies are unknown, so the algorithm iterates:
posteriors from accuracies, accuracies from posteriors (a source's
accuracy is the mean posterior probability of the values it claims),
until the accuracy vector stabilizes.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.errors import ConfigurationError
from repro.fusion.base import ClaimSet, Fuser, FusionResult

__all__ = ["AccuVote"]

_ACCURACY_FLOOR = 0.01
_ACCURACY_CEIL = 0.99


class AccuVote(Fuser):
    """Iterative Bayesian fusion with per-source accuracy estimation.

    Parameters
    ----------
    n_false_values:
        Assumed number of distinct wrong values per item (the uniform
        false-value model's ``n``).
    initial_accuracy:
        Starting accuracy for every source; fixed accuracies can be
        supplied per source instead via ``known_accuracies``.
    known_accuracies:
        When provided, accuracies are *not* re-estimated — the
        algorithm becomes single-pass Bayesian voting with known
        source quality (used by online fusion).
    max_iterations, tolerance:
        Convergence control on the accuracy vector.
    """

    name = "accuvote"

    def __init__(
        self,
        n_false_values: int = 10,
        initial_accuracy: float = 0.8,
        known_accuracies: Mapping[str, float] | None = None,
        max_iterations: int = 50,
        tolerance: float = 1e-4,
    ) -> None:
        if n_false_values < 1:
            raise ConfigurationError("n_false_values must be >= 1")
        if not 0.0 < initial_accuracy < 1.0:
            raise ConfigurationError("initial_accuracy must be in (0, 1)")
        self._n = n_false_values
        self._initial_accuracy = initial_accuracy
        self._known = dict(known_accuracies) if known_accuracies else None
        self._max_iterations = max_iterations
        self._tolerance = tolerance

    def _vote_count(self, accuracy: float) -> float:
        accuracy = min(_ACCURACY_CEIL, max(_ACCURACY_FLOOR, accuracy))
        return math.log(self._n * accuracy / (1.0 - accuracy))

    def _posteriors(
        self, claims: ClaimSet, accuracy: Mapping[str, float]
    ) -> dict[tuple[str, str], float]:
        """P(value true | claims) per (item, value) under the model."""
        posteriors: dict[tuple[str, str], float] = {}
        for item in claims.items():
            values = claims.values_for(item)
            scores = []
            for value in values:
                scores.append(
                    sum(
                        self._vote_count(accuracy[source])
                        for source in claims.supporters(item, value)
                    )
                )
            peak = max(scores)
            exps = [math.exp(score - peak) for score in scores]
            total = sum(exps)
            for value, weight in zip(values, exps):
                posteriors[(item, value)] = weight / total
        return posteriors

    def fuse(self, claims: ClaimSet) -> FusionResult:
        claims.require_nonempty()
        sources = claims.sources()
        if self._known is not None:
            accuracy = {
                source: self._known.get(source, self._initial_accuracy)
                for source in sources
            }
            posteriors = self._posteriors(claims, accuracy)
            iterations = 1
        else:
            accuracy = {
                source: self._initial_accuracy for source in sources
            }
            posteriors = {}
            iterations = 0
            for iterations in range(1, self._max_iterations + 1):
                posteriors = self._posteriors(claims, accuracy)
                new_accuracy: dict[str, float] = {}
                for source in sources:
                    source_claims = claims.claims_by(source)
                    mean_posterior = sum(
                        posteriors[(claim.item_id, claim.value)]
                        for claim in source_claims
                    ) / len(source_claims)
                    new_accuracy[source] = min(
                        _ACCURACY_CEIL,
                        max(_ACCURACY_FLOOR, mean_posterior),
                    )
                change = max(
                    abs(new_accuracy[s] - accuracy[s]) for s in sources
                )
                accuracy = new_accuracy
                if change < self._tolerance:
                    break
        chosen: dict[str, str] = {}
        confidence: dict[str, float] = {}
        for item in claims.items():
            values = claims.values_for(item)
            best = max(values, key=lambda v: (posteriors[(item, v)], v))
            chosen[item] = best
            confidence[item] = posteriors[(item, best)]
        return FusionResult(
            chosen=chosen,
            confidence=confidence,
            source_accuracy=dict(accuracy),
            iterations=iterations,
        )
