"""Majority voting: the fusion baseline.

One source, one vote. Everything smarter in this package exists
because voting fails exactly when sources are unequally accurate or
copy from each other — but it is the baseline every fusion study
reports first.
"""

from __future__ import annotations

from repro.fusion.base import ClaimSet, Fuser, FusionResult

__all__ = ["VotingFuser"]


class VotingFuser(Fuser):
    """Choose each item's most-claimed value.

    Ties break deterministically toward the value whose supporting
    sources come first in claim order (stable across runs).
    """

    name = "vote"

    def fuse(self, claims: ClaimSet) -> FusionResult:
        claims.require_nonempty()
        chosen: dict[str, str] = {}
        confidence: dict[str, float] = {}
        for item in claims.items():
            counts: dict[str, int] = {}
            for claim in claims.claims_for(item):
                counts[claim.value] = counts.get(claim.value, 0) + 1
            total = sum(counts.values())
            best_value = max(
                counts,
                key=lambda value: (counts[value], -list(counts).index(value)),
            )
            chosen[item] = best_value
            confidence[item] = counts[best_value] / total if total else 0.0
        return FusionResult(chosen=chosen, confidence=confidence)
