"""Bayesian copy detection between sources (Dong et al., VLDB'09).

Two independent sources agree on *true* values (both are pulled toward
the truth) but rarely agree on the *same false* value — there are many
ways to be wrong. A copier, however, replicates its parent's false
values verbatim. Copy detection is therefore a likelihood-ratio test
over the three observable outcomes on items both sources claim:

* agree on a value currently believed **true** — weak evidence either
  way;
* agree on a value currently believed **false** — strong evidence of
  copying;
* disagree — evidence of independence.

The posterior of dependence combines the per-item likelihood ratios
with a prior; direction is evaluated both ways (s1 copies s2 and vice
versa) and the better-fitting direction's likelihood is used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import ConfigurationError
from repro.fusion.base import ClaimSet

__all__ = ["CopyDetector"]

_EPSILON = 1e-12


@dataclass(frozen=True)
class CopyDetector:
    """Pairwise copy detection with fixed model parameters.

    Parameters
    ----------
    copy_rate:
        Assumed per-item probability that a copier copies (the model's
        ``c``).
    prior:
        Prior probability that an arbitrary source pair is dependent.
    n_false_values:
        Assumed number of distinct false values per item.
    min_overlap:
        Pairs sharing fewer items than this are skipped (not enough
        evidence either way).
    """

    copy_rate: float = 0.8
    prior: float = 0.1
    n_false_values: int = 10
    min_overlap: int = 5

    def __post_init__(self) -> None:
        if not 0.0 < self.copy_rate < 1.0:
            raise ConfigurationError("copy_rate must be in (0, 1)")
        if not 0.0 < self.prior < 1.0:
            raise ConfigurationError("prior must be in (0, 1)")
        if self.n_false_values < 1:
            raise ConfigurationError("n_false_values must be >= 1")

    def _outcome_counts(
        self,
        claims: ClaimSet,
        source_a: str,
        source_b: str,
        truths: Mapping[str, str],
    ) -> tuple[int, int, int]:
        """(agree-true, agree-false, disagree) counts over shared items."""
        agree_true = agree_false = disagree = 0
        for item in claims.shared_items(source_a, source_b):
            value_a = claims.value_of(source_a, item)
            value_b = claims.value_of(source_b, item)
            if value_a != value_b:
                disagree += 1
            elif truths.get(item) == value_a:
                agree_true += 1
            else:
                agree_false += 1
        return agree_true, agree_false, disagree

    def _log_likelihood_independent(
        self, counts: tuple[int, int, int], accuracy_a: float, accuracy_b: float
    ) -> float:
        agree_true, agree_false, disagree = counts
        n = self.n_false_values
        p_true = accuracy_a * accuracy_b
        p_false = (1 - accuracy_a) * (1 - accuracy_b) / n
        p_diff = max(_EPSILON, 1.0 - p_true - p_false)
        return (
            agree_true * math.log(max(_EPSILON, p_true))
            + agree_false * math.log(max(_EPSILON, p_false))
            + disagree * math.log(p_diff)
        )

    def _log_likelihood_copying(
        self,
        counts: tuple[int, int, int],
        copier_accuracy: float,
        parent_accuracy: float,
    ) -> float:
        """Log-likelihood that the first source copies the second."""
        agree_true, agree_false, disagree = counts
        c = self.copy_rate
        n = self.n_false_values
        p_true = c * parent_accuracy + (1 - c) * copier_accuracy * parent_accuracy
        p_false = c * (1 - parent_accuracy) + (
            (1 - c) * (1 - copier_accuracy) * (1 - parent_accuracy) / n
        )
        p_diff = max(_EPSILON, 1.0 - p_true - p_false)
        return (
            agree_true * math.log(max(_EPSILON, p_true))
            + agree_false * math.log(max(_EPSILON, p_false))
            + disagree * math.log(p_diff)
        )

    def pair_probability(
        self,
        claims: ClaimSet,
        source_a: str,
        source_b: str,
        truths: Mapping[str, str],
        accuracies: Mapping[str, float],
    ) -> float:
        """Posterior probability that the pair is dependent."""
        counts = self._outcome_counts(claims, source_a, source_b, truths)
        if sum(counts) < self.min_overlap:
            return 0.0
        accuracy_a = accuracies.get(source_a, 0.8)
        accuracy_b = accuracies.get(source_b, 0.8)
        independent = self._log_likelihood_independent(
            counts, accuracy_a, accuracy_b
        )
        a_copies_b = self._log_likelihood_copying(
            counts, accuracy_a, accuracy_b
        )
        b_copies_a = self._log_likelihood_copying(
            counts, accuracy_b, accuracy_a
        )
        dependent = max(a_copies_b, b_copies_a)
        # Posterior via the log-odds form, numerically safe.
        log_odds = (
            math.log(self.prior / (1.0 - self.prior))
            + dependent
            - independent
        )
        if log_odds > 50:
            return 1.0
        if log_odds < -50:
            return 0.0
        odds = math.exp(log_odds)
        return odds / (1.0 + odds)

    def direction(
        self,
        claims: ClaimSet,
        source_a: str,
        source_b: str,
        truths: Mapping[str, str],
        accuracies: Mapping[str, float],
    ) -> float:
        """Directional preference in ``[-1, 1]``: +1 ⇒ ``a`` copies ``b``.

        Direction is inferred from the likelihood asymmetry of the two
        copying hypotheses (the copier's independent errors never show
        up on the parent's side, which skews the fit). Values near 0
        mean the evidence cannot orient the edge — the common case the
        literature warns about.
        """
        counts = self._outcome_counts(claims, source_a, source_b, truths)
        if sum(counts) < self.min_overlap:
            return 0.0
        accuracy_a = accuracies.get(source_a, 0.8)
        accuracy_b = accuracies.get(source_b, 0.8)
        a_copies_b = self._log_likelihood_copying(
            counts, accuracy_a, accuracy_b
        )
        b_copies_a = self._log_likelihood_copying(
            counts, accuracy_b, accuracy_a
        )
        gap = a_copies_b - b_copies_a
        # Squash through tanh so wildly confident fits saturate at ±1.
        return math.tanh(gap / 4.0)

    def detect(
        self,
        claims: ClaimSet,
        truths: Mapping[str, str],
        accuracies: Mapping[str, float],
    ) -> dict[tuple[str, str], float]:
        """Posterior dependence probability for every source pair.

        Keys are ordered pairs ``(a, b)`` with ``a < b``; pairs with
        insufficient overlap are omitted.
        """
        sources = claims.sources()
        probabilities: dict[tuple[str, str], float] = {}
        for i, source_a in enumerate(sources):
            for source_b in sources[i + 1 :]:
                key = (min(source_a, source_b), max(source_a, source_b))
                probability = self.pair_probability(
                    claims, source_a, source_b, truths, accuracies
                )
                if probability > 0.0:
                    probabilities[key] = probability
        return probabilities
