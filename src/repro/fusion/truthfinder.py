"""TruthFinder (Yin, Han & Yu): trust-aware iterative truth discovery.

The founding insight of truth discovery: *a value is likely true if
claimed by trustworthy sources, and a source is trustworthy if it
claims likely-true values*. TruthFinder iterates that fixed point:

* source trustworthiness ``t(s)`` = mean confidence of the values it
  claims;
* value confidence combines its supporters' trust scores
  ``τ(s) = -ln(1 - t(s))`` (so several moderately trusted supporters
  beat one strongly trusted one), squashed through a logistic with
  dampening ``γ``;
* optionally, similar values *imply* each other: a value gains
  confidence from similar claimed values (``implication_weight ·
  similarity``), which matters for formatted values.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core.errors import ConfigurationError
from repro.fusion.base import ClaimSet, Fuser, FusionResult
from repro.obs import NULL_TRACER

__all__ = ["TruthFinder"]

_MAX_TRUST = 1.0 - 1e-6


class TruthFinder(Fuser):
    """Iterative trust/confidence propagation.

    Parameters
    ----------
    initial_trust:
        Starting trustworthiness of every source.
    dampening:
        γ in the logistic squash of accumulated trust scores; lower
        values slow saturation.
    implication_weight, similarity:
        When both set, a value's raw score gains
        ``implication_weight · similarity(v, v') · score(v')`` from
        each co-claimed value ``v'``.
    max_iterations, tolerance:
        Convergence control on the source-trust vector (cosine change).
    tracer:
        An :class:`repro.obs.Tracer` (default no-op); each fuse records
        a span carrying the per-iteration convergence deltas, so a run
        report answers "did it converge in 4 iterations or 40?".
    checkpoint:
        An optional checkpoint store (a
        :class:`repro.recovery.RunStore` or a view of one). Each
        iteration's full solver state is durably saved after it
        completes; a rerun over the same claims with the same
        parameters resumes mid-convergence from the last completed
        iteration, producing output identical to an uninterrupted run.
    """

    name = "truthfinder"

    def __init__(
        self,
        initial_trust: float = 0.9,
        dampening: float = 0.3,
        implication_weight: float = 0.0,
        similarity: Callable[[str, str], float] | None = None,
        max_iterations: int = 50,
        tolerance: float = 1e-4,
        tracer=None,
        checkpoint=None,
    ) -> None:
        if not 0.0 < initial_trust < 1.0:
            raise ConfigurationError("initial_trust must be in (0, 1)")
        if dampening <= 0:
            raise ConfigurationError("dampening must be positive")
        if implication_weight < 0:
            raise ConfigurationError("implication_weight must be >= 0")
        if implication_weight > 0 and similarity is None:
            raise ConfigurationError(
                "implication_weight needs a similarity function"
            )
        self._initial_trust = initial_trust
        self._dampening = dampening
        self._implication_weight = implication_weight
        self._similarity = similarity
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._checkpoint = checkpoint

    def _state_signature(self, claims: ClaimSet) -> str:
        from repro.recovery import claims_signature, config_fingerprint

        return config_fingerprint(
            claims_signature(claims),
            self._initial_trust,
            self._dampening,
            self._implication_weight,
            self._max_iterations,
            self._tolerance,
        )

    def fuse(self, claims: ClaimSet) -> FusionResult:
        claims.require_nonempty()
        sources = claims.sources()
        trust = {source: self._initial_trust for source in sources}
        iterations = 0
        value_confidence: dict[tuple[str, str], float] = {}
        deltas: list[float] = []
        checkpoint = self._checkpoint
        signature = start = None
        if checkpoint is not None:
            signature = self._state_signature(claims)
            state = checkpoint.load("state")
            if state is not None and state.get("signature") == signature:
                # Resume mid-convergence. value_confidence is part of
                # the state because the final chosen values use the
                # confidences computed *before* the last trust update —
                # recomputing them from the restored trust would differ.
                trust = state["trust"]
                value_confidence = state["value_confidence"]
                deltas = list(state["deltas"])
                iterations = state["iterations"]
                start = iterations + 1
                self._tracer.counter(
                    "recovery.iterations_skipped"
                ).inc(iterations)
        with self._tracer.span(
            "fusion.truthfinder",
            max_iterations=self._max_iterations,
            resumed_at=start or 0,
        ) as span:
            converged = bool(deltas) and deltas[-1] < self._tolerance
            for iterations in (
                ()
                if converged
                else range(start or 1, self._max_iterations + 1)
            ):
                value_confidence = self._value_confidences(claims, trust)
                new_trust: dict[str, float] = {}
                for source in sources:
                    source_claims = claims.claims_by(source)
                    mean_confidence = sum(
                        value_confidence[(claim.item_id, claim.value)]
                        for claim in source_claims
                    ) / len(source_claims)
                    new_trust[source] = min(_MAX_TRUST, mean_confidence)
                change = self._trust_change(trust, new_trust)
                deltas.append(change)
                trust = new_trust
                if checkpoint is not None:
                    checkpoint.save(
                        "state",
                        {
                            "signature": signature,
                            "iterations": iterations,
                            "trust": trust,
                            "value_confidence": value_confidence,
                            "deltas": deltas,
                        },
                    )
                if change < self._tolerance:
                    break
            span.set("iterations", iterations)
            span.set("converged", bool(deltas) and deltas[-1] < self._tolerance)
            span.set("deltas", [round(delta, 8) for delta in deltas])
        self._tracer.counter("fusion.truthfinder.iterations").inc(iterations)
        chosen: dict[str, str] = {}
        confidence: dict[str, float] = {}
        for item in claims.items():
            values = claims.values_for(item)
            best = max(
                values, key=lambda v: (value_confidence[(item, v)], v)
            )
            chosen[item] = best
            confidence[item] = value_confidence[(item, best)]
        return FusionResult(
            chosen=chosen,
            confidence=confidence,
            source_accuracy=dict(trust),
            iterations=iterations,
        )

    def _value_confidences(
        self, claims: ClaimSet, trust: dict[str, float]
    ) -> dict[tuple[str, str], float]:
        tau = {
            source: -math.log(max(1e-9, 1.0 - t))
            for source, t in trust.items()
        }
        raw: dict[tuple[str, str], float] = {}
        for item in claims.items():
            for value in claims.values_for(item):
                raw[(item, value)] = sum(
                    tau[source] for source in claims.supporters(item, value)
                )
        if self._implication_weight > 0 and self._similarity is not None:
            adjusted: dict[tuple[str, str], float] = {}
            for item in claims.items():
                values = claims.values_for(item)
                for value in values:
                    bonus = sum(
                        self._similarity(value, other) * raw[(item, other)]
                        for other in values
                        if other != value
                    )
                    adjusted[(item, value)] = (
                        raw[(item, value)]
                        + self._implication_weight * bonus
                    )
            raw = adjusted
        return {
            key: 1.0 / (1.0 + math.exp(-self._dampening * score))
            for key, score in raw.items()
        }

    @staticmethod
    def _trust_change(
        old: dict[str, float], new: dict[str, float]
    ) -> float:
        return max(abs(new[s] - old[s]) for s in old)
