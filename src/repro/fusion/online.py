"""Online data fusion: answer early, probe sources lazily (Liu et al.,
VLDB'11).

Batch fusion reads every source before answering; at web scale that
is slow and usually unnecessary — after a handful of good sources the
answer rarely changes. Online fusion probes sources one at a time (best
estimated accuracy first), maintains the Bayesian posterior of the
current leading value, and *terminates an item* once no combination of
the remaining sources could overturn the leader (or the leader's
posterior clears a confidence bar). The benchmark quantity is the
expected-correctness-vs-sources-probed curve and how early items
terminate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import ConfigurationError
from repro.fusion.base import ClaimSet, FusionResult

__all__ = ["OnlineFusion", "OnlineTrace", "claim_posterior", "vote_count"]

_ACCURACY_FLOOR = 0.01
_ACCURACY_CEIL = 0.99


def vote_count(accuracy: float, n_false_values: int) -> float:
    """The Bayesian vote weight of one claim by a source.

    The uniform-false-value model of Dong et al.: a source with
    accuracy ``a`` choosing among ``n`` wrong values contributes
    ``ln(n * a / (1 - a))`` to its claimed value's log-score. Accuracy
    is clamped away from 0 and 1 so weights stay finite. Shared by
    :class:`OnlineFusion` and the streaming decayed-fusion layer so
    the two agree bit-for-bit on undrifted inputs.
    """
    accuracy = min(_ACCURACY_CEIL, max(_ACCURACY_FLOOR, accuracy))
    return math.log(n_false_values * accuracy / (1.0 - accuracy))


def claim_posterior(
    scores: Mapping[str, float], value: str, n_false_values: int
) -> float:
    """P(``value`` | vote counts) under the uniform-false-value model.

    The ``n + 1`` possible values all start at vote count 0; values
    nobody claimed yet keep that count, so early posteriors stay
    honest instead of jumping to 1.0 after one probe.
    """
    if not scores:
        return 0.0
    peak = max(0.0, max(scores.values()))
    exps = {v: math.exp(s - peak) for v, s in scores.items()}
    unclaimed = max(0, n_false_values + 1 - len(scores))
    total = sum(exps.values()) + unclaimed * math.exp(-peak)
    return exps.get(value, 0.0) / total if total else 0.0


@dataclass(frozen=True)
class OnlineTrace:
    """State of the online computation after each probe.

    ``answers[k]`` is the current answer per item after probing ``k+1``
    sources; ``terminated[k]`` the fraction of items already finalized.
    """

    probe_order: tuple[str, ...]
    answers: tuple[dict[str, str], ...]
    terminated: tuple[float, ...]
    expected_correctness: tuple[float, ...]


class OnlineFusion:
    """Probe-one-source-at-a-time Bayesian fusion.

    Parameters
    ----------
    accuracies:
        (Estimated) per-source accuracies — they set both the probe
        order and the vote counts.
    n_false_values:
        The Bayesian vote model's ``n``.
    stop_posterior:
        An item terminates early once its leader's posterior reaches
        this bar, in addition to the cannot-be-overturned rule.
    """

    def __init__(
        self,
        accuracies: Mapping[str, float],
        n_false_values: int = 10,
        stop_posterior: float = 0.99,
    ) -> None:
        if not accuracies:
            raise ConfigurationError("accuracies must be non-empty")
        if not 0.5 < stop_posterior <= 1.0:
            raise ConfigurationError("stop_posterior must be in (0.5, 1]")
        self._accuracy = dict(accuracies)
        self._n = n_false_values
        self._stop_posterior = stop_posterior

    def _vote_count(self, source: str) -> float:
        return vote_count(self._accuracy.get(source, 0.5), self._n)

    def probe_order(self, claims: ClaimSet) -> list[str]:
        """Sources in descending estimated accuracy (ties by name)."""
        return sorted(
            claims.sources(),
            key=lambda source: (-self._accuracy.get(source, 0.5), source),
        )

    def run(self, claims: ClaimSet) -> tuple[FusionResult, OnlineTrace]:
        """Probe all sources in order, tracking the anytime answer.

        Returns the final result plus the per-probe trace. An item's
        ``confidence`` is its leader's posterior at termination time.
        """
        claims.require_nonempty()
        order = self.probe_order(claims)
        items = claims.items()
        scores: dict[str, dict[str, float]] = {item: {} for item in items}
        finalized: dict[str, str] = {}
        final_confidence: dict[str, float] = {}
        answers_trace: list[dict[str, str]] = []
        terminated_trace: list[float] = []
        correctness_trace: list[float] = []

        remaining_weight = {
            item: sum(
                self._vote_count(source)
                for source in order
                if claims.value_of(source, item) is not None
            )
            for item in items
        }

        for source in order:
            weight = self._vote_count(source)
            for claim in claims.claims_by(source):
                item = claim.item_id
                remaining_weight[item] -= weight
                if item in finalized:
                    continue
                item_scores = scores[item]
                item_scores[claim.value] = (
                    item_scores.get(claim.value, 0.0) + weight
                )
            # Termination check per still-open item.
            for item in items:
                if item in finalized:
                    continue
                item_scores = scores[item]
                if not item_scores:
                    continue
                ranked = sorted(
                    item_scores.items(), key=lambda kv: (-kv[1], kv[0])
                )
                leader, leader_score = ranked[0]
                # Values nobody has claimed *yet* sit at vote count 0 and
                # could still be claimed by remaining sources.
                runner_up = ranked[1][1] if len(ranked) > 1 else 0.0
                posterior = self._posterior(item_scores, leader)
                unbeatable = (
                    leader_score - max(runner_up, 0.0)
                    > remaining_weight[item]
                )
                if posterior >= self._stop_posterior or unbeatable:
                    finalized[item] = leader
                    final_confidence[item] = posterior
            snapshot = {}
            expected = 0.0
            for item in items:
                item_scores = scores[item]
                if item in finalized:
                    snapshot[item] = finalized[item]
                    expected += final_confidence[item]
                elif item_scores:
                    leader = max(
                        item_scores, key=lambda v: (item_scores[v], v)
                    )
                    snapshot[item] = leader
                    expected += self._posterior(item_scores, leader)
            answers_trace.append(snapshot)
            terminated_trace.append(len(finalized) / len(items))
            correctness_trace.append(expected / len(items))

        final_answers = answers_trace[-1] if answers_trace else {}
        for item in items:
            if item not in final_confidence and item in final_answers:
                final_confidence[item] = self._posterior(
                    scores[item], final_answers[item]
                )
        result = FusionResult(
            chosen=final_answers,
            confidence=final_confidence,
            source_accuracy=dict(self._accuracy),
            iterations=len(order),
        )
        trace = OnlineTrace(
            probe_order=tuple(order),
            answers=tuple(answers_trace),
            terminated=tuple(terminated_trace),
            expected_correctness=tuple(correctness_trace),
        )
        return result, trace

    def _posterior(self, scores: Mapping[str, float], value: str) -> float:
        """P(value | probes so far); see :func:`claim_posterior`."""
        return claim_posterior(scores, value, self._n)
