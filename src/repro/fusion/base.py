"""Data model for data fusion: claims, claim sets, fusion results.

Fusion operates on *data items* — (entity, attribute) pairs — and the
*claims* sources make about them. A :class:`ClaimSet` is the triple
store of who-said-what, indexed both by item and by source; every
fusion algorithm consumes one and produces a :class:`FusionResult`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.core.errors import DataModelError, EmptyInputError

__all__ = ["Claim", "ClaimSet", "FusionResult", "Fuser"]


@dataclass(frozen=True)
class Claim:
    """One source's claimed value for one data item."""

    source_id: str
    item_id: str
    value: str

    def __post_init__(self) -> None:
        if not self.source_id or not self.item_id:
            raise DataModelError("claims need non-empty source and item ids")


class ClaimSet:
    """An indexed collection of claims.

    Enforces that a source makes at most one claim per item (the
    single-truth assumption of the classical fusion setting).
    """

    def __init__(self, claims: Iterable[Claim] = ()) -> None:
        self._claims: list[Claim] = []
        self._by_item: dict[str, list[Claim]] = defaultdict(list)
        self._by_source: dict[str, list[Claim]] = defaultdict(list)
        self._value: dict[tuple[str, str], str] = {}
        for claim in claims:
            self.add(claim)

    def add(self, claim: Claim) -> None:
        """Add a claim; rejects a second claim by the same source on the
        same item."""
        key = (claim.source_id, claim.item_id)
        if key in self._value:
            raise DataModelError(
                f"source {claim.source_id!r} already claims item "
                f"{claim.item_id!r}"
            )
        self._claims.append(claim)
        self._by_item[claim.item_id].append(claim)
        self._by_source[claim.source_id].append(claim)
        self._value[key] = claim.value

    @property
    def claims(self) -> tuple[Claim, ...]:
        """All claims in insertion order."""
        return tuple(self._claims)

    def items(self) -> tuple[str, ...]:
        """All item ids, in first-seen order."""
        return tuple(self._by_item)

    def sources(self) -> tuple[str, ...]:
        """All source ids, in first-seen order."""
        return tuple(self._by_source)

    def claims_for(self, item_id: str) -> tuple[Claim, ...]:
        """All claims about ``item_id``."""
        return tuple(self._by_item.get(item_id, ()))

    def claims_by(self, source_id: str) -> tuple[Claim, ...]:
        """All claims made by ``source_id``."""
        return tuple(self._by_source.get(source_id, ()))

    def value_of(self, source_id: str, item_id: str) -> str | None:
        """The value ``source_id`` claims for ``item_id``, if any."""
        return self._value.get((source_id, item_id))

    def values_for(self, item_id: str) -> tuple[str, ...]:
        """Distinct values claimed for ``item_id``, in first-seen order."""
        seen: dict[str, None] = {}
        for claim in self._by_item.get(item_id, ()):
            seen.setdefault(claim.value, None)
        return tuple(seen)

    def supporters(self, item_id: str, value: str) -> tuple[str, ...]:
        """Sources claiming ``value`` for ``item_id``."""
        return tuple(
            claim.source_id
            for claim in self._by_item.get(item_id, ())
            if claim.value == value
        )

    def shared_items(self, source_a: str, source_b: str) -> tuple[str, ...]:
        """Items both sources claim (the overlap copy detection studies)."""
        items_a = {claim.item_id for claim in self._by_source.get(source_a, ())}
        return tuple(
            claim.item_id
            for claim in self._by_source.get(source_b, ())
            if claim.item_id in items_a
        )

    def restricted_to_sources(self, source_ids: Iterable[str]) -> "ClaimSet":
        """A new claim set keeping only claims by the given sources."""
        keep = set(source_ids)
        return ClaimSet(
            claim for claim in self._claims if claim.source_id in keep
        )

    def require_nonempty(self) -> None:
        """Raise :class:`EmptyInputError` when there are no claims."""
        if not self._claims:
            raise EmptyInputError("claim set is empty")

    def __len__(self) -> int:
        return len(self._claims)

    def __iter__(self) -> Iterator[Claim]:
        return iter(self._claims)

    def __repr__(self) -> str:
        return (
            f"ClaimSet(claims={len(self._claims)}, "
            f"items={len(self._by_item)}, sources={len(self._by_source)})"
        )


@dataclass(frozen=True)
class FusionResult:
    """Output of a fusion algorithm.

    Parameters
    ----------
    chosen:
        The value selected as true for each item.
    confidence:
        The algorithm's confidence (or posterior probability) in each
        chosen value, in ``[0, 1]`` where comparable.
    source_accuracy:
        Estimated accuracy of each source, when the algorithm estimates
        one (empty for plain voting).
    iterations:
        Number of iterations the algorithm ran (1 for non-iterative).
    copy_probability:
        Estimated probability that ``(copier, original)`` pairs are in a
        copying relationship, for copy-aware algorithms.
    """

    chosen: Mapping[str, str]
    confidence: Mapping[str, float] = field(default_factory=dict)
    source_accuracy: Mapping[str, float] = field(default_factory=dict)
    iterations: int = 1
    copy_probability: Mapping[tuple[str, str], float] = field(
        default_factory=dict
    )

    def accuracy_against(self, truth: Mapping[str, str]) -> float:
        """Fraction of items (with known truth) answered correctly."""
        relevant = [item for item in truth if item in self.chosen]
        if not relevant:
            return 0.0
        correct = sum(
            1 for item in relevant if self.chosen[item] == truth[item]
        )
        return correct / len(relevant)


class Fuser:
    """Protocol-like base class for fusion algorithms.

    Subclasses implement :meth:`fuse`, taking a :class:`ClaimSet` and
    returning a :class:`FusionResult`.
    """

    name = "fuser"

    def fuse(self, claims: ClaimSet) -> FusionResult:
        raise NotImplementedError
