"""Numeric truth discovery: CRH-style conflict resolution.

Categorical fusion picks among claimed values; *numeric* conflicts
(prices, weights, delay minutes) need a different loss — being off by
1% is not the same as being off by 10×. The CRH framework (Li et al.,
SIGMOD'14) alternates two steps:

* **truth update** — each item's truth estimate is the source-weighted
  aggregate of its claims (weighted median for absolute loss, weighted
  mean for squared loss);
* **weight update** — each source's weight is ``-log`` of its share of
  the total loss, so sources that deviate more weigh less.

Item losses are normalized by the item's claim spread so items on
different scales contribute comparably.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Mapping

from repro.core.errors import ConfigurationError, EmptyInputError
from repro.fusion.base import ClaimSet, FusionResult
from repro.text.normalize import parse_measurement

__all__ = ["CRHNumericFuser", "parse_numeric_claims"]

LossName = Literal["absolute", "squared"]
_MIN_WEIGHT = 1e-6


def parse_numeric_claims(
    claims: ClaimSet,
) -> dict[tuple[str, str], float]:
    """Extract (source, item) → float from a claim set.

    Values go through measurement parsing (units converted to base
    units) with a plain-float fallback; unparseable claims are skipped.
    """
    numeric: dict[tuple[str, str], float] = {}
    for claim in claims:
        value = claim.value.strip().replace(",", ".")
        measurement = parse_measurement(value)
        if measurement is not None:
            numeric[(claim.source_id, claim.item_id)] = (
                measurement.in_base_unit().value
            )
            continue
        try:
            numeric[(claim.source_id, claim.item_id)] = float(value)
        except ValueError:
            continue
    return numeric


def _weighted_median(
    values: list[float], weights: list[float]
) -> float:
    order = sorted(range(len(values)), key=values.__getitem__)
    total = sum(weights)
    if total <= 0:
        return values[order[len(order) // 2]]
    running = 0.0
    for index in order:
        running += weights[index]
        if running >= total / 2.0:
            return values[index]
    return values[order[-1]]


@dataclass
class CRHNumericFuser:
    """Conflict resolution on heterogeneous numeric data.

    Parameters
    ----------
    loss:
        ``"absolute"`` (robust; weighted-median truths) or
        ``"squared"`` (weighted-mean truths).
    max_iterations, tolerance:
        Convergence control on the source-weight vector.
    """

    loss: LossName = "absolute"
    max_iterations: int = 50
    tolerance: float = 1e-6

    name = "crh"

    def __post_init__(self) -> None:
        if self.loss not in ("absolute", "squared"):
            raise ConfigurationError(f"unknown loss {self.loss!r}")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")

    def fuse_values(
        self, claims: Mapping[tuple[str, str], float]
    ) -> tuple[dict[str, float], dict[str, float], int]:
        """Fuse (source, item) → value claims.

        Returns ``(truths, source_weights, iterations)`` with weights
        normalized to mean 1.
        """
        if not claims:
            raise EmptyInputError("no numeric claims to fuse")
        by_item: dict[str, list[tuple[str, float]]] = {}
        sources: set[str] = set()
        for (source, item), value in claims.items():
            by_item.setdefault(item, []).append((source, value))
            sources.add(source)

        # Per-item scale for loss normalization: the claim spread (std),
        # floored to keep perfectly agreeing items well-defined.
        scale: dict[str, float] = {}
        for item, entries in by_item.items():
            values = [v for __, v in entries]
            mean = sum(values) / len(values)
            variance = sum((v - mean) ** 2 for v in values) / len(values)
            scale[item] = max(math.sqrt(variance), 1e-9)

        weights = {source: 1.0 for source in sources}
        truths: dict[str, float] = {}
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            for item, entries in by_item.items():
                values = [v for __, v in entries]
                entry_weights = [weights[s] for s, __ in entries]
                if self.loss == "absolute":
                    truths[item] = _weighted_median(values, entry_weights)
                else:
                    total = sum(entry_weights)
                    truths[item] = (
                        sum(w * v for w, v in zip(entry_weights, values))
                        / total
                        if total > 0
                        else sum(values) / len(values)
                    )
            losses = {source: 0.0 for source in sources}
            for item, entries in by_item.items():
                for source, value in entries:
                    deviation = abs(value - truths[item]) / scale[item]
                    if self.loss == "squared":
                        deviation = deviation**2
                    losses[source] += deviation
            total_loss = sum(losses.values())
            if total_loss <= 0:
                new_weights = {source: 1.0 for source in sources}
            else:
                new_weights = {
                    source: -math.log(
                        max(_MIN_WEIGHT, losses[source] / total_loss)
                    )
                    for source in sources
                }
                mean_weight = sum(new_weights.values()) / len(new_weights)
                if mean_weight > 0:
                    new_weights = {
                        s: w / mean_weight for s, w in new_weights.items()
                    }
            change = max(
                abs(new_weights[s] - weights[s]) for s in sources
            )
            weights = new_weights
            if change < self.tolerance:
                break
        return truths, weights, iterations

    def fuse(self, claims: ClaimSet) -> FusionResult:
        """ClaimSet adapter: parse numeric values, fuse, format truths.

        Chosen values are rendered with 6 significant digits; source
        weights are exposed through ``source_accuracy`` rescaled to
        ``(0, 1)`` by ``w / (1 + w)`` for comparability.
        """
        claims.require_nonempty()
        numeric = parse_numeric_claims(claims)
        truths, weights, iterations = self.fuse_values(numeric)
        chosen = {item: f"{value:.6g}" for item, value in truths.items()}
        accuracy = {
            source: weight / (1.0 + weight) if weight > 0 else 0.0
            for source, weight in weights.items()
        }
        return FusionResult(
            chosen=chosen,
            source_accuracy=accuracy,
            iterations=iterations,
        )
