"""AccuCopy: accuracy-aware fusion with copy discounting (Dong et al.).

The full VLDB'09 model: truth discovery and copy detection reinforce
each other. Copiers inflate the vote of whatever their parent says; so
each round (1) detects copying from the current truth beliefs, (2)
re-computes vote counts with copied votes *discounted*, (3) re-
estimates accuracies. Discounting follows the paper's independence
weighting: a value's supporters are visited in descending accuracy,
and each supporter's vote is scaled by

    I(s) = Π over already-counted supporters s'  (1 − c · P(s ~ s'))

— a source whose claims are probably copies of an already-counted
source contributes almost nothing.

Known limitation (inherent to the model, noted in the literature):
when *partial* copiers (copy rate well below 1) form a belief-state
majority, the bootstrap can settle on the cabal's values as truth, at
which point the cabal's common errors are believed true and stop
betraying the copying. Near-verbatim copiers — the canonical setting
of the original experiments — are detected regardless of cabal size.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.errors import ConfigurationError
from repro.fusion.base import ClaimSet, Fuser, FusionResult
from repro.fusion.copydetect import CopyDetector
from repro.fusion.voting import VotingFuser
from repro.obs import NULL_TRACER

__all__ = ["AccuCopy"]

_ACCURACY_FLOOR = 0.01
_ACCURACY_CEIL = 0.99


class AccuCopy(Fuser):
    """Joint truth discovery and copy detection.

    Parameters
    ----------
    n_false_values, initial_accuracy:
        As in :class:`~repro.fusion.accu.AccuVote`.
    detector:
        The copy detector (its ``copy_rate`` is also the discount
        strength).
    outer_iterations:
        Rounds of (detect → discount-vote → re-estimate accuracy).
    tracer:
        An :class:`repro.obs.Tracer` (default no-op); each fuse records
        a span carrying the per-round accuracy-change deltas.
    checkpoint:
        An optional checkpoint store (a
        :class:`repro.recovery.RunStore` or a view of one). Each
        round's full solver state is durably saved; a rerun over the
        same claims with the same parameters resumes from the last
        completed round with output identical to an uninterrupted run.
    """

    name = "accucopy"

    def __init__(
        self,
        n_false_values: int = 10,
        initial_accuracy: float = 0.8,
        detector: CopyDetector | None = None,
        outer_iterations: int = 5,
        tolerance: float = 1e-3,
        tracer=None,
        checkpoint=None,
    ) -> None:
        if outer_iterations < 1:
            raise ConfigurationError("outer_iterations must be >= 1")
        self._n = n_false_values
        self._initial_accuracy = initial_accuracy
        self._detector = detector or CopyDetector(
            n_false_values=n_false_values
        )
        self._outer_iterations = outer_iterations
        self._tolerance = tolerance
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._checkpoint = checkpoint

    def _state_signature(self, claims: ClaimSet) -> str:
        from repro.recovery import claims_signature, config_fingerprint

        return config_fingerprint(
            claims_signature(claims),
            self._n,
            self._initial_accuracy,
            self._detector,
            self._outer_iterations,
            self._tolerance,
        )

    def _vote_count(self, accuracy: float) -> float:
        accuracy = min(_ACCURACY_CEIL, max(_ACCURACY_FLOOR, accuracy))
        return math.log(self._n * accuracy / (1.0 - accuracy))

    def _discounted_posteriors(
        self,
        claims: ClaimSet,
        accuracy: Mapping[str, float],
        copy_probability: Mapping[tuple[str, str], float],
    ) -> dict[tuple[str, str], float]:
        c = self._detector.copy_rate
        posteriors: dict[tuple[str, str], float] = {}
        for item in claims.items():
            values = claims.values_for(item)
            scores: list[float] = []
            for value in values:
                supporters = sorted(
                    claims.supporters(item, value),
                    key=lambda s: (-accuracy.get(s, 0.5), s),
                )
                score = 0.0
                counted: list[str] = []
                for source in supporters:
                    independence = 1.0
                    for earlier in counted:
                        key = (min(source, earlier), max(source, earlier))
                        independence *= 1.0 - c * copy_probability.get(
                            key, 0.0
                        )
                    score += independence * self._vote_count(
                        accuracy.get(source, self._initial_accuracy)
                    )
                    counted.append(source)
                scores.append(score)
            peak = max(scores)
            exps = [math.exp(score - peak) for score in scores]
            total = sum(exps)
            for value, weight in zip(values, exps):
                posteriors[(item, value)] = weight / total
        return posteriors

    def fuse(self, claims: ClaimSet) -> FusionResult:
        claims.require_nonempty()
        sources = claims.sources()
        # Bootstrap truths with plain voting; accuracies with the prior.
        truths = VotingFuser().fuse(claims).chosen
        accuracy = {source: self._initial_accuracy for source in sources}
        copy_probability: dict[tuple[str, str], float] = {}
        posteriors: dict[tuple[str, str], float] = {}
        iterations = 0
        deltas: list[float] = []
        checkpoint = self._checkpoint
        signature = start = None
        converged = False
        if checkpoint is not None:
            signature = self._state_signature(claims)
            state = checkpoint.load("state")
            if state is not None and state.get("signature") == signature:
                truths = state["truths"]
                accuracy = state["accuracy"]
                copy_probability = state["copy_probability"]
                posteriors = state["posteriors"]
                deltas = list(state["deltas"])
                iterations = state["iterations"]
                converged = state["converged"]
                start = iterations + 1
                self._tracer.counter(
                    "recovery.iterations_skipped"
                ).inc(iterations)
        with self._tracer.span(
            "fusion.accucopy",
            outer_iterations=self._outer_iterations,
            resumed_at=start or 0,
        ) as span:
            for iterations in (
                ()
                if converged
                else range(start or 1, self._outer_iterations + 1)
            ):
                copy_probability = self._detector.detect(
                    claims, truths, accuracy
                )
                posteriors = self._discounted_posteriors(
                    claims, accuracy, copy_probability
                )
                new_truths: dict[str, str] = {}
                for item in claims.items():
                    values = claims.values_for(item)
                    new_truths[item] = max(
                        values, key=lambda v: (posteriors[(item, v)], v)
                    )
                new_accuracy: dict[str, float] = {}
                for source in sources:
                    source_claims = claims.claims_by(source)
                    mean_posterior = sum(
                        posteriors[(claim.item_id, claim.value)]
                        for claim in source_claims
                    ) / len(source_claims)
                    new_accuracy[source] = min(
                        _ACCURACY_CEIL, max(_ACCURACY_FLOOR, mean_posterior)
                    )
                accuracy_change = max(
                    abs(new_accuracy[s] - accuracy[s]) for s in sources
                )
                deltas.append(accuracy_change)
                stable_truths = new_truths == truths
                truths, accuracy = new_truths, new_accuracy
                done = (
                    stable_truths and accuracy_change < self._tolerance
                )
                if checkpoint is not None:
                    checkpoint.save(
                        "state",
                        {
                            "signature": signature,
                            "iterations": iterations,
                            "truths": truths,
                            "accuracy": accuracy,
                            "copy_probability": copy_probability,
                            "posteriors": posteriors,
                            "deltas": deltas,
                            "converged": done,
                        },
                    )
                if done:
                    break
            span.set("iterations", iterations)
            span.set("deltas", [round(delta, 8) for delta in deltas])
        self._tracer.counter("fusion.accucopy.iterations").inc(iterations)
        confidence = {
            item: posteriors[(item, truths[item])]
            for item in claims.items()
        }
        return FusionResult(
            chosen=truths,
            confidence=confidence,
            source_accuracy=dict(accuracy),
            iterations=iterations,
            copy_probability=dict(copy_probability),
        )
