"""Data fusion: voting, truth discovery, copy detection, online fusion."""

from repro.fusion.accu import AccuVote
from repro.fusion.accucopy import AccuCopy
from repro.fusion.base import Claim, ClaimSet, Fuser, FusionResult
from repro.fusion.copydetect import CopyDetector
from repro.fusion.numeric import CRHNumericFuser, parse_numeric_claims
from repro.fusion.online import (
    OnlineFusion,
    OnlineTrace,
    claim_posterior,
    vote_count,
)
from repro.fusion.truthfinder import TruthFinder
from repro.fusion.voting import VotingFuser

__all__ = [
    "AccuCopy",
    "AccuVote",
    "Claim",
    "ClaimSet",
    "CRHNumericFuser",
    "CopyDetector",
    "Fuser",
    "FusionResult",
    "OnlineFusion",
    "OnlineTrace",
    "claim_posterior",
    "parse_numeric_claims",
    "TruthFinder",
    "VotingFuser",
    "vote_count",
]
