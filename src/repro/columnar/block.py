"""The columnar prepared-record block format.

A :class:`ColumnarBlock` holds everything a
:class:`~repro.linkage.comparison.RecordComparator` needs to score any
pair of its records, laid out as per-field contiguous arrays instead of
per-record Python objects:

* **exact fields** — one interned value-id per record (id equality ⇔
  string equality, so the kernel never touches strings);
* **token-set fields** (Jaccard/Dice/overlap) — interned token ids in
  CSR layout (``offsets`` + flat ``token_ids``, sorted per record);
* **token-count fields** (cosine) — CSR token ids with aligned counts
  plus one precomputed vector norm per record;
* **measurement fields** — a float value column and interned unit-id
  column for rows that parse, with the normalized text retained for the
  Levenshtein fallback on rows that do not;
* **scalar fields** (Jaro-Winkler, Monge-Elkan, product names, unknown
  callables) — an interned *payload table*: one prepared payload per
  distinct value, shared by every record carrying that value, scored
  through memoized similarity lookups by the kernels.

Blocks are built **from the same prepared payloads the scalar fast
path uses** (:meth:`RecordComparator.prepare`), so the two
representations cannot disagree about what a field's comparison input
is; the batch kernels in :mod:`repro.columnar.kernels` then reproduce
the scalar arithmetic bit for bit.

A block is immutable once built, picklable (transient similarity memo
caches are dropped, see :mod:`repro.columnar.serialize`), and carries a
deterministic ``nbytes`` estimate compatible with
:class:`repro.outofcore.MemoryBudget` accounting.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.record import Record
from repro.linkage.comparison import RecordComparator, similarity_spec
from repro.text.similarity import (
    cosine_similarity,
    dice_similarity,
    exact_similarity,
    jaccard_similarity,
    measurement_similarity,
    monge_elkan_similarity,
    overlap_coefficient,
    product_name_similarity,
)

__all__ = ["ColumnarBlock", "build_block"]

# Deterministic per-object size estimates, aligned with the
# len()-based philosophy of repro.outofcore.budget (imported lazily
# there to avoid a package import cycle; the constants match).
_OBJECT_OVERHEAD = 56
_STR_OVERHEAD = 49


def _str_nbytes(text: str) -> int:
    return _STR_OVERHEAD + len(text)


def _payload_nbytes(payload: Any) -> int:
    """Deterministic size estimate of one interned scalar payload."""
    if isinstance(payload, str):
        return _str_nbytes(payload)
    if isinstance(payload, (tuple, frozenset, list, set)):
        return _OBJECT_OVERHEAD + sum(
            _payload_nbytes(item) for item in payload
        )
    return _OBJECT_OVERHEAD


class _Interner:
    """Assigns dense int ids to hashable values in first-seen order."""

    def __init__(self) -> None:
        self._ids: dict[Any, int] = {}
        self.values: list[Any] = []

    def intern(self, value: Any) -> int:
        existing = self._ids.get(value)
        if existing is not None:
            return existing
        assigned = len(self.values)
        self._ids[value] = assigned
        self.values.append(value)
        return assigned

    def __len__(self) -> int:
        return len(self.values)


# --- column kinds -----------------------------------------------------

KIND_EXACT = "exact"
KIND_TOKEN_SET = "token_set"
KIND_COUNTS = "counts"
KIND_MEASUREMENT = "measurement"
KIND_SCALAR = "scalar"

_TOKEN_SET_METRICS = {
    jaccard_similarity: "jaccard",
    dice_similarity: "dice",
    overlap_coefficient: "overlap",
}


def column_kind(similarity) -> str:
    """The columnar storage kind for a field's similarity function."""
    if similarity is exact_similarity:
        return KIND_EXACT
    if similarity in _TOKEN_SET_METRICS:
        return KIND_TOKEN_SET
    if similarity is cosine_similarity:
        return KIND_COUNTS
    if similarity is measurement_similarity:
        return KIND_MEASUREMENT
    return KIND_SCALAR


class _ExactColumn:
    """Interned value ids; similarity is pure id equality."""

    kind = KIND_EXACT

    def __init__(self, value_ids: np.ndarray, n_values: int) -> None:
        self.value_ids = value_ids  # int32, -1 = missing
        self.n_values = n_values

    def present(self, rows: np.ndarray) -> np.ndarray:
        return self.value_ids[rows] >= 0

    @property
    def nbytes(self) -> int:
        return int(self.value_ids.nbytes)


class _TokenSetColumn:
    """CSR token-id sets (sorted, unique per row) for set metrics."""

    kind = KIND_TOKEN_SET

    def __init__(
        self,
        metric: str,
        offsets: np.ndarray,
        token_ids: np.ndarray,
        missing: np.ndarray,
        n_tokens: int,
    ) -> None:
        self.metric = metric  # "jaccard" | "dice" | "overlap"
        self.offsets = offsets  # int64[n + 1]
        self.token_ids = token_ids  # int32[nnz]
        self.missing = missing  # bool[n]
        self.n_tokens = n_tokens

    def present(self, rows: np.ndarray) -> np.ndarray:
        return ~self.missing[rows]

    @property
    def nbytes(self) -> int:
        return int(
            self.offsets.nbytes + self.token_ids.nbytes + self.missing.nbytes
        )


class _CountsColumn:
    """CSR token ids with counts plus one precomputed norm per row."""

    kind = KIND_COUNTS

    def __init__(
        self,
        offsets: np.ndarray,
        token_ids: np.ndarray,
        counts: np.ndarray,
        norms: np.ndarray,
        missing: np.ndarray,
    ) -> None:
        self.offsets = offsets
        self.token_ids = token_ids
        self.counts = counts  # int64[nnz]
        self.norms = norms  # float64[n]: math.sqrt(sum of squares)
        self.missing = missing

    def present(self, rows: np.ndarray) -> np.ndarray:
        return ~self.missing[rows]

    @property
    def nbytes(self) -> int:
        return int(
            self.offsets.nbytes
            + self.token_ids.nbytes
            + self.counts.nbytes
            + self.norms.nbytes
            + self.missing.nbytes
        )


class _MeasurementColumn:
    """Parsed (value, unit-id) floats; normalized text for the fallback."""

    kind = KIND_MEASUREMENT

    def __init__(
        self,
        missing: np.ndarray,
        parsed: np.ndarray,
        values: np.ndarray,
        unit_ids: np.ndarray,
        text_ids: np.ndarray,
        texts: list[str],
    ) -> None:
        self.missing = missing  # bool[n]
        self.parsed = parsed  # bool[n]: parses to a base-unit measurement
        self.values = values  # float64[n], base-unit magnitude (0 unparsed)
        self.unit_ids = unit_ids  # int32[n], interned base unit (-1 unparsed)
        self.text_ids = text_ids  # int32[n] into texts (-1 missing)
        self.texts = texts  # distinct normalized value strings
        self._pair_memo: dict[tuple[int, int], float] = {}

    def present(self, rows: np.ndarray) -> np.ndarray:
        return ~self.missing[rows]

    @property
    def nbytes(self) -> int:
        return int(
            self.missing.nbytes
            + self.parsed.nbytes
            + self.values.nbytes
            + self.unit_ids.nbytes
            + self.text_ids.nbytes
        ) + sum(_str_nbytes(text) for text in self.texts)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pair_memo"] = {}
        return state


class _ScalarColumn:
    """Interned prepared payloads for scalar-path similarities.

    One payload per *distinct* value (records sharing a brand string
    share one payload), plus a per-column pair memo: a similarity is
    computed at most once per ordered payload-id pair per block, then
    served as a dict lookup — exact, because the similarity functions
    are pure.
    """

    kind = KIND_SCALAR

    def __init__(
        self,
        field_similarity,
        payload_ids: np.ndarray,
        payloads: list[Any],
    ) -> None:
        self.field_similarity = field_similarity
        self.payload_ids = payload_ids  # int32, -1 = missing
        self.payloads = payloads
        self._spec_similarity = similarity_spec(field_similarity).similarity
        self._pair_memo: dict[tuple[int, int], float] = {}

    def present(self, rows: np.ndarray) -> np.ndarray:
        return self.payload_ids[rows] >= 0

    @property
    def nbytes(self) -> int:
        return int(self.payload_ids.nbytes) + sum(
            _payload_nbytes(payload) for payload in self.payloads
        )

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pair_memo"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


class ColumnarBlock:
    """Records of one comparator, stored as per-field columns.

    Build with :func:`build_block`. Score with the batch kernels in
    :mod:`repro.columnar.kernels` — every kernel output is bit-identical
    to the scalar :meth:`RecordComparator.compare_prepared` /
    :meth:`~RecordComparator.score_bounded` path over the same records.
    """

    def __init__(
        self,
        comparator: RecordComparator,
        record_ids: tuple[str, ...],
        columns: tuple[Any, ...],
    ) -> None:
        self.comparator = comparator
        self.record_ids = record_ids
        self.columns = columns
        self.index: dict[str, int] = {
            record_id: position
            for position, record_id in enumerate(record_ids)
        }
        # Shared token-level similarity memo for Monge-Elkan / product
        # name kernels (transient; rebuilt empty after unpickling).
        self._token_sim_memo: dict[tuple[str, str], float] = {}

    def __len__(self) -> int:
        return len(self.record_ids)

    @property
    def n_records(self) -> int:
        """Number of records in the block."""
        return len(self.record_ids)

    def positions(self, record_ids: Iterable[str]) -> np.ndarray:
        """Row positions of ``record_ids`` (KeyError on unknown ids)."""
        index = self.index
        return np.fromiter(
            (index[record_id] for record_id in record_ids),
            dtype=np.int64,
        )

    @property
    def nbytes(self) -> int:
        """Deterministic estimated resident size of the block.

        Array bytes are exact; interned string/payload tables use the
        same len()-based estimates as :mod:`repro.outofcore.budget`, so
        the number is identical on every platform and run.
        """
        total = _OBJECT_OVERHEAD + sum(
            _str_nbytes(record_id) for record_id in self.record_ids
        )
        for column in self.columns:
            total += column.nbytes
        return total

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_token_sim_memo"] = {}
        state.pop("index")  # rebuilt from record_ids
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.index = {
            record_id: position
            for position, record_id in enumerate(self.record_ids)
        }


# --- builder ----------------------------------------------------------


def _csr(rows: list[Sequence[int]]) -> tuple[np.ndarray, np.ndarray]:
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    for i, row in enumerate(rows):
        offsets[i + 1] = offsets[i] + len(row)
    flat = np.empty(int(offsets[-1]), dtype=np.int32)
    position = 0
    for row in rows:
        flat[position : position + len(row)] = row
        position += len(row)
    return offsets, flat


def build_block(
    comparator: RecordComparator,
    records: Iterable[Record] | Mapping[str, Record],
) -> ColumnarBlock:
    """Columnarize ``records`` for ``comparator``.

    Each record is prepared exactly once through the comparator's own
    :meth:`~RecordComparator.prepare` (the scalar fast path's input),
    then the per-field payloads are packed into contiguous columns.
    Mapping inputs are consumed in mapping-value order.
    """
    if isinstance(records, Mapping):
        records = records.values()
    fields = comparator.fields
    kinds = [column_kind(field.similarity) for field in fields]

    record_ids: list[str] = []
    # Per-field accumulators, keyed by kind.
    accumulators: list[dict[str, Any]] = []
    for kind, field in zip(kinds, fields):
        state: dict[str, Any] = {"interner": _Interner()}
        if kind == KIND_EXACT:
            state["ids"] = []
        elif kind == KIND_TOKEN_SET:
            state["rows"] = []
            state["missing"] = []
        elif kind == KIND_COUNTS:
            state["rows"] = []
            state["counts"] = []
            state["norms"] = []
            state["missing"] = []
        elif kind == KIND_MEASUREMENT:
            state["missing"] = []
            state["parsed"] = []
            state["values"] = []
            state["unit_ids"] = []
            state["unit_interner"] = _Interner()
            state["text_ids"] = []
        else:
            state["ids"] = []
        accumulators.append(state)

    for record in records:
        prepared = comparator.prepare(record)
        record_ids.append(prepared.record_id)
        for kind, state, payload in zip(kinds, accumulators, prepared.payloads):
            interner: _Interner = state["interner"]
            if kind == KIND_EXACT:
                state["ids"].append(
                    -1 if payload is None else interner.intern(payload)
                )
            elif kind == KIND_TOKEN_SET:
                if payload is None:
                    state["rows"].append(())
                    state["missing"].append(True)
                else:
                    state["rows"].append(
                        sorted(interner.intern(token) for token in payload)
                    )
                    state["missing"].append(False)
            elif kind == KIND_COUNTS:
                if payload is None:
                    state["rows"].append(())
                    state["counts"].append(())
                    state["norms"].append(0.0)
                    state["missing"].append(True)
                else:
                    entries = sorted(
                        (interner.intern(token), count)
                        for token, count in payload.items()
                    )
                    state["rows"].append([tid for tid, __ in entries])
                    state["counts"].append([count for __, count in entries])
                    # Identical arithmetic to the scalar cosine's norm:
                    # math.sqrt over the exact integer sum of squares.
                    state["norms"].append(
                        math.sqrt(
                            sum(count * count for count in payload.values())
                        )
                    )
                    state["missing"].append(False)
            elif kind == KIND_MEASUREMENT:
                if payload is None:
                    state["missing"].append(True)
                    state["parsed"].append(False)
                    state["values"].append(0.0)
                    state["unit_ids"].append(-1)
                    state["text_ids"].append(-1)
                else:
                    base, text = payload
                    state["missing"].append(False)
                    state["text_ids"].append(interner.intern(text))
                    if base is None:
                        state["parsed"].append(False)
                        state["values"].append(0.0)
                        state["unit_ids"].append(-1)
                    else:
                        state["parsed"].append(True)
                        state["values"].append(base.value)
                        state["unit_ids"].append(
                            state["unit_interner"].intern(base.unit)
                        )
            else:  # KIND_SCALAR — payloads are hashable (str or tuples)
                state["ids"].append(
                    -1 if payload is None else interner.intern(payload)
                )

    columns: list[Any] = []
    for field, kind, state in zip(fields, kinds, accumulators):
        interner = state["interner"]
        if kind == KIND_EXACT:
            columns.append(
                _ExactColumn(
                    np.asarray(state["ids"], dtype=np.int32), len(interner)
                )
            )
        elif kind == KIND_TOKEN_SET:
            offsets, flat = _csr(state["rows"])
            columns.append(
                _TokenSetColumn(
                    _TOKEN_SET_METRICS[field.similarity],
                    offsets,
                    flat,
                    np.asarray(state["missing"], dtype=bool),
                    len(interner),
                )
            )
        elif kind == KIND_COUNTS:
            offsets, flat = _csr(state["rows"])
            counts = np.empty(int(offsets[-1]), dtype=np.int64)
            position = 0
            for row_counts in state["counts"]:
                counts[position : position + len(row_counts)] = row_counts
                position += len(row_counts)
            columns.append(
                _CountsColumn(
                    offsets,
                    flat,
                    counts,
                    np.asarray(state["norms"], dtype=np.float64),
                    np.asarray(state["missing"], dtype=bool),
                )
            )
        elif kind == KIND_MEASUREMENT:
            columns.append(
                _MeasurementColumn(
                    np.asarray(state["missing"], dtype=bool),
                    np.asarray(state["parsed"], dtype=bool),
                    np.asarray(state["values"], dtype=np.float64),
                    np.asarray(state["unit_ids"], dtype=np.int32),
                    np.asarray(state["text_ids"], dtype=np.int32),
                    list(interner.values),
                )
            )
        else:
            columns.append(
                _ScalarColumn(
                    field.similarity,
                    np.asarray(state["ids"], dtype=np.int32),
                    list(interner.values),
                )
            )

    return ColumnarBlock(comparator, tuple(record_ids), tuple(columns))


# Referenced by kernels for the scalar dispatch; re-exported here so
# kernels.py does not need its own copy of the registry.
MONGE_ELKAN = monge_elkan_similarity
PRODUCT_NAME = product_name_similarity
