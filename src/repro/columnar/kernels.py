"""Batch-scoring kernels over :class:`~repro.columnar.block.ColumnarBlock`.

The kernels score many candidate pairs per call — one candidate against
an entire block, or block × block — with numpy doing the cheap per-pair
work and the scalar similarity functions reserved for the *residual*
pairs that survive a vectorized early-exit mask:

1. **Cheap pass** — every vector-kind field (exact, token-set, cosine,
   parsed measurements) is scored for all pairs at once: CSR
   set-intersections and count dot-products via one ``lexsort`` per
   field, id-equality for exact fields, float arithmetic for
   measurements.
2. **Early-exit mask** — the per-pair weighted upper bound
   ``(evaluated + remaining_present_weight) / total_weight`` rejects
   every pair that provably cannot reach the threshold, under the same
   :data:`~repro.linkage.comparison.BOUND_MARGIN` the staged scalar
   scorer uses — so a mask rejection is exactly as sound as a scalar
   early exit.
3. **Residual pass** — survivors evaluate their remaining fields
   (Jaro-Winkler, Monge-Elkan, unparsed measurements) through the
   scalar similarity functions, memoized per distinct value pair, then
   rebuild the exact score in field-declaration order.

Because the cheap kernels perform the *same IEEE-754 operation
sequence* as the scalar functions (one correctly-rounded op per op)
and the residual pass ends in the same declaration-order rebuild as
:meth:`RecordComparator.score_bounded`, every score, match decision,
and comparison vector is **bit-identical** to the scalar engine.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.columnar.block import (
    KIND_MEASUREMENT,
    KIND_SCALAR,
    ColumnarBlock,
)
from repro.linkage.comparison import BOUND_MARGIN, ComparisonVector
from repro.text.similarity import (
    jaro_winkler_similarity,
    levenshtein_similarity,
    monge_elkan_similarity,
    monge_elkan_tokens,
    product_name_similarity,
    product_name_similarity_tokens,
)

__all__ = [
    "match_block",
    "match_id_pairs",
    "match_positions",
    "score_block",
    "score_id_pairs",
    "score_positions",
]

IdPair = tuple[str, str]

#: Tolerance the prepared measurement similarity pins (see
#: ``_measurement_payload_similarity`` in repro.linkage.comparison).
_MEASUREMENT_TOLERANCE = 0.05


def _stats(n_vectorized: int, n_residual: int) -> dict[str, int]:
    """Chunk-stats dict in the engine's counter-folding shape.

    The prepared-cache keys are structurally required by the engine's
    chunk validators and always zero here — a block *is* the prepared
    cache, fully hit by construction.
    """
    return {
        "engine.prepared_cache_hits": 0,
        "engine.prepared_cache_misses": 0,
        "columnar.pairs_vectorized": n_vectorized,
        "columnar.pairs_residual": n_residual,
    }


# --- ragged CSR gather + set/count intersection kernels ---------------


def _ragged_gather(
    offsets: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(flat_indices, pair_labels, row_lengths)`` for CSR rows.

    ``flat_indices`` indexes the CSR value array so that
    ``values[flat_indices]`` concatenates the selected rows;
    ``pair_labels`` tags each element with its position in ``rows``.
    """
    lens = offsets[rows + 1] - offsets[rows]
    labels = np.repeat(np.arange(rows.shape[0], dtype=np.int64), lens)
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), labels, lens
    starts = np.repeat(offsets[rows], lens)
    ends = np.cumsum(lens)
    firsts = np.repeat(ends - lens, lens)
    indices = starts + (np.arange(total, dtype=np.int64) - firsts)
    return indices, labels, lens


def _pair_set_intersections(
    column, left: np.ndarray, right: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(intersection_size, left_size, right_size)`` per pair.

    Both sides' token ids are concatenated with per-pair labels and
    lexsorted; because each row holds *unique* ids, every adjacent
    duplicate within one pair is exactly one shared token.
    """
    n = left.shape[0]
    idx_l, lab_l, len_l = _ragged_gather(column.offsets, left)
    idx_r, lab_r, len_r = _ragged_gather(column.offsets, right)
    tokens = np.concatenate(
        [column.token_ids[idx_l], column.token_ids[idx_r]]
    )
    if tokens.size == 0:
        return np.zeros(n, dtype=np.int64), len_l, len_r
    labels = np.concatenate([lab_l, lab_r])
    order = np.lexsort((tokens, labels))
    sorted_tokens = tokens[order]
    sorted_labels = labels[order]
    duplicate = (sorted_tokens[1:] == sorted_tokens[:-1]) & (
        sorted_labels[1:] == sorted_labels[:-1]
    )
    intersections = np.bincount(sorted_labels[1:][duplicate], minlength=n)
    return intersections, len_l, len_r


def _pair_count_dots(
    column, left: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """Per-pair dot product of two CSR count rows (exact integers)."""
    n = left.shape[0]
    idx_l, lab_l, __ = _ragged_gather(column.offsets, left)
    idx_r, lab_r, __ = _ragged_gather(column.offsets, right)
    tokens = np.concatenate(
        [column.token_ids[idx_l], column.token_ids[idx_r]]
    )
    if tokens.size == 0:
        return np.zeros(n, dtype=np.float64)
    labels = np.concatenate([lab_l, lab_r])
    counts = np.concatenate([column.counts[idx_l], column.counts[idx_r]])
    order = np.lexsort((tokens, labels))
    sorted_tokens = tokens[order]
    sorted_labels = labels[order]
    sorted_counts = counts[order]
    duplicate = (sorted_tokens[1:] == sorted_tokens[:-1]) & (
        sorted_labels[1:] == sorted_labels[:-1]
    )
    # Token ids are unique per row, so a duplicate pairs exactly one
    # left count with one right count; the products and their per-pair
    # sums are integers, exact in float64.
    products = (sorted_counts[:-1] * sorted_counts[1:])[duplicate]
    return np.bincount(
        sorted_labels[1:][duplicate],
        weights=products,
        minlength=n,
    )


# --- per-field vector kernels -----------------------------------------
#
# Each returns (similarities, evaluated, present): float64 similarities
# valid where `evaluated`; `present` marks pairs with both sides
# non-missing. For every kind except measurements, evaluated == present
# (a present pair is always fully decidable vectorized); measurement
# pairs where either side failed to parse stay unevaluated and fall to
# the residual pass, exactly like the scalar fallback branch.


def _exact_sims(column, left, right):
    ids_l = column.value_ids[left]
    ids_r = column.value_ids[right]
    present = (ids_l >= 0) & (ids_r >= 0)
    sims = ((ids_l == ids_r) & present).astype(np.float64)
    return sims, present, present


def _token_set_sims(column, left, right):
    present = ~column.missing[left] & ~column.missing[right]
    intersections, len_l, len_r = _pair_set_intersections(
        column, left, right
    )
    sims = np.zeros(left.shape[0], dtype=np.float64)
    if column.metric == "jaccard":
        union = len_l + len_r - intersections
        np.divide(intersections, union, out=sims, where=union > 0)
    elif column.metric == "dice":
        totals = len_l + len_r
        np.divide(2.0 * intersections, totals, out=sims, where=totals > 0)
    else:  # overlap coefficient
        smaller = np.minimum(len_l, len_r)
        np.divide(intersections, smaller, out=sims, where=smaller > 0)
    sims[(len_l == 0) & (len_r == 0)] = 1.0  # both-empty convention
    return sims, present, present


def _counts_sims(column, left, right):
    present = ~column.missing[left] & ~column.missing[right]
    dots = _pair_count_dots(column, left, right)
    denominators = column.norms[left] * column.norms[right]
    sims = np.zeros(left.shape[0], dtype=np.float64)
    np.divide(dots, denominators, out=sims, where=denominators > 0.0)
    empty_l = column.offsets[left + 1] == column.offsets[left]
    empty_r = column.offsets[right + 1] == column.offsets[right]
    sims[empty_l & empty_r] = 1.0
    return sims, present, present


def _measurement_sims(column, left, right):
    present = ~column.missing[left] & ~column.missing[right]
    parsed = present & column.parsed[left] & column.parsed[right]
    values_l = column.values[left]
    values_r = column.values[right]
    sims = np.zeros(left.shape[0], dtype=np.float64)
    same_unit = parsed & (column.unit_ids[left] == column.unit_ids[right])
    equal = same_unit & (values_l == values_r)
    sims[equal] = 1.0
    unequal = same_unit & ~(values_l == values_r)
    if unequal.any():
        a = values_l[unequal]
        b = values_r[unequal]
        # numeric_similarity, op for op: a != b guarantees scale > 0.
        scale = np.maximum(np.abs(a), np.abs(b))
        relative_gap = np.abs(a - b) / scale
        sims[unequal] = np.maximum(
            0.0, 1.0 - relative_gap / _MEASUREMENT_TOLERANCE
        )
    return sims, parsed, present


_VECTOR_KERNELS = {
    "exact": _exact_sims,
    "token_set": _token_set_sims,
    "counts": _counts_sims,
    "measurement": _measurement_sims,
}


# --- cheap pass -------------------------------------------------------


def _cheap_pass(block: ColumnarBlock, left: np.ndarray, right: np.ndarray):
    """Vector-score every cheap field for all pairs at once.

    Accumulates ``weighted``/``total`` with exactly one masked add per
    (pair, field) in field-declaration order — the identical float
    operation sequence to the scalar accumulation — so for pairs whose
    present fields were all evaluated here, ``weighted / total`` *is*
    the exact scalar score.
    """
    n = left.shape[0]
    fields = block.comparator.fields
    penalty = block.comparator.missing_penalty
    weighted = np.zeros(n, dtype=np.float64)
    total = np.zeros(n, dtype=np.float64)
    remaining = np.zeros(n, dtype=np.float64)
    sims_by_field: list[np.ndarray | None] = []
    evaluated_by_field: list[np.ndarray] = []
    present_by_field: list[np.ndarray] = []
    for column, field in zip(block.columns, fields):
        kernel = _VECTOR_KERNELS.get(column.kind)
        if kernel is not None:
            sims, evaluated, present = kernel(column, left, right)
        else:
            present = column.present(left) & column.present(right)
            evaluated = np.zeros(n, dtype=bool)
            sims = None
        weight = field.weight
        if penalty is not None:
            missing = ~present
            weighted[missing] += weight * penalty
            total[missing] += weight
        total[present] += weight
        if sims is not None:
            contributions = weight * sims
            weighted[evaluated] += contributions[evaluated]
        remaining[present & ~evaluated] += weight
        sims_by_field.append(sims)
        evaluated_by_field.append(evaluated)
        present_by_field.append(present)
    return (
        weighted,
        total,
        remaining,
        sims_by_field,
        evaluated_by_field,
        present_by_field,
    )


# --- residual (scalar-fallback) evaluation ----------------------------


def _token_inner(block: ColumnarBlock):
    """Jaro-Winkler with a block-shared directional string-pair memo.

    Injected as the ``inner`` of Monge-Elkan / product-name scoring:
    cached values are the function's own outputs, so results are
    bit-identical with or without the memo.
    """
    memo = block._token_sim_memo

    def inner(a: str, b: str) -> float:
        key = (a, b)
        value = memo.get(key)
        if value is None:
            value = jaro_winkler_similarity(a, b)
            memo[key] = value
        return value

    return inner


def _field_evaluator(block: ColumnarBlock, field_index: int):
    """``evaluate(id_left, id_right) -> float`` for one residual field.

    Ids are interned payload ids (scalar fields) or text ids
    (unparsed measurements); each distinct ordered id pair is computed
    once per block and memoized.
    """
    column = block.columns[field_index]
    memo = column._pair_memo
    if column.kind == KIND_MEASUREMENT:
        texts = column.texts

        def compute(id_left: int, id_right: int) -> float:
            # _measurement_payload_similarity's fallback branch: at
            # least one side is unparsed here, so it is always the
            # normalized-Levenshtein arm.
            return levenshtein_similarity(
                texts[id_left].lower().strip(),
                texts[id_right].lower().strip(),
            )

    else:
        payloads = column.payloads
        similarity = column.field_similarity
        if similarity is product_name_similarity:
            inner = _token_inner(block)

            def compute(id_left: int, id_right: int) -> float:
                a = payloads[id_left]
                b = payloads[id_right]
                return product_name_similarity_tokens(
                    a[0], a[1], b[0], b[1], inner=inner
                )

        elif similarity is monge_elkan_similarity:
            inner = _token_inner(block)

            def compute(id_left: int, id_right: int) -> float:
                return monge_elkan_tokens(
                    payloads[id_left][0], payloads[id_right][0], inner
                )

        else:
            spec_similarity = column._spec_similarity

            def compute(id_left: int, id_right: int) -> float:
                return spec_similarity(payloads[id_left], payloads[id_right])

    def evaluate(id_left: int, id_right: int) -> float:
        key = (id_left, id_right)
        value = memo.get(key)
        if value is None:
            value = compute(id_left, id_right)
            memo[key] = value
        return value

    return evaluate


def _residual_ids(column) -> np.ndarray:
    """The id column residual evaluation keys on, per column kind."""
    if column.kind == KIND_MEASUREMENT:
        return column.text_ids
    return column.payload_ids


# --- main kernels -----------------------------------------------------


def _scores_where_defined(
    weighted: np.ndarray, total: np.ndarray
) -> np.ndarray:
    """``weighted / total`` with the scalar zero-total convention."""
    scores = np.zeros(weighted.shape[0], dtype=np.float64)
    np.divide(weighted, total, out=scores, where=total > 0)
    return scores


def match_positions(
    block: ColumnarBlock,
    left: np.ndarray,
    right: np.ndarray,
    threshold: float,
) -> tuple[list[tuple[str, str, float]], int, dict[str, int]]:
    """Threshold-match pairs of block rows; exact scores for matches.

    Returns ``(matches, n_early, stats)`` with matches in input-pair
    order — decisions and scores bit-identical to
    :meth:`RecordComparator.score_bounded` with ``exact_scores=True``
    per pair. ``n_early`` counts pairs decided before every present
    field was evaluated (mask rejections plus residual-loop exits).
    """
    n = left.shape[0]
    if n == 0:
        return [], 0, _stats(0, 0)
    (
        weighted,
        total,
        remaining,
        sims_by_field,
        evaluated_by_field,
        present_by_field,
    ) = _cheap_pass(block, left, right)

    upper = np.full(n, np.inf)
    np.divide(weighted + remaining, total, out=upper, where=total > 0)
    rejected = upper < threshold - BOUND_MARGIN
    needs_residual = ~rejected & (remaining > 0.0)
    n_early = int(rejected.sum())

    scores = _scores_where_defined(weighted, total)
    is_match = np.zeros(n, dtype=bool)
    fully_vectorized = ~rejected & ~needs_residual
    is_match[fully_vectorized] = scores[fully_vectorized] >= threshold

    residual_index = np.flatnonzero(needs_residual)
    if residual_index.size:
        residual_scores, n_residual_early = _finish_residual(
            block,
            left,
            right,
            residual_index,
            weighted,
            remaining,
            total,
            sims_by_field,
            evaluated_by_field,
            present_by_field,
            threshold,
        )
        n_early += n_residual_early
        for position, score in zip(residual_index.tolist(), residual_scores):
            if score is None:
                continue
            scores[position] = score
            if score >= threshold:
                is_match[position] = True

    record_ids = block.record_ids
    matches = [
        (record_ids[left[i]], record_ids[right[i]], float(scores[i]))
        for i in np.flatnonzero(is_match)
    ]
    n_residual = int(residual_index.size)
    return matches, n_early, _stats(n - n_residual, n_residual)


def _finish_residual(
    block: ColumnarBlock,
    left: np.ndarray,
    right: np.ndarray,
    residual_index: np.ndarray,
    weighted: np.ndarray,
    remaining: np.ndarray,
    total: np.ndarray,
    sims_by_field: list,
    evaluated_by_field: list,
    present_by_field: list,
    threshold: float | None,
) -> tuple[list, int]:
    """Evaluate leftover fields per pair, staged cheap-to-expensive.

    Returns one entry per residual pair: the exact declaration-order
    score, or ``None`` when the running upper bound proved a rejection
    (match mode only). The second element counts those early exits.
    """
    comparator = block.comparator
    fields = comparator.fields
    weights = [field.weight for field in fields]
    penalty = comparator.missing_penalty
    margin = BOUND_MARGIN
    n_fields = len(fields)

    residual_order = [
        index
        for index in comparator.staged_order
        if block.columns[index].kind in (KIND_SCALAR, KIND_MEASUREMENT)
    ]
    evaluators = {
        index: _field_evaluator(block, index) for index in residual_order
    }

    # Batch-extract the per-pair state into plain Python lists; the
    # loop below then runs on ints/floats/bools only.
    present_lists = [
        mask[residual_index].tolist() for mask in present_by_field
    ]
    evaluated_lists = [
        mask[residual_index].tolist() for mask in evaluated_by_field
    ]
    sims_lists = [
        sims[residual_index].tolist() if sims is not None else None
        for sims in sims_by_field
    ]
    ids_left = {
        index: _residual_ids(block.columns[index])[
            left[residual_index]
        ].tolist()
        for index in residual_order
    }
    ids_right = {
        index: _residual_ids(block.columns[index])[
            right[residual_index]
        ].tolist()
        for index in residual_order
    }
    weighted_list = weighted[residual_index].tolist()
    remaining_list = remaining[residual_index].tolist()
    total_list = total[residual_index].tolist()

    outcomes: list = []
    n_early = 0
    for j in range(residual_index.shape[0]):
        running = weighted_list[j]
        left_to_evaluate = remaining_list[j]
        total_weight = total_list[j]
        extra: dict[int, float] = {}
        rejected = False
        for index in residual_order:
            if not present_lists[index][j] or evaluated_lists[index][j]:
                continue
            similarity = evaluators[index](
                ids_left[index][j], ids_right[index][j]
            )
            extra[index] = similarity
            running += weights[index] * similarity
            left_to_evaluate -= weights[index]
            if threshold is None:
                continue
            bound = (running + left_to_evaluate) / total_weight
            if bound < threshold - margin:
                rejected = True
                break
        if rejected:
            outcomes.append(None)
            n_early += 1
            continue
        # Exact score: declaration-order rebuild, the same float
        # sequence as compare_prepared / the score_bounded rebuild.
        exact_weighted = 0.0
        exact_total = 0.0
        for index in range(n_fields):
            if not present_lists[index][j]:
                if penalty is not None:
                    exact_weighted += weights[index] * penalty
                    exact_total += weights[index]
                continue
            if evaluated_lists[index][j]:
                similarity = sims_lists[index][j]
            else:
                similarity = extra[index]
            exact_weighted += weights[index] * similarity
            exact_total += weights[index]
        outcomes.append(exact_weighted / exact_total if exact_total else 0.0)
    return outcomes, n_early


def score_positions(
    block: ColumnarBlock, left: np.ndarray, right: np.ndarray
) -> tuple[list[ComparisonVector], dict[str, int]]:
    """Full comparison vectors for pairs of block rows, in input order.

    Bit-identical to :meth:`RecordComparator.compare_prepared` per
    pair: vector-kind similarities come from the batch kernels, scalar
    fields from the memoized residual evaluators, and the final scores
    from a declaration-order masked accumulation that replays the
    scalar float-op sequence exactly.
    """
    n = left.shape[0]
    if n == 0:
        return [], _stats(0, 0)
    (
        __,
        total,
        remaining,
        sims_by_field,
        evaluated_by_field,
        present_by_field,
    ) = _cheap_pass(block, left, right)

    fields = block.comparator.fields
    penalty = block.comparator.missing_penalty

    # Fill residual similarities into full per-field value arrays.
    values_by_field = [
        sims if sims is not None else np.zeros(n, dtype=np.float64)
        for sims in sims_by_field
    ]
    residual_index = np.flatnonzero(remaining > 0.0)
    if residual_index.size:
        residual_order = [
            index
            for index in block.comparator.staged_order
            if block.columns[index].kind in (KIND_SCALAR, KIND_MEASUREMENT)
        ]
        for index in residual_order:
            column = block.columns[index]
            evaluator = _field_evaluator(block, index)
            pending = residual_index[
                present_by_field[index][residual_index]
                & ~evaluated_by_field[index][residual_index]
            ]
            if not pending.size:
                continue
            ids = _residual_ids(column)
            ids_l = ids[left[pending]].tolist()
            ids_r = ids[right[pending]].tolist()
            computed = [
                evaluator(id_l, id_r) for id_l, id_r in zip(ids_l, ids_r)
            ]
            values_by_field[index][pending] = computed

    # Exact scores: one masked add per (pair, field) in declaration
    # order — the scalar accumulation, vectorized.
    weighted = np.zeros(n, dtype=np.float64)
    exact_total = np.zeros(n, dtype=np.float64)
    for index, field in enumerate(fields):
        present = present_by_field[index]
        weight = field.weight
        if penalty is not None:
            missing = ~present
            weighted[missing] += weight * penalty
            exact_total[missing] += weight
        contributions = weight * values_by_field[index]
        weighted[present] += contributions[present]
        exact_total[present] += weight
    scores = _scores_where_defined(weighted, exact_total).tolist()

    present_lists = [mask.tolist() for mask in present_by_field]
    value_lists = [values.tolist() for values in values_by_field]
    record_ids = block.record_ids
    left_list = left.tolist()
    right_list = right.tolist()
    vectors = [
        ComparisonVector(
            left_id=record_ids[left_list[i]],
            right_id=record_ids[right_list[i]],
            similarities=tuple(
                value_lists[index][i] if present_lists[index][i] else None
                for index in range(len(fields))
            ),
            score=scores[i],
        )
        for i in range(n)
    ]
    n_residual = int(residual_index.size)
    return vectors, _stats(n - n_residual, n_residual)


# --- id-level entry points --------------------------------------------


def _position_pairs(
    block: ColumnarBlock, pairs: Sequence[IdPair]
) -> tuple[np.ndarray, np.ndarray]:
    left = block.positions(pair[0] for pair in pairs)
    right = block.positions(pair[1] for pair in pairs)
    return left, right


def match_id_pairs(
    block: ColumnarBlock, pairs: Sequence[IdPair], threshold: float
) -> tuple[list[tuple[str, str, float]], int, dict[str, int]]:
    """:func:`match_positions` addressed by record-id pairs."""
    left, right = _position_pairs(block, pairs)
    return match_positions(block, left, right, threshold)


def score_id_pairs(
    block: ColumnarBlock, pairs: Sequence[IdPair]
) -> tuple[list[ComparisonVector], dict[str, int]]:
    """:func:`score_positions` addressed by record-id pairs."""
    left, right = _position_pairs(block, pairs)
    return score_positions(block, left, right)


def _cross_positions(
    block: ColumnarBlock,
    left_ids: Iterable[str] | None,
    right_ids: Iterable[str] | None,
) -> tuple[np.ndarray, np.ndarray]:
    every = np.arange(len(block), dtype=np.int64)
    rows_l = every if left_ids is None else block.positions(left_ids)
    rows_r = every if right_ids is None else block.positions(right_ids)
    return (
        np.repeat(rows_l, rows_r.shape[0]),
        np.tile(rows_r, rows_l.shape[0]),
    )


def match_block(
    block: ColumnarBlock,
    threshold: float,
    left_ids: Iterable[str] | None = None,
    right_ids: Iterable[str] | None = None,
) -> tuple[list[tuple[str, str, float]], int]:
    """Match the ``left_ids`` × ``right_ids`` cross product.

    Defaults compare the whole block against itself (including self
    pairs — pass explicit id lists to restrict). One candidate against
    the block is ``match_block(block, t, left_ids=[candidate_id])``.
    Returns ``(matches, n_early)`` in row-major pair order.
    """
    left, right = _cross_positions(block, left_ids, right_ids)
    matches, n_early, __ = match_positions(block, left, right, threshold)
    return matches, n_early


def score_block(
    block: ColumnarBlock,
    left_ids: Iterable[str] | None = None,
    right_ids: Iterable[str] | None = None,
) -> list[ComparisonVector]:
    """Comparison vectors for the ``left_ids`` × ``right_ids`` product.

    Defaults to block × block; one candidate against the block is
    ``score_block(block, left_ids=[candidate_id])``.
    """
    left, right = _cross_positions(block, left_ids, right_ids)
    vectors, __ = score_positions(block, left, right)
    return vectors
