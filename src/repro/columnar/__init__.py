"""Columnar prepared-record blocks and vectorized batch scoring.

The third engine layer (after prepared records and staged early exit):
:func:`build_block` packs a comparator's records into per-field
contiguous numpy columns once, and the batch kernels
(:func:`score_block`, :func:`match_block`) score whole pair sets per
call — numpy set-intersection/Jaccard/dice/overlap/exact/numeric
kernels plus a vectorized early-exit mask, with the scalar similarity
path reserved for the residual pairs that survive it. Output is
bit-identical to the scalar engine; select it end to end with
``representation="columnar"`` on
:class:`~repro.linkage.engine.ParallelComparisonEngine`,
:func:`~repro.linkage.resolver.resolve`, or
:class:`~repro.core.pipeline.PipelineConfig`.
"""

from repro.columnar.block import ColumnarBlock, build_block, column_kind
from repro.columnar.kernels import (
    match_block,
    match_id_pairs,
    match_positions,
    score_block,
    score_id_pairs,
    score_positions,
)
from repro.columnar.serialize import block_from_bytes, block_to_bytes

__all__ = [
    "ColumnarBlock",
    "block_from_bytes",
    "block_to_bytes",
    "build_block",
    "column_kind",
    "match_block",
    "match_id_pairs",
    "match_positions",
    "score_block",
    "score_id_pairs",
    "score_positions",
]
