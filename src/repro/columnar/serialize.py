"""Compact, durable serialization for columnar blocks.

Blocks ship to worker processes and spill to disk (the out-of-core
layer), so their wire size matters. Serialization uses pickle protocol
5: numpy columns serialize as raw contiguous buffers (no per-element
overhead), interned tables carry each distinct string exactly once, and
the transient similarity memo caches are dropped by the columns' own
``__getstate__`` — a round-tripped block is value-identical with cold
memos.

Round-tripping is lossless for scoring: every kernel output over a
deserialized block is bit-identical to the original (asserted in
tests/test_columnar.py).
"""

from __future__ import annotations

import pickle

from repro.columnar.block import ColumnarBlock

__all__ = ["block_to_bytes", "block_from_bytes"]

#: Protocol 5 keeps large array columns as out-of-band-capable raw
#: buffers; available on every supported interpreter (3.8+).
_PROTOCOL = 5


def block_to_bytes(block: ColumnarBlock) -> bytes:
    """Serialize ``block`` (without its transient memo caches)."""
    return pickle.dumps(block, protocol=_PROTOCOL)


def block_from_bytes(payload: bytes) -> ColumnarBlock:
    """Reconstruct a block serialized by :func:`block_to_bytes`."""
    block = pickle.loads(payload)
    if not isinstance(block, ColumnarBlock):
        raise TypeError(
            f"payload does not deserialize to a ColumnarBlock: "
            f"{type(block).__name__}"
        )
    return block
