"""Marginal gain of integrating one more source (Dong, Saha &
Srivastava, VLDB'13).

The "less is more" result rests on a quantity computable *without*
ground truth: the **expected accuracy** of fusing a source subset —
the mean posterior probability the fusion model assigns to its own
chosen values. Each additional source changes that expectation; its
*marginal gain* is the difference. Gains shrink as coverage saturates
(and can go negative when a low-quality source outvotes good ones),
while integration cost grows with every source — so profit
(gain − cost) peaks well before all sources are integrated.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.fusion.base import ClaimSet, Fuser

__all__ = ["expected_accuracy", "true_accuracy", "marginal_gain"]


def expected_accuracy(
    claims: ClaimSet, sources: Sequence[str], fuser: Fuser
) -> float:
    """Model-expected accuracy of fusing only ``sources``.

    The mean, over items any selected source covers, of the fusion
    confidence in the chosen value; items covered by nobody count 0.
    """
    if not sources:
        return 0.0
    subset = claims.restricted_to_sources(sources)
    if len(subset) == 0:
        return 0.0
    result = fuser.fuse(subset)
    n_items = len(claims.items())
    if n_items == 0:
        raise ConfigurationError("claim set has no items")
    total_confidence = sum(result.confidence.values())
    return total_confidence / n_items


def true_accuracy(
    claims: ClaimSet,
    sources: Sequence[str],
    fuser: Fuser,
    truth: Mapping[str, str],
) -> float:
    """Actual accuracy of fusing only ``sources``, over *all* items.

    Uncovered items count as wrong (coverage matters), which is the
    convention of the selection experiments.
    """
    if not sources:
        return 0.0
    subset = claims.restricted_to_sources(sources)
    if len(subset) == 0:
        return 0.0
    result = fuser.fuse(subset)
    n_items = len(claims.items())
    correct = sum(
        1
        for item, value in result.chosen.items()
        if truth.get(item) == value
    )
    return correct / n_items if n_items else 0.0


def marginal_gain(
    claims: ClaimSet,
    selected: Iterable[str],
    candidate: str,
    fuser: Fuser,
) -> float:
    """Expected-accuracy gain of adding ``candidate`` to ``selected``."""
    current = list(selected)
    before = expected_accuracy(claims, current, fuser)
    after = expected_accuracy(claims, current + [candidate], fuser)
    return after - before
