"""Greedy source selection and the ordering baselines.

:class:`GreedySourceSelector` adds, at each step, the source with the
best marginal expected-accuracy gain (optionally per unit cost), and
can stop when gain no longer justifies cost — the "less is more"
decision. Random / coverage / accuracy orderings provide the
comparison curves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import ConfigurationError
from repro.fusion.base import ClaimSet, Fuser
from repro.selection.gain import expected_accuracy, marginal_gain
from repro.selection.profiles import profile_sources

__all__ = ["SelectionStep", "SelectionResult", "GreedySourceSelector", "baseline_order"]


@dataclass(frozen=True)
class SelectionStep:
    """One step of the selection process."""

    source_id: str
    gain: float
    cost: float
    expected_accuracy: float

    @property
    def profit(self) -> float:
        """Gain minus cost (with the caller's cost scaling pre-applied)."""
        return self.gain - self.cost


@dataclass(frozen=True)
class SelectionResult:
    """Full selection trajectory."""

    steps: tuple[SelectionStep, ...]
    stopped_early: bool

    @property
    def order(self) -> tuple[str, ...]:
        """Sources in selection order."""
        return tuple(step.source_id for step in self.steps)

    def cumulative_profit(self) -> list[float]:
        """Running Σ(gain − cost) after each step."""
        running = 0.0
        profits: list[float] = []
        for step in self.steps:
            running += step.profit
            profits.append(running)
        return profits


class GreedySourceSelector:
    """Greedy marginal-gain source selection.

    Parameters
    ----------
    fuser:
        Fusion model used both to integrate and to compute expected
        accuracy.
    cost_weight:
        Scales source costs into expected-accuracy units; 0 ignores
        cost (pure accuracy-greedy).
    stop_when_unprofitable:
        Stop at the first step whose best gain − scaled cost < 0 (the
        less-is-more stopping rule). Otherwise rank all sources.
    max_sources:
        Hard cap on selected sources.
    """

    def __init__(
        self,
        fuser: Fuser,
        cost_weight: float = 0.0,
        stop_when_unprofitable: bool = False,
        max_sources: int | None = None,
    ) -> None:
        if cost_weight < 0:
            raise ConfigurationError("cost_weight must be >= 0")
        self._fuser = fuser
        self._cost_weight = cost_weight
        self._stop = stop_when_unprofitable
        self._max_sources = max_sources

    def select(
        self,
        claims: ClaimSet,
        costs: Mapping[str, float] | None = None,
    ) -> SelectionResult:
        """Run the greedy selection over all sources in ``claims``."""
        claims.require_nonempty()
        costs = costs or {}
        remaining = list(claims.sources())
        selected: list[str] = []
        steps: list[SelectionStep] = []
        current_expected = 0.0
        budget = self._max_sources or len(remaining)
        stopped_early = False
        while remaining and len(selected) < budget:
            best_source: str | None = None
            best_score = float("-inf")
            best_gain = 0.0
            for candidate in remaining:
                gain = marginal_gain(
                    claims, selected, candidate, self._fuser
                )
                score = gain - self._cost_weight * costs.get(candidate, 1.0)
                if score > best_score or (
                    score == best_score
                    and (best_source is None or candidate < best_source)
                ):
                    best_source = candidate
                    best_score = score
                    best_gain = gain
            assert best_source is not None
            scaled_cost = self._cost_weight * costs.get(best_source, 1.0)
            if self._stop and best_gain - scaled_cost < 0:
                stopped_early = True
                break
            selected.append(best_source)
            remaining.remove(best_source)
            current_expected = expected_accuracy(
                claims, selected, self._fuser
            )
            steps.append(
                SelectionStep(
                    source_id=best_source,
                    gain=best_gain,
                    cost=scaled_cost,
                    expected_accuracy=current_expected,
                )
            )
        return SelectionResult(steps=tuple(steps), stopped_early=stopped_early)


def baseline_order(
    claims: ClaimSet,
    strategy: str,
    seed: int = 0,
    reference_truth: Mapping[str, str] | None = None,
) -> list[str]:
    """Source orderings the greedy curve is compared against.

    ``"random"`` shuffles; ``"coverage"`` sorts by claim count;
    ``"accuracy"`` sorts by estimated accuracy (vs the majority vote
    unless a reference truth is supplied).
    """
    sources = list(claims.sources())
    if strategy == "random":
        rng = random.Random(seed)
        rng.shuffle(sources)
        return sources
    stats = profile_sources(claims, reference_truth=reference_truth)
    if strategy == "coverage":
        return sorted(sources, key=lambda s: (-stats[s].coverage, s))
    if strategy == "accuracy":
        return sorted(
            sources, key=lambda s: (-stats[s].accuracy_estimate, s)
        )
    raise ConfigurationError(f"unknown baseline strategy {strategy!r}")
