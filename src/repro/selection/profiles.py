"""Source profiling for selection: coverage, accuracy, agreement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.fusion.base import ClaimSet

__all__ = ["SourceStats", "profile_sources"]


@dataclass(frozen=True)
class SourceStats:
    """Selection-relevant statistics of one source."""

    source_id: str
    n_claims: int
    coverage: float
    accuracy_estimate: float
    cost: float = 1.0

    @property
    def expected_correct_items(self) -> float:
        """Coverage × accuracy — a crude standalone utility."""
        return self.coverage * self.accuracy_estimate


def profile_sources(
    claims: ClaimSet,
    reference_truth: Mapping[str, str] | None = None,
    costs: Mapping[str, float] | None = None,
) -> dict[str, SourceStats]:
    """Profile every source in a claim set.

    Accuracy is estimated against ``reference_truth`` when given (a
    labeled sample, or a trusted fusion result's answers); without it,
    against the majority vote — the bootstrap every selection system
    starts from.
    """
    n_items = len(claims.items())
    if reference_truth is None:
        from repro.fusion.voting import VotingFuser

        reference_truth = VotingFuser().fuse(claims).chosen
    stats: dict[str, SourceStats] = {}
    for source in claims.sources():
        source_claims = claims.claims_by(source)
        correct = sum(
            1
            for claim in source_claims
            if reference_truth.get(claim.item_id) == claim.value
        )
        accuracy = correct / len(source_claims) if source_claims else 0.0
        stats[source] = SourceStats(
            source_id=source,
            n_claims=len(source_claims),
            coverage=len(source_claims) / n_items if n_items else 0.0,
            accuracy_estimate=accuracy,
            cost=(costs or {}).get(source, 1.0),
        )
    return stats
