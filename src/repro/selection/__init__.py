"""Source selection: profiling, marginal gain, greedy less-is-more."""

from repro.selection.gain import expected_accuracy, marginal_gain, true_accuracy
from repro.selection.greedy import (
    GreedySourceSelector,
    SelectionResult,
    SelectionStep,
    baseline_order,
)
from repro.selection.profiles import SourceStats, profile_sources

__all__ = [
    "GreedySourceSelector",
    "SelectionResult",
    "SelectionStep",
    "SourceStats",
    "baseline_order",
    "expected_accuracy",
    "marginal_gain",
    "profile_sources",
    "true_accuracy",
]
