"""The circuit breaker: stop hammering a failing dependency.

Classic three-state machine, fully deterministic under an injected
clock:

- **closed** — normal operation; consecutive failures are counted and
  ``failure_threshold`` of them trip the breaker open.
- **open** — calls are refused (``allow()`` is ``False``) until
  ``reset_timeout`` seconds have passed on the breaker's clock;
  :meth:`retry_after` tells callers how long to back off (the value
  the serving layer puts on its ``Overloaded`` rejections).
- **half-open** — after the timeout, exactly one trial call is let
  through. Success closes the breaker (automatic re-arm, counted as
  ``{name}.rearmed``); failure reopens it for another full timeout.

State transitions are observable: a ``{name}.state`` gauge (0 closed,
1 half-open, 2 open), ``{name}.opened`` / ``{name}.rearmed`` counters,
and an optional ``on_state_change(old, new)`` callback for callers
that derive their own signals (the serving layer's ``serve.degraded``
gauge).
"""

from __future__ import annotations

import threading

from repro.core.errors import ConfigurationError
from repro.obs import NULL_TRACER
from repro.obs.clock import SystemClock

__all__ = ["BREAKER_STATES", "CircuitBreaker"]

BREAKER_STATES: tuple[str, ...] = ("closed", "half_open", "open")

_STATE_GAUGE = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


class CircuitBreaker:
    """A thread-safe closed → open → half-open breaker.

    ``clock`` is any :class:`repro.obs.Clock`; inject a
    :class:`~repro.obs.clock.ManualClock` and the entire
    trip → wait → trial → re-arm timeline becomes exactly assertable.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock=None,
        tracer=None,
        name: str = "breaker",
        on_state_change=None,
    ) -> None:
        if not isinstance(failure_threshold, int) or failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be an integer >= 1, "
                f"got {failure_threshold!r}"
            )
        if (
            not isinstance(reset_timeout, (int, float))
            or reset_timeout <= 0
        ):
            raise ConfigurationError(
                f"reset_timeout must be > 0, got {reset_timeout!r}"
            )
        self._threshold = failure_threshold
        self._reset_timeout = float(reset_timeout)
        self._clock = clock if clock is not None else SystemClock()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._name = name
        self._on_state_change = on_state_change
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._trial_inflight = False
        self._tracer.gauge(f"{name}.state").set(0.0)

    # --- state machine (all under self._lock) -------------------------

    def _set_state(self, new: str) -> None:
        old = self._state
        if old == new:
            return
        self._state = new
        self._tracer.gauge(f"{self._name}.state").set(_STATE_GAUGE[new])
        if new == "open":
            self._tracer.counter(f"{self._name}.opened").inc()
        if new == "closed" and old != "closed":
            self._tracer.counter(f"{self._name}.rearmed").inc()
        if self._on_state_change is not None:
            self._on_state_change(old, new)

    def _poll(self) -> None:
        """Open → half-open once the reset timeout has elapsed."""
        if (
            self._state == "open"
            and self._clock.now() - self._opened_at >= self._reset_timeout
        ):
            self._trial_inflight = False
            self._set_state("half_open")

    def _trip(self) -> None:
        self._failures = 0
        self._trial_inflight = False
        self._opened_at = self._clock.now()
        self._set_state("open")

    # --- the caller-facing protocol ----------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._poll()
            return self._state

    def allow(self) -> bool:
        """May a guarded call proceed right now?

        In half-open state the first ``allow()`` claims the single
        trial slot; further calls are refused until the trial reports
        back through :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            self._poll()
            if self._state == "closed":
                return True
            if self._state == "open":
                return False
            if self._trial_inflight:
                return False
            self._trial_inflight = True
            return True

    def record_success(self) -> None:
        """A guarded call succeeded: reset failures, re-arm if tripped."""
        with self._lock:
            self._poll()
            self._failures = 0
            self._trial_inflight = False
            self._set_state("closed")

    def record_failure(self) -> None:
        """A guarded call failed: count it, trip past the threshold.

        A half-open trial failure reopens immediately — one bad trial
        is proof enough that the dependency is still down.
        """
        with self._lock:
            self._poll()
            self._tracer.counter(f"{self._name}.failures").inc()
            if self._state == "half_open":
                self._trip()
                return
            if self._state == "open":
                return
            self._failures += 1
            if self._failures >= self._threshold:
                self._trip()

    def retry_after(self) -> float:
        """Seconds (on the breaker's clock) until the next trial."""
        with self._lock:
            self._poll()
            if self._state != "open":
                return 0.0
            elapsed = self._clock.now() - self._opened_at
            return max(0.0, self._reset_timeout - elapsed)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(name={self._name!r}, state={self.state!r}, "
            f"threshold={self._threshold}, "
            f"reset_timeout={self._reset_timeout})"
        )
