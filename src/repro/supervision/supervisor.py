"""Self-healing supervision for the sharded pipeline runtime.

The sharded runtime (:mod:`repro.dist.runtime`) already makes shard
work *resumable*: workers checkpoint engine chunks into their own
``dist.shard.{k}.engine`` namespace and completed shards persist their
results, so an operator who notices a dead worker can re-run the job
and lose nothing. The :class:`Supervisor` removes the operator from
that sentence. It watches each shard worker two ways —

- **exit codes**: a worker that exits non-zero (or exits zero without
  having published its result) died;
- **heartbeat tokens**: a live process whose
  ``(incarnation, seq)`` heartbeat token (see
  :mod:`repro.supervision.heartbeat`) is unchanged across
  ``stale_polls`` consecutive polls is hung, and gets killed;

— and restarts the victim from its own checkpoint namespace under a
bounded, backoff-governed restart budget. Because restarted workers
replay completed chunks from the ledger and the engine is
deterministic, a supervised run's final output is **byte-identical**
to an unfaulted run. When a shard dies more than
``SupervisionPolicy.max_restarts`` times the supervisor stops healing
and escalates with :class:`SupervisionExhaustedError` — a crash loop
is a bug report, not something to retry forever.

Every decision is recorded as a :class:`SupervisionEvent` (the
``supervisor.events`` timeline, exportable to JSON for CI artifacts)
and mirrored into ``supervision.*`` counters on the tracer.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import time
from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError, ReproError
from repro.obs import NULL_TRACER
from repro.resilience.policy import InjectedWorkerDeath, RetryPolicy
from repro.supervision.heartbeat import (
    HeartbeatEmitter,
    progress_token,
    read_heartbeat,
)

__all__ = [
    "SUPERVISION_EVENT_KINDS",
    "SupervisionEvent",
    "SupervisionExhaustedError",
    "SupervisionPolicy",
    "Supervisor",
]

SUPERVISION_EVENT_KINDS: tuple[str, ...] = (
    "start",
    "death",
    "hang",
    "restart",
    "recovered",
    "exhausted",
)


class SupervisionExhaustedError(ReproError):
    """A shard kept dying after every restart the policy allowed."""

    def __init__(
        self, shard: int, restarts: int, cause: BaseException | None = None
    ) -> None:
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"shard {shard} died {restarts + 1} time(s); restart budget "
            f"of {restarts} exhausted{detail}"
        )
        self.shard = shard
        self.restarts = restarts
        self.cause = cause


@dataclass(frozen=True)
class SupervisionEvent:
    """One entry in the supervisor's decision timeline.

    ``kind`` is one of :data:`SUPERVISION_EVENT_KINDS`;
    ``incarnation`` is which launch of the shard the event concerns
    (1 = first launch, each restart increments it).
    """

    kind: str
    shard: int
    incarnation: int
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "shard": self.shard,
            "incarnation": self.incarnation,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class SupervisionPolicy:
    """How aggressively the supervisor heals — and when it gives up.

    ``max_restarts`` is the per-shard restart budget (0 = never
    restart, escalate on the first death). ``backoff`` paces restarts
    so a crash-looping shard doesn't spin the host. ``poll_interval``
    is the monitoring cadence for process workers; ``stale_polls``
    (optional) turns on heartbeat supervision: a worker whose token is
    unchanged for that many consecutive polls is declared hung and
    killed. ``heartbeat_dir`` pins where heartbeat files live (a temp
    dir otherwise). ``sleep`` is the injectable restart-backoff sleep
    (inline backend and tests); real process polling always uses real
    time.
    """

    max_restarts: int = 2
    backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=1, base_delay=0.05, multiplier=2.0, max_delay=1.0
        )
    )
    poll_interval: float = 0.02
    stale_polls: int | None = None
    heartbeat_dir: str | None = None
    sleep: "object | None" = None

    def __post_init__(self) -> None:
        if not isinstance(self.max_restarts, int) or self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be an integer >= 0, "
                f"got {self.max_restarts!r}"
            )
        if (
            not isinstance(self.poll_interval, (int, float))
            or self.poll_interval <= 0
        ):
            raise ConfigurationError(
                f"poll_interval must be > 0, got {self.poll_interval!r}"
            )
        if self.stale_polls is not None and (
            not isinstance(self.stale_polls, int) or self.stale_polls < 1
        ):
            raise ConfigurationError(
                f"stale_polls must be an integer >= 1, "
                f"got {self.stale_polls!r}"
            )


def _supervised_worker(
    task, incarnation: int, store_root: str, durable: bool, result_key: str
) -> None:
    """Process-worker entry point (module-level: must be picklable).

    Publishes the shard result into the run store under ``result_key``
    *before* exiting zero — the supervisor treats "exited zero, no
    result" as a death, so the exit code alone never vouches for work
    that didn't land. An :class:`InjectedWorkerDeath` escaping the
    engine becomes a real non-zero exit, exactly like a SIGKILL.
    """
    from repro.dist.runtime import _run_shard
    from repro.recovery import RunStore
    from repro.resilience.testing import KILL_EXIT_CODE

    injector = getattr(task.resilience, "fault_injector", None)
    if injector is not None and hasattr(injector, "bind_incarnation"):
        injector.bind_incarnation(incarnation)
    try:
        result = _run_shard(task)
    except InjectedWorkerDeath:
        os._exit(KILL_EXIT_CODE)
    RunStore(store_root, durable=durable).save(result_key, {"result": result})


@dataclass
class _Supervised:
    """Coordinator-side state for one running shard worker."""

    shard: int
    proc: "object"
    incarnation: int
    heartbeat_path: str
    result_key: str
    token: tuple[int, int] = (0, 0)
    stale: int = 0


class Supervisor:
    """Run shard tasks to completion, restarting the ones that die.

    Plugs into :func:`repro.dist.runtime.sharded_resolve` /
    :func:`~repro.dist.runtime.sharded_match_pairs` via their
    ``supervisor=`` argument; the runtime hands over exactly the shard
    tasks that could not be resumed from the store. ``events`` holds
    the full decision timeline after (or during) a run.
    """

    def __init__(self, policy: SupervisionPolicy | None = None, tracer=None):
        self._policy = policy if policy is not None else SupervisionPolicy()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.events: list[SupervisionEvent] = []

    @property
    def policy(self) -> SupervisionPolicy:
        return self._policy

    def _event(
        self, kind: str, shard: int, incarnation: int, detail: str = ""
    ) -> None:
        self.events.append(SupervisionEvent(kind, shard, incarnation, detail))
        self._tracer.counter(f"supervision.{kind}s").inc()

    def _sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        sleep = self._policy.sleep if self._policy.sleep is not None else time.sleep
        sleep(seconds)

    def _restart_delay(self, shard: int, restarts: int) -> float:
        return self._policy.backoff.delay(restarts, salt=f"supervise.{shard}")

    # --- inline backend ----------------------------------------------

    def _execute_inline(self, tasks: dict, persist) -> dict:
        """Deterministic single-process supervision (chaos tests).

        ``flap`` faults surface here as :class:`InjectedWorkerDeath`
        escaping the engine — a ``BaseException``, so it sails past the
        resilient executor's recovery exactly as a SIGKILL would kill a
        real worker mid-chunk.
        """
        from repro.dist.runtime import _run_shard

        results: dict = {}
        for shard in sorted(tasks):
            task = tasks[shard]
            restarts = 0
            self._event("start", shard, 1)
            while True:
                incarnation = restarts + 1
                injector = getattr(task.resilience, "fault_injector", None)
                if injector is not None and hasattr(
                    injector, "bind_incarnation"
                ):
                    injector.bind_incarnation(incarnation)
                try:
                    result = _run_shard(task)
                except InjectedWorkerDeath as death:
                    self._event("death", shard, incarnation, str(death))
                    if restarts >= self._policy.max_restarts:
                        self._event("exhausted", shard, incarnation)
                        raise SupervisionExhaustedError(
                            shard, restarts, death
                        ) from death
                    restarts += 1
                    self._sleep(self._restart_delay(shard, restarts))
                    self._event("restart", shard, restarts + 1)
                    continue
                results[shard] = result
                persist(shard, result)
                if restarts:
                    self._event("recovered", shard, incarnation)
                break
        return results

    # --- process backend ---------------------------------------------

    def _launch(
        self, ctx, task, shard: int, incarnation: int, hb_dir: str, binding
    ) -> _Supervised:
        heartbeat_path = os.path.join(hb_dir, f"shard.{shard}.heartbeat")
        result_key = f"{binding.prefix}.supervised.{shard}.result"
        run_task = task
        if task.resilience is not None:
            emitter = HeartbeatEmitter(heartbeat_path, incarnation)
            run_task = dataclasses.replace(
                task,
                resilience=dataclasses.replace(
                    task.resilience, heartbeat=emitter
                ),
            )
        proc = ctx.Process(
            target=_supervised_worker,
            args=(
                run_task,
                incarnation,
                binding.store_root,
                binding.durable,
                result_key,
            ),
        )
        proc.start()
        return _Supervised(
            shard=shard,
            proc=proc,
            incarnation=incarnation,
            heartbeat_path=heartbeat_path,
            result_key=result_key,
        )

    def _execute_process(self, tasks: dict, persist, binding) -> dict:
        """Supervise real OS worker processes.

        Needs the checkpoint store twice over: workers publish results
        through it (exit codes can't carry a :class:`ShardResult`) and
        restarts are only *cheap* because engine chunks resume from it.
        """
        import multiprocessing

        from repro.recovery import RunStore

        if binding.store_root is None:
            raise ConfigurationError(
                "process-backend supervision requires a checkpoint store "
                "(pass checkpoint=... to the sharded run): workers publish "
                "results and resume restarts through it"
            )
        # Forked workers where the platform has them (same launch
        # method as the runtime's ProcessPoolExecutor, and each fork
        # snapshots a pristine injector state from the coordinator);
        # spawn elsewhere.
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context("spawn")
        store = RunStore(binding.store_root, durable=binding.durable)
        policy = self._policy
        results: dict = {}
        restarts = {shard: 0 for shard in tasks}
        queue = sorted(tasks)
        waiting: list[tuple[float, int]] = []  # (ready_at, shard)
        running: dict[int, _Supervised] = {}
        max_workers = max(1, min(len(queue), os.cpu_count() or 1))
        temp: tempfile.TemporaryDirectory | None = None
        hb_dir = policy.heartbeat_dir
        if hb_dir is None:
            temp = tempfile.TemporaryDirectory(prefix="repro-supervise-")
            hb_dir = temp.name

        def schedule_restart(
            state: _Supervised, kind: str, detail: str
        ) -> None:
            shard = state.shard
            self._event(kind, shard, state.incarnation, detail)
            if restarts[shard] >= policy.max_restarts:
                self._event("exhausted", shard, state.incarnation)
                for other in running.values():
                    other.proc.kill()
                    other.proc.join()
                raise SupervisionExhaustedError(shard, restarts[shard])
            restarts[shard] += 1
            delay = self._restart_delay(shard, restarts[shard])
            waiting.append((time.monotonic() + delay, shard))

        def reap(state: _Supervised) -> None:
            shard = state.shard
            code = state.proc.exitcode
            state.proc.join()
            del running[shard]
            if code == 0:
                payload = store.load(state.result_key)
                if payload is not None and "result" in payload:
                    results[shard] = payload["result"]
                    persist(shard, payload["result"])
                    if restarts[shard]:
                        self._event("recovered", shard, state.incarnation)
                    return
                schedule_restart(
                    state, "death", "exited 0 without publishing a result"
                )
                return
            schedule_restart(state, "death", f"exit code {code}")

        try:
            while len(results) < len(tasks):
                now = time.monotonic()
                due = [entry for entry in waiting if entry[0] <= now]
                for entry in due:
                    waiting.remove(entry)
                    queue.append(entry[1])
                queue.sort()
                while queue and len(running) < max_workers:
                    shard = queue.pop(0)
                    incarnation = restarts[shard] + 1
                    state = self._launch(
                        ctx, tasks[shard], shard, incarnation, hb_dir, binding
                    )
                    running[shard] = state
                    if incarnation == 1:
                        self._event("start", shard, incarnation)
                    else:
                        self._event("restart", shard, incarnation)
                if not running:
                    if not waiting:  # pragma: no cover - defensive
                        raise ConfigurationError(
                            "supervisor stalled with no running or "
                            "waiting shards"
                        )
                    time.sleep(
                        max(
                            policy.poll_interval / 4,
                            min(entry[0] for entry in waiting) - now,
                        )
                    )
                    continue
                time.sleep(policy.poll_interval)
                for shard in sorted(running):
                    state = running[shard]
                    if state.proc.exitcode is not None:
                        reap(state)
                        continue
                    if policy.stale_polls is None:
                        continue
                    token = progress_token(
                        read_heartbeat(state.heartbeat_path)
                    )
                    if token > state.token:
                        state.token = token
                        state.stale = 0
                        continue
                    state.stale += 1
                    if state.stale >= policy.stale_polls:
                        state.proc.kill()
                        state.proc.join()
                        del running[shard]
                        schedule_restart(
                            state,
                            "hang",
                            f"heartbeat token {state.token} unchanged "
                            f"for {state.stale} polls",
                        )
        finally:
            if temp is not None:
                temp.cleanup()
        return results

    # --- entry point --------------------------------------------------

    def execute(self, tasks: dict, persist, *, backend: str, binding) -> dict:
        """Run ``tasks`` (shard → task) under supervision.

        Returns shard → result for every task; raises
        :class:`SupervisionExhaustedError` when any shard exceeds the
        restart budget. ``persist`` is the runtime's per-shard
        checkpointing callback, invoked exactly once per completed
        shard (so a run killed *between* shards still resumes).
        """
        if not tasks:
            return {}
        if backend == "inline":
            return self._execute_inline(tasks, persist)
        return self._execute_process(tasks, persist, binding)
