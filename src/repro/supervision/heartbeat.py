"""Cross-process heartbeats stamped with monotonic sequence numbers.

A worker that dies *between* heartbeat emissions looks exactly like a
slow worker if liveness is judged by wall-clock gaps — clocks skew,
schedulers stall, and a generous timeout turns every real death into a
long outage while a tight one kills healthy-but-slow workers. The fix
is to stop asking "when did you last beat?" and ask "have you beaten
*since I last looked*?": every beat carries a monotonically increasing
``(incarnation, seq)`` token, the supervisor remembers the token it
saw on the previous poll, and an unchanged token across N polls *is*
staleness — no wall clock consulted. The incarnation component (which
restart of the worker this is) keeps the token monotonic across
restarts, when the per-process ``seq`` counter resets to zero.

The emitter travels inside
:class:`~repro.resilience.policy.ResilienceConfig` (``heartbeat=``)
into the worker, where the resilient executor beats it before every
chunk attempt. Emission is a write-to-temp + atomic rename, so the
supervisor never reads a torn beat; it is deliberately *not* fsynced —
a heartbeat is advisory, and an fsync per attempt would put durability
costs on the hot path.
"""

from __future__ import annotations

import json
import os

from repro.core.errors import ConfigurationError

__all__ = ["HeartbeatEmitter", "progress_token", "read_heartbeat"]


class HeartbeatEmitter:
    """Publishes ``(incarnation, seq)``-stamped beats to one file.

    Picklable (plain path + counters), so it rides a
    :class:`~repro.resilience.policy.ResilienceConfig` into a worker
    process. The supervisor constructs a fresh emitter per (re)launch
    with that launch's incarnation number; ``seq`` starts at zero in
    every incarnation and increments per beat.
    """

    def __init__(self, path, incarnation: int = 1) -> None:
        if not isinstance(incarnation, int) or incarnation < 1:
            raise ConfigurationError(
                f"incarnation must be an integer >= 1, got {incarnation!r}"
            )
        self._path = str(path)
        self._incarnation = incarnation
        self._seq = 0

    @property
    def path(self) -> str:
        return self._path

    @property
    def incarnation(self) -> int:
        return self._incarnation

    @property
    def seq(self) -> int:
        """Beats emitted so far by this incarnation."""
        return self._seq

    def beat(self, chunk: int = -1, attempt: int = 0) -> None:
        """Publish one beat (atomic replace; torn reads impossible)."""
        self._seq += 1
        payload = json.dumps(
            {
                "incarnation": self._incarnation,
                "seq": self._seq,
                "chunk": chunk,
                "attempt": attempt,
            },
            sort_keys=True,
        )
        tmp = f"{self._path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp, self._path)


def read_heartbeat(path) -> dict | None:
    """The last published beat at ``path``, or ``None``.

    Missing file (worker not started or no resilient executor on its
    path) and unreadable content both read as "no beat yet" — the
    supervisor then falls back to exit-code-only supervision.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload


def progress_token(beat: dict | None) -> tuple[int, int]:
    """The monotonic ordering key of one beat.

    ``(incarnation, seq)`` tuples compare lexicographically: any new
    beat from the same incarnation, or any beat from a newer
    incarnation, strictly exceeds the previous token. ``(0, 0)`` is
    "no beat observed", below every real beat.
    """
    if beat is None:
        return (0, 0)
    return (int(beat.get("incarnation", 0)), int(beat.get("seq", 0)))
