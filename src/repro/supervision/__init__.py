"""repro.supervision — self-healing execution and overload protection.

The resilience layer (:mod:`repro.resilience`) recovers from failures
*inside* a worker: retries, bisection, quarantine. This package
recovers from failures *of* workers and of the serving layer around
them:

- :class:`Supervisor` / :class:`SupervisionPolicy` — watch sharded
  pipeline workers via exit codes and monotonic heartbeat tokens,
  restart the dead and the hung from their own checkpoints under a
  bounded backoff budget, escalate with
  :class:`SupervisionExhaustedError` when the budget runs out. The
  healed run's output is byte-identical to an unfaulted run.
- :class:`HeartbeatEmitter` / :func:`read_heartbeat` /
  :func:`progress_token` — ``(incarnation, seq)``-stamped liveness
  without wall clocks: staleness is "the token didn't move", never
  "the timestamp looks old".
- :class:`CircuitBreaker` — closed → open → half-open protection
  around a failing dependency, deterministic under an injected clock.
- :class:`AdmissionGate` / :class:`OverloadPolicy` /
  :class:`Overloaded` — bounded write intake with explicit,
  retry-after-carrying rejection instead of queueing collapse.

:class:`~repro.serve.service.ResolutionService` composes the breaker
and the gate into degraded-mode serving (reads keep answering from the
last published generation while writes shed); the sharded runtime
composes the supervisor via its ``supervisor=`` argument.
"""

from repro.supervision.admission import (
    SHED_MODES,
    AdmissionGate,
    Overloaded,
    OverloadPolicy,
)
from repro.supervision.breaker import BREAKER_STATES, CircuitBreaker
from repro.supervision.heartbeat import (
    HeartbeatEmitter,
    progress_token,
    read_heartbeat,
)
from repro.supervision.supervisor import (
    SUPERVISION_EVENT_KINDS,
    SupervisionEvent,
    SupervisionExhaustedError,
    SupervisionPolicy,
    Supervisor,
)

__all__ = [
    "AdmissionGate",
    "BREAKER_STATES",
    "CircuitBreaker",
    "HeartbeatEmitter",
    "Overloaded",
    "OverloadPolicy",
    "SHED_MODES",
    "SUPERVISION_EVENT_KINDS",
    "SupervisionEvent",
    "SupervisionExhaustedError",
    "SupervisionPolicy",
    "Supervisor",
    "progress_token",
    "read_heartbeat",
]
