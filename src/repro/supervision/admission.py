"""Admission control: bounded write intake with explicit backpressure.

An unbounded service doesn't fail fast, it fails completely: writers
pile onto the ingest lock until memory, file descriptors, or latency
fall over for *everyone*. The :class:`AdmissionGate` caps how many
writes may be in flight (queued on the lock plus executing); the
excess is rejected immediately with :class:`Overloaded` — an explicit,
retryable signal carrying a ``retry_after`` hint — instead of being
silently queued into collapse.

:class:`OverloadPolicy` bundles the serving layer's whole overload
posture: the admission limit, the circuit-breaker thresholds guarding
ingest-side linking and refresh, what to do with writes shed in
degraded mode (reject vs dead-letter), and an optional default
per-request deadline.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass

from repro.core.errors import ConfigurationError, ReproError
from repro.obs import NULL_TRACER

__all__ = ["AdmissionGate", "Overloaded", "OverloadPolicy", "SHED_MODES"]

#: What happens to a write shed in degraded mode: ``"reject"`` raises
#: :class:`Overloaded` back at the caller; ``"dead_letter"`` accepts
#: the call, records the payload in the dead-letter log for later
#: replay, and returns a shed result.
SHED_MODES: tuple[str, ...] = ("reject", "dead_letter")


class Overloaded(ReproError):
    """The service refused work to protect itself.

    ``retry_after`` is the advisory backoff in seconds (the breaker's
    remaining open window, or the policy's hint for admission
    rejections); clients honouring it re-synchronize with recovery
    instead of retry-storming.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionGate:
    """A bounded in-flight counter with shed accounting.

    ``acquire`` past ``limit`` raises :class:`Overloaded` immediately
    (no queueing — the queue *is* the callers blocked on the service
    lock, and this gate bounds how many of those may exist). Sheds are
    counted as ``{name}.shed`` / ``{name}.shed_admission`` and the
    live depth is published as the ``{name}.pending_writes`` gauge.
    """

    def __init__(
        self,
        limit: int,
        retry_after: float = 0.0,
        tracer=None,
        name: str = "serve",
    ) -> None:
        if not isinstance(limit, int) or limit < 1:
            raise ConfigurationError(
                f"admission limit must be an integer >= 1, got {limit!r}"
            )
        self._limit = limit
        self._retry_after = retry_after
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._name = name
        self._lock = threading.Lock()
        self._inflight = 0

    @property
    def limit(self) -> int:
        return self._limit

    @property
    def depth(self) -> int:
        """Writes currently admitted (queued on the lock + executing)."""
        with self._lock:
            return self._inflight

    def acquire(self) -> None:
        with self._lock:
            if self._inflight >= self._limit:
                self._tracer.counter(f"{self._name}.shed").inc()
                self._tracer.counter(
                    f"{self._name}.shed_admission"
                ).inc()
                raise Overloaded(
                    f"admission queue full ({self._limit} writes in "
                    f"flight); retry after {self._retry_after}s",
                    retry_after=self._retry_after,
                )
            self._inflight += 1
            self._tracer.gauge(f"{self._name}.pending_writes").set(
                float(self._inflight)
            )

    def release(self) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            self._tracer.gauge(f"{self._name}.pending_writes").set(
                float(self._inflight)
            )

    @contextmanager
    def admit(self):
        """``with gate.admit():`` — acquire, run, always release."""
        self.acquire()
        try:
            yield
        finally:
            self.release()


@dataclass(frozen=True)
class OverloadPolicy:
    """The serving layer's overload-protection configuration.

    ``max_pending_writes`` bounds the admission gate;
    ``admission_retry_after`` is the backoff hint on admission
    rejections. ``failure_threshold`` / ``reset_timeout`` parameterize
    the circuit breaker around ingest-side linking and refresh;
    ``shed`` picks the degraded-mode write fate (see
    :data:`SHED_MODES`). ``deadline`` (seconds, optional) is the
    default per-request budget applied when a caller passes none;
    ``clock`` is injected into the breaker and deadline checks
    (``None`` = real monotonic time).
    """

    max_pending_writes: int = 64
    admission_retry_after: float = 0.05
    failure_threshold: int = 3
    reset_timeout: float = 5.0
    shed: str = "reject"
    deadline: float | None = None
    clock: object | None = None

    def __post_init__(self) -> None:
        if (
            not isinstance(self.max_pending_writes, int)
            or self.max_pending_writes < 1
        ):
            raise ConfigurationError(
                f"max_pending_writes must be an integer >= 1, "
                f"got {self.max_pending_writes!r}"
            )
        if (
            not isinstance(self.failure_threshold, int)
            or self.failure_threshold < 1
        ):
            raise ConfigurationError(
                f"failure_threshold must be an integer >= 1, "
                f"got {self.failure_threshold!r}"
            )
        for name in ("admission_retry_after", "reset_timeout"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or not math.isfinite(
                value
            ):
                raise ConfigurationError(
                    f"{name} must be a finite number, got {value!r}"
                )
        if self.admission_retry_after < 0:
            raise ConfigurationError(
                f"admission_retry_after must be >= 0, "
                f"got {self.admission_retry_after!r}"
            )
        if self.reset_timeout <= 0:
            raise ConfigurationError(
                f"reset_timeout must be > 0, got {self.reset_timeout!r}"
            )
        if self.shed not in SHED_MODES:
            raise ConfigurationError(
                f"unknown shed mode {self.shed!r}; "
                f"expected one of {SHED_MODES}"
            )
        if self.deadline is not None and (
            not isinstance(self.deadline, (int, float)) or self.deadline <= 0
        ):
            raise ConfigurationError(
                f"deadline must be > 0, got {self.deadline!r}"
            )
