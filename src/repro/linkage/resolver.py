"""The end-to-end entity-resolution driver.

:func:`resolve` wires the four linkage stages — block, compare,
classify, cluster — over a record collection and returns a
:class:`LinkageResult` carrying the clusters, the match pairs, and the
cost counters the benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Protocol, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.linkage.blocking.base import Blocker
from repro.linkage.clustering import (
    ScoredEdge,
    center_clustering,
    connected_components,
    merge_center_clustering,
)
from repro.linkage.comparison import ComparisonVector, RecordComparator
from repro.linkage.engine import (
    ExecutionMode,
    ParallelComparisonEngine,
    Representation,
)
from repro.obs import NULL_TRACER, observe_block_collection

__all__ = ["MatchClassifier", "LinkageResult", "resolve"]

ClusteringName = Literal["components", "center", "merge-center"]


class MatchClassifier(Protocol):
    """Anything that can turn a comparison vector into a match decision."""

    def is_match(self, vector: ComparisonVector) -> bool: ...


@dataclass(frozen=True)
class LinkageResult:
    """Everything a linkage run produced.

    ``n_candidates`` counts deduplicated candidate pairs (the number of
    comparisons actually executed).
    """

    clusters: list[list[str]]
    match_pairs: set[frozenset[str]]
    n_candidates: int
    scored_edges: list[ScoredEdge] = field(default_factory=list)
    dead_letters: "object | None" = None
    quarantined_pairs: tuple = ()

    @property
    def n_clusters(self) -> int:
        """Number of clusters (entities found)."""
        return len(self.clusters)

    @property
    def n_quarantined(self) -> int:
        """Pairs quarantined by the fault-tolerance layer (0 when off)."""
        return len(self.quarantined_pairs)


def _cluster(clustering, match_pairs, scored_edges, all_ids, tracer):
    """The shared classify-output → clusters step."""
    with tracer.span("linkage.cluster", algorithm=clustering) as span:
        if clustering == "components":
            clusters = connected_components(match_pairs, all_ids)
        elif clustering == "center":
            clusters = center_clustering(scored_edges, all_ids)
        elif clustering == "merge-center":
            clusters = merge_center_clustering(scored_edges, all_ids)
        else:
            raise ConfigurationError(f"unknown clustering {clustering!r}")
        span.set("n_clusters", len(clusters))
    return clusters


def resolve(
    records: Sequence[Record],
    blocker: Blocker,
    comparator: RecordComparator,
    classifier: MatchClassifier,
    clustering: ClusteringName = "components",
    candidate_pairs: set[frozenset[str]] | None = None,
    execution: ExecutionMode = "serial",
    n_workers: int | None = None,
    tracer=None,
    resilience=None,
    checkpoint=None,
    memory_budget=None,
    spill_dir=None,
    representation: Representation = "dict",
    n_shards: int | None = None,
    shard_backend: str = "process",
    supervisor=None,
) -> LinkageResult:
    """Run block → compare → classify → cluster over ``records``.

    ``candidate_pairs`` overrides the blocker's output when provided
    (e.g. pairs surviving meta-blocking) — the blocker is then not run
    at all.

    Comparison goes through the
    :class:`~repro.linkage.engine.ParallelComparisonEngine`: records
    are prepared once, threshold classifiers get staged early-exit
    scoring, and ``execution="process"`` fans the pair batches out
    over ``n_workers`` OS processes — all with output identical to the
    naive per-pair loop.

    ``tracer`` (an :class:`repro.obs.Tracer`, default no-op) records
    one span per stage — blocking (block count and size histogram),
    matching (the engine's own span and counters), clustering — into
    the run report.

    ``resilience`` (a :class:`repro.resilience.ResilienceConfig`,
    default off) makes comparison fault-tolerant: failed chunks are
    retried with backoff and, under ``failure="skip"``, persistent
    failures are quarantined into the result's ``dead_letters`` while
    linkage completes over the surviving pairs.

    ``checkpoint`` (a :class:`repro.recovery.RunStore`, a view of
    one, or a directory path, default off) makes the comparison stage crash-resumable: the
    engine durably saves completed chunk results into the store, and a
    rerun of the same workload against the same store resumes from the
    last completed chunk.

    ``memory_budget`` (estimated bytes, default off) switches to the
    out-of-core path: blocking indexes and candidate pairs spill to
    sorted runs under ``spill_dir`` (a directory path, a
    :class:`repro.recovery.RunStore`/view, or ``None`` for a temporary
    directory) whenever tracked resident bytes would exceed the
    budget, and pairs stream through the engine chunk by chunk. Output
    is byte-identical to the unbounded run; the blocker must have a
    streaming path (``blocker.supports_streaming``). ``records`` may
    then be a mapping (e.g. :class:`repro.outofcore.IndexedRecordStore`)
    instead of a materialized sequence.

    ``representation`` selects the engine's record layout:
    ``"dict"`` (default) scores prepared dict payloads pair by pair;
    ``"columnar"`` packs them into :mod:`repro.columnar` blocks and
    scores whole chunks through the vectorized batch kernels. Output is
    bit-identical either way; it composes with every ``execution``
    mode, resilience, checkpointing, and the out-of-core path.

    ``execution="sharded"`` hash-partitions the whole run across worker
    shards (:mod:`repro.dist.runtime`): entity-sharded blocking,
    per-shard matching workers with their own checkpoint namespaces,
    and union-find boundary reconciliation — with output byte-identical
    to the serial path. ``n_shards`` pins the shard count (``None``
    lets the cluster cost model plan it); ``shard_backend`` selects
    ``"process"`` workers or the ``"inline"`` sequential backend. The
    sharded path composes with everything except ``memory_budget``.

    ``supervisor`` (a :class:`repro.supervision.Supervisor`, sharded
    execution only) adds self-healing: shard workers that die or hang
    are restarted from their own checkpoints under the supervisor's
    restart budget, with output still byte-identical to an unfaulted
    run.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    if supervisor is not None and execution != "sharded":
        raise ConfigurationError(
            "supervisor requires execution='sharded'; other modes have "
            "no shard workers to supervise"
        )
    if execution == "sharded":
        if memory_budget is not None:
            raise ConfigurationError(
                "execution='sharded' does not compose with memory_budget; "
                "shards already bound memory by partitioning"
            )
        from repro.dist.runtime import sharded_resolve

        return sharded_resolve(
            records,
            blocker,
            comparator,
            classifier,
            clustering=clustering,
            candidate_pairs=candidate_pairs,
            n_shards=n_shards,
            backend=shard_backend,
            tracer=tracer,
            resilience=resilience,
            checkpoint=checkpoint,
            spill_dir=spill_dir,
            representation=representation,
            supervisor=supervisor,
        ).result
    if memory_budget is not None:
        return _resolve_streaming(
            records,
            blocker,
            comparator,
            classifier,
            clustering,
            candidate_pairs,
            execution,
            n_workers,
            tracer,
            resilience,
            checkpoint,
            memory_budget,
            spill_dir,
            representation,
        )
    by_id = {record.record_id: record for record in records}
    if candidate_pairs is None:
        with tracer.span("linkage.block", blocker=type(blocker).__name__) as span:
            blocks = blocker.block(records)
            observe_block_collection(tracer, blocks)
            candidate_pairs = blocks.candidate_pairs()
            span.set("n_blocks", len(blocks))
            span.set("n_candidates", len(candidate_pairs))
    ordered_pairs = [
        (pair_ids[0], pair_ids[1])
        for pair_ids in (
            sorted(pair) for pair in sorted(candidate_pairs, key=sorted)
        )
    ]
    engine = ParallelComparisonEngine(
        comparator,
        execution=execution,
        n_workers=n_workers,
        tracer=tracer,
        resilience=resilience,
        checkpoint=checkpoint,
        representation=representation,
    )
    run = engine.match_pairs(by_id, ordered_pairs, classifier)
    match_pairs = run.match_pairs
    scored_edges: list[ScoredEdge] = run.scored_edges
    clusters = _cluster(
        clustering, match_pairs, scored_edges, sorted(by_id), tracer
    )
    return LinkageResult(
        clusters=clusters,
        match_pairs=match_pairs,
        n_candidates=len(candidate_pairs),
        scored_edges=scored_edges,
        dead_letters=run.dead_letters if resilience is not None else None,
        quarantined_pairs=run.quarantined_pairs,
    )


def _resolve_streaming(
    records,
    blocker: Blocker,
    comparator: RecordComparator,
    classifier: MatchClassifier,
    clustering: ClusteringName,
    candidate_pairs,
    execution: ExecutionMode,
    n_workers: int | None,
    tracer,
    resilience,
    checkpoint,
    memory_budget,
    spill_dir,
    representation: Representation = "dict",
) -> LinkageResult:
    """The out-of-core variant of :func:`resolve`.

    Identical stages, bounded resident memory: the blocker streams
    blocks through a spillable index, candidate pairs dedup through an
    external sorted merge (yielding exactly the sorted-unique order the
    in-memory path builds), and the engine consumes the pair stream in
    fixed-size chunks. Spill runs are transient per call; checkpoints,
    when configured, live in the separate ``checkpoint`` store exactly
    as in the in-memory path, so kill-and-resume works mid-spill.
    """
    import tempfile
    from collections.abc import Mapping

    from repro.obs import BLOCK_SIZE_BUCKETS
    from repro.outofcore import (
        ExternalPairDeduper,
        MemoryBudget,
        SpillSession,
    )
    from repro.recovery import RunStore

    budget = (
        memory_budget
        if isinstance(memory_budget, MemoryBudget)
        else MemoryBudget(memory_budget, tracer=tracer)
    )
    temp = None
    if spill_dir is None:
        temp = tempfile.TemporaryDirectory(prefix="repro-spill-")
        store = RunStore(temp.name, durable=False)
    elif hasattr(spill_dir, "save_stream"):
        store = spill_dir
    else:
        store = RunStore(spill_dir, durable=False)
    try:
        by_id = (
            records
            if isinstance(records, Mapping)
            else {record.record_id: record for record in records}
        )
        record_iter = by_id.values()
        if candidate_pairs is not None:
            # Pairs were supplied in memory; stream them in canonical
            # order for the bounded engine path.
            ordered = [
                (pair_ids[0], pair_ids[1])
                for pair_ids in (
                    sorted(pair)
                    for pair in sorted(candidate_pairs, key=sorted)
                )
            ]
            pair_stream = iter(ordered)
            n_candidates = len(ordered)
        else:
            if not blocker.supports_streaming:
                raise ConfigurationError(
                    f"{type(blocker).__name__} has no streaming path; "
                    "out-of-core resolve requires one (or explicit "
                    "candidate_pairs)"
                )
            spill = SpillSession(store.sub("blocks"), budget)
            deduper = ExternalPairDeduper(store.sub("pairs"), budget)
            with tracer.span(
                "linkage.block", blocker=type(blocker).__name__, streaming=True
            ) as span:
                n_blocks = 0
                n_comparisons = 0
                size_histogram = tracer.histogram(
                    "blocking.block_size", BLOCK_SIZE_BUCKETS
                )
                for block in blocker.stream_blocks(record_iter, spill):
                    n_blocks += 1
                    n_comparisons += block.n_comparisons
                    size_histogram.observe(float(len(block)))
                    deduper.add_block(block.record_ids)
                tracer.counter("blocking.blocks_built").inc(n_blocks)
                tracer.counter("blocking.comparisons").inc(n_comparisons)
                span.set("n_blocks", n_blocks)
            pair_stream = deduper.stream()
            n_candidates = None
        engine = ParallelComparisonEngine(
            comparator,
            execution=execution,
            n_workers=n_workers,
            tracer=tracer,
            resilience=resilience,
            checkpoint=checkpoint,
            representation=representation,
        )
        run = engine.match_pairs_stream(
            by_id, pair_stream, classifier, budget=budget
        )
        if n_candidates is None:
            n_candidates = deduper.n_pairs
        clusters = _cluster(
            clustering, run.match_pairs, run.scored_edges, sorted(by_id), tracer
        )
        budget.publish()
        return LinkageResult(
            clusters=clusters,
            match_pairs=run.match_pairs,
            n_candidates=n_candidates,
            scored_edges=run.scored_edges,
            dead_letters=run.dead_letters if resilience is not None else None,
            quarantined_pairs=run.quarantined_pairs,
        )
    finally:
        if temp is not None:
            temp.cleanup()
