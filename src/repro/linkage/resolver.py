"""The end-to-end entity-resolution driver.

:func:`resolve` wires the four linkage stages — block, compare,
classify, cluster — over a record collection and returns a
:class:`LinkageResult` carrying the clusters, the match pairs, and the
cost counters the benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Protocol, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.linkage.blocking.base import Blocker
from repro.linkage.clustering import (
    ScoredEdge,
    center_clustering,
    connected_components,
    merge_center_clustering,
)
from repro.linkage.comparison import ComparisonVector, RecordComparator
from repro.linkage.engine import ExecutionMode, ParallelComparisonEngine

__all__ = ["MatchClassifier", "LinkageResult", "resolve"]

ClusteringName = Literal["components", "center", "merge-center"]


class MatchClassifier(Protocol):
    """Anything that can turn a comparison vector into a match decision."""

    def is_match(self, vector: ComparisonVector) -> bool: ...


@dataclass(frozen=True)
class LinkageResult:
    """Everything a linkage run produced.

    ``n_candidates`` counts deduplicated candidate pairs (the number of
    comparisons actually executed).
    """

    clusters: list[list[str]]
    match_pairs: set[frozenset[str]]
    n_candidates: int
    scored_edges: list[ScoredEdge] = field(default_factory=list)

    @property
    def n_clusters(self) -> int:
        """Number of clusters (entities found)."""
        return len(self.clusters)


def resolve(
    records: Sequence[Record],
    blocker: Blocker,
    comparator: RecordComparator,
    classifier: MatchClassifier,
    clustering: ClusteringName = "components",
    candidate_pairs: set[frozenset[str]] | None = None,
    execution: ExecutionMode = "serial",
    n_workers: int | None = None,
) -> LinkageResult:
    """Run block → compare → classify → cluster over ``records``.

    ``candidate_pairs`` overrides the blocker's output when provided
    (e.g. pairs surviving meta-blocking) — the blocker is then not run
    at all.

    Comparison goes through the
    :class:`~repro.linkage.engine.ParallelComparisonEngine`: records
    are prepared once, threshold classifiers get staged early-exit
    scoring, and ``execution="process"`` fans the pair batches out
    over ``n_workers`` OS processes — all with output identical to the
    naive per-pair loop.
    """
    by_id = {record.record_id: record for record in records}
    if candidate_pairs is None:
        candidate_pairs = blocker.block(records).candidate_pairs()
    ordered_pairs = [
        (pair_ids[0], pair_ids[1])
        for pair_ids in (
            sorted(pair) for pair in sorted(candidate_pairs, key=sorted)
        )
    ]
    engine = ParallelComparisonEngine(
        comparator, execution=execution, n_workers=n_workers
    )
    run = engine.match_pairs(by_id, ordered_pairs, classifier)
    match_pairs = run.match_pairs
    scored_edges: list[ScoredEdge] = run.scored_edges
    all_ids = sorted(by_id)
    if clustering == "components":
        clusters = connected_components(match_pairs, all_ids)
    elif clustering == "center":
        clusters = center_clustering(scored_edges, all_ids)
    elif clustering == "merge-center":
        clusters = merge_center_clustering(scored_edges, all_ids)
    else:
        raise ConfigurationError(f"unknown clustering {clustering!r}")
    return LinkageResult(
        clusters=clusters,
        match_pairs=match_pairs,
        n_candidates=len(candidate_pairs),
        scored_edges=scored_edges,
    )
