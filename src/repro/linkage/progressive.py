"""Progressive (pay-as-you-go) entity resolution.

Batch ER spends its whole comparison budget before emitting anything;
*progressive* ER orders the work so that most matches are found early
— the linkage-side counterpart of pay-as-you-go integration. The
orderings implemented:

* **similarity-first** — rank candidate pairs by a cheap proxy (shared
  blocking-key evidence, as in meta-blocking weights) and compare in
  descending order;
* **block-size-first** — compare small blocks first (small blocks are
  precise: their pairs are likelier matches per comparison);
* **random** — the baseline any progressive strategy must beat.

:func:`progressive_resolution_curve` runs an ordering under a budget
sweep and reports recall-of-matches-found per comparisons spent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import random as _random

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.linkage.blocking.base import BlockCollection
from repro.linkage.classify.threshold import ThresholdClassifier
from repro.linkage.comparison import PreparedRecord, RecordComparator
from repro.linkage.metablocking import build_blocking_graph
from repro.linkage.resolver import MatchClassifier

__all__ = ["ProgressivePoint", "order_candidates", "progressive_resolution_curve"]

OrderingName = Literal["similarity", "block-size", "random"]


def order_candidates(
    blocks: BlockCollection,
    ordering: OrderingName = "similarity",
    seed: int = 0,
) -> list[frozenset[str]]:
    """Order a block collection's candidate pairs for progressive ER."""
    if ordering == "similarity":
        graph = build_blocking_graph(blocks, weight="cbs")
        return [
            edge
            for edge, __ in sorted(
                graph.weights.items(),
                key=lambda kv: (-kv[1], tuple(sorted(kv[0]))),
            )
        ]
    if ordering == "block-size":
        seen: set[frozenset[str]] = set()
        ordered: list[frozenset[str]] = []
        for block in sorted(blocks, key=lambda b: (len(b), b.key)):
            ids = block.record_ids
            for i, left in enumerate(ids):
                for right in ids[i + 1 :]:
                    if left == right:
                        continue
                    pair = frozenset((left, right))
                    if pair not in seen:
                        seen.add(pair)
                        ordered.append(pair)
        return ordered
    if ordering == "random":
        pairs = sorted(blocks.candidate_pairs(), key=sorted)
        rng = _random.Random(seed)
        rng.shuffle(pairs)
        return pairs
    raise ConfigurationError(f"unknown ordering {ordering!r}")


@dataclass(frozen=True)
class ProgressivePoint:
    """One budget checkpoint of a progressive run."""

    comparisons: int
    matches_found: int


def progressive_resolution_curve(
    records: Sequence[Record],
    blocks: BlockCollection,
    comparator: RecordComparator,
    classifier: MatchClassifier,
    ordering: OrderingName = "similarity",
    checkpoints: Sequence[int] = (),
    seed: int = 0,
) -> list[ProgressivePoint]:
    """Matches found vs comparisons spent under one candidate ordering.

    ``checkpoints`` are comparison budgets to report at (defaults to
    deciles of the candidate count). The final checkpoint always covers
    every candidate, so the curve's endpoint equals batch resolution.
    """
    by_id = {record.record_id: record for record in records}
    ordered = order_candidates(blocks, ordering, seed=seed)
    if not checkpoints:
        total = len(ordered)
        checkpoints = sorted(
            {max(1, round(total * decile / 10)) for decile in range(1, 11)}
        )
    checkpoints = sorted(set(checkpoints))
    # Prepared records + decision-only bounded scoring: a progressive
    # run revisits the same records across many pairs and only needs
    # the match decision, so this is the cheapest correct path.
    threshold = (
        classifier.match_threshold
        if isinstance(classifier, ThresholdClassifier)
        else None
    )
    prepared: dict[str, PreparedRecord] = {}

    def prepared_for(record_id: str) -> PreparedRecord | None:
        cached = prepared.get(record_id)
        if cached is None:
            record = by_id.get(record_id)
            if record is None:
                return None
            cached = comparator.prepare(record)
            prepared[record_id] = cached
        return cached

    curve: list[ProgressivePoint] = []
    matches = 0
    next_checkpoint = 0
    for index, pair in enumerate(ordered, start=1):
        left_id, right_id = sorted(pair)
        left, right = prepared_for(left_id), prepared_for(right_id)
        if left is not None and right is not None:
            if threshold is not None:
                is_match = comparator.score_bounded(
                    left, right, threshold, exact_scores=False
                ).is_match
            else:
                is_match = classifier.is_match(
                    comparator.compare_prepared(left, right)
                )
            if is_match:
                matches += 1
        while (
            next_checkpoint < len(checkpoints)
            and index == checkpoints[next_checkpoint]
        ):
            curve.append(ProgressivePoint(index, matches))
            next_checkpoint += 1
    if next_checkpoint < len(checkpoints):
        curve.append(ProgressivePoint(len(ordered), matches))
    return curve
