"""Record clustering: from match pairs to entity clusters.

Pairwise decisions rarely form clean cliques; a clustering step turns
them into a partition. Three standard algorithms:

* **connected components** — transitive closure; maximal recall,
  vulnerable to chaining through one bad edge;
* **center clustering** (Hassanzadeh & Miller) — edges in descending
  score order elect cluster centers; records attach only to centers,
  which prevents chains;
* **merge-center** — center clustering that additionally merges two
  clusters when a strong edge lands on a center, recovering recall
  that center clustering gives up.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.unionfind import UnionFind

__all__ = [
    "ScoredEdge",
    "connected_components",
    "center_clustering",
    "merge_center_clustering",
]

ScoredEdge = tuple[str, str, float]


def _sorted_edges(edges: Iterable[ScoredEdge]) -> list[ScoredEdge]:
    return sorted(edges, key=lambda e: (-e[2], min(e[0], e[1]), max(e[0], e[1])))


def connected_components(
    pairs: Iterable[tuple[str, str]] | Iterable[frozenset[str]],
    all_ids: Iterable[str] = (),
) -> list[list[str]]:
    """Transitive closure of match pairs.

    ``all_ids`` adds unmatched records as singleton clusters so the
    result is a partition of the corpus.
    """
    uf: UnionFind[str] = UnionFind(all_ids)
    for pair in pairs:
        members = tuple(pair)
        if len(members) == 2:
            uf.union(members[0], members[1])
    return uf.groups()


def center_clustering(
    edges: Sequence[ScoredEdge],
    all_ids: Iterable[str] = (),
) -> list[list[str]]:
    """Center clustering over score-sorted edges.

    Processing edges in descending score order: when both endpoints are
    unassigned, the lexicographically smaller becomes a *center* and
    the other its member; an unassigned record attaches to a center it
    shares an edge with; edges between two assigned records (or a
    member and anything) are ignored.
    """
    center_of: dict[str, str] = {}
    is_center: set[str] = set()
    seen: set[str] = set()
    for a, b, __ in _sorted_edges(edges):
        if a == b:
            continue
        seen.update((a, b))
        a_assigned = a in center_of
        b_assigned = b in center_of
        if not a_assigned and not b_assigned:
            center, member = (a, b) if a <= b else (b, a)
            center_of[center] = center
            center_of[member] = center
            is_center.add(center)
        elif a_assigned and not b_assigned:
            if a in is_center:
                center_of[b] = a
        elif b_assigned and not a_assigned:
            if b in is_center:
                center_of[a] = b
        # both assigned → ignored (no chaining).
    clusters: dict[str, list[str]] = {}
    for record, center in center_of.items():
        clusters.setdefault(center, []).append(record)
    # Nodes that only ever touched non-center members stay singletons,
    # as do ids never seen in any edge.
    for record_id in sorted(seen) + sorted(all_ids):
        if record_id not in center_of:
            center_of[record_id] = record_id
            clusters.setdefault(record_id, [record_id])
    groups = [sorted(group) for group in clusters.values()]
    groups.sort(key=lambda group: group[0])
    return groups


def merge_center_clustering(
    edges: Sequence[ScoredEdge],
    all_ids: Iterable[str] = (),
) -> list[list[str]]:
    """Merge-center clustering: center clustering plus center merges.

    Like center clustering, but an edge between records of two
    *different* clusters merges the clusters when at least one endpoint
    is a center — recovering matches that strict center clustering
    drops, while still requiring center-level evidence to merge.
    """
    uf: UnionFind[str] = UnionFind()
    center_of: dict[str, str] = {}
    is_center: set[str] = set()
    for a, b, __ in _sorted_edges(edges):
        if a == b:
            continue
        a_assigned = a in center_of
        b_assigned = b in center_of
        if not a_assigned and not b_assigned:
            center, member = (a, b) if a <= b else (b, a)
            center_of[center] = center
            center_of[member] = center
            is_center.add(center)
            uf.union(center, member)
        elif a_assigned and not b_assigned:
            if a in is_center:
                center_of[b] = a
                uf.union(a, b)
        elif b_assigned and not a_assigned:
            if b in is_center:
                center_of[a] = b
                uf.union(a, b)
        else:
            if (a in is_center or b in is_center) and not uf.connected(a, b):
                uf.union(a, b)
    for record_id in all_ids:
        uf.add(record_id)
    return uf.groups()
