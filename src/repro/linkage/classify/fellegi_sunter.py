"""Fellegi-Sunter probabilistic linkage with EM parameter estimation.

The classical model: each compared pair yields a binary agreement
pattern γ over the comparison fields; matches produce agreement on
field *i* with probability ``m_i``, non-matches with probability
``u_i``. The match weight of a pattern is the log-likelihood ratio

    w(γ) = Σ_i  γ_i · log(m_i / u_i)  +  (1 - γ_i) · log((1-m_i)/(1-u_i))

and pairs are classified by thresholding w. When labeled pairs are
unavailable, ``m``, ``u`` and the match prevalence ``p`` are estimated
by expectation-maximization over the observed patterns (Winkler's
standard unsupervised recipe), assuming conditional independence of
fields.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ConfigurationError, EmptyInputError
from repro.linkage.classify.threshold import MatchDecision
from repro.linkage.comparison import ComparisonVector
from repro.obs import NULL_TRACER

__all__ = ["FellegiSunterModel", "fit_fellegi_sunter"]

_EPSILON = 1e-6


def _clamp(value: float) -> float:
    return min(1.0 - _EPSILON, max(_EPSILON, value))


@dataclass
class FellegiSunterModel:
    """A fitted Fellegi-Sunter model.

    Attributes
    ----------
    m, u:
        Per-field agreement probabilities among matches / non-matches.
    prevalence:
        Estimated fraction of compared pairs that are matches.
    agreement_threshold:
        Similarity level at which a field counts as agreeing.
    upper_weight, lower_weight:
        Decision thresholds on the match weight: ≥ upper → match,
        < lower → non-match, in between → possible.
    """

    m: tuple[float, ...]
    u: tuple[float, ...]
    prevalence: float
    agreement_threshold: float = 0.85
    upper_weight: float = 0.0
    lower_weight: float = 0.0

    name = "fellegi-sunter"

    def __post_init__(self) -> None:
        if len(self.m) != len(self.u):
            raise ConfigurationError("m and u must have equal length")
        if self.lower_weight > self.upper_weight:
            raise ConfigurationError(
                "lower_weight must not exceed upper_weight"
            )

    def pattern_weight(self, pattern: Sequence[bool]) -> float:
        """Log-likelihood-ratio weight of an agreement pattern."""
        if len(pattern) != len(self.m):
            raise ConfigurationError(
                f"pattern has {len(pattern)} fields, model has {len(self.m)}"
            )
        weight = 0.0
        for agrees, m_i, u_i in zip(pattern, self.m, self.u):
            m_i, u_i = _clamp(m_i), _clamp(u_i)
            if agrees:
                weight += math.log(m_i / u_i)
            else:
                weight += math.log((1.0 - m_i) / (1.0 - u_i))
        return weight

    def weight(self, vector: ComparisonVector) -> float:
        """Match weight of a comparison vector."""
        return self.pattern_weight(
            vector.agreement_pattern(self.agreement_threshold)
        )

    def match_probability(self, vector: ComparisonVector) -> float:
        """Posterior P(match | pattern) under the fitted model."""
        weight = self.weight(vector)
        prior_odds = _clamp(self.prevalence) / (1.0 - _clamp(self.prevalence))
        odds = prior_odds * math.exp(weight)
        return odds / (1.0 + odds)

    def classify(self, vector: ComparisonVector) -> str:
        """Three-way Fellegi-Sunter decision."""
        weight = self.weight(vector)
        if weight >= self.upper_weight:
            return MatchDecision.MATCH
        if weight < self.lower_weight:
            return MatchDecision.NON_MATCH
        return MatchDecision.POSSIBLE

    def is_match(self, vector: ComparisonVector) -> bool:
        """True iff the decision is MATCH."""
        return self.classify(vector) == MatchDecision.MATCH


def fit_fellegi_sunter(
    vectors: Sequence[ComparisonVector],
    agreement_threshold: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    initial_prevalence: float = 0.1,
    tracer=None,
    checkpoint=None,
) -> FellegiSunterModel:
    """Fit m/u/prevalence by EM over unlabeled comparison vectors.

    Patterns are aggregated (EM runs over distinct patterns weighted by
    count), so fitting is fast even on large candidate sets. Decision
    thresholds are initialized to the weight at posterior 0.5
    (``upper = lower``); callers wanting a review band can widen them.

    ``tracer`` (an :class:`repro.obs.Tracer`, default no-op) records an
    EM span carrying the per-iteration parameter-change deltas.

    ``checkpoint`` (a :class:`repro.recovery.RunStore` or a view of
    one, default off) durably saves the EM state after every iteration;
    a rerun over the same patterns with the same parameters resumes
    mid-convergence with a fit identical to an uninterrupted run.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    if not vectors:
        raise EmptyInputError("cannot fit Fellegi-Sunter on no vectors")
    n_fields = len(vectors[0].similarities)
    patterns: Counter[tuple[bool, ...]] = Counter(
        v.agreement_pattern(agreement_threshold) for v in vectors
    )
    if any(len(p) != n_fields for p in patterns):
        raise ConfigurationError("inconsistent vector lengths")

    # Initialization: matches agree often, non-matches rarely.
    m = [0.9] * n_fields
    u = [0.1] * n_fields
    prevalence = initial_prevalence
    deltas: list[float] = []
    signature = None
    if checkpoint is not None:
        from repro.recovery import config_fingerprint

        signature = config_fingerprint(
            sorted(patterns.items()),
            agreement_threshold,
            max_iterations,
            tolerance,
            initial_prevalence,
        )
        state = checkpoint.load("state")
        if state is not None and state.get("signature") == signature:
            m = list(state["m"])
            u = list(state["u"])
            prevalence = state["prevalence"]
            deltas = list(state["deltas"])
            tracer.counter("recovery.iterations_skipped").inc(len(deltas))

    with tracer.span(
        "classify.fellegi_sunter_em",
        n_vectors=len(vectors),
        n_patterns=len(patterns),
        max_iterations=max_iterations,
        resumed_at=len(deltas),
    ) as span:
        converged = bool(deltas) and deltas[-1] < tolerance
        for __ in () if converged else range(len(deltas), max_iterations):
            # E-step: responsibility of the match class for each pattern.
            responsibilities: dict[tuple[bool, ...], float] = {}
            for pattern in patterns:
                likelihood_match = prevalence
                likelihood_non = 1.0 - prevalence
                for agrees, m_i, u_i in zip(pattern, m, u):
                    likelihood_match *= m_i if agrees else (1.0 - m_i)
                    likelihood_non *= u_i if agrees else (1.0 - u_i)
                total = likelihood_match + likelihood_non
                responsibilities[pattern] = (
                    likelihood_match / total if total > 0 else 0.5
                )
            # M-step.
            total_pairs = sum(patterns.values())
            expected_matches = sum(
                responsibilities[p] * count for p, count in patterns.items()
            )
            expected_non = total_pairs - expected_matches
            new_prevalence = _clamp(expected_matches / total_pairs)
            new_m: list[float] = []
            new_u: list[float] = []
            for index in range(n_fields):
                agree_match = sum(
                    responsibilities[p] * count
                    for p, count in patterns.items()
                    if p[index]
                )
                agree_non = sum(
                    (1.0 - responsibilities[p]) * count
                    for p, count in patterns.items()
                    if p[index]
                )
                new_m.append(
                    _clamp(agree_match / expected_matches)
                    if expected_matches > 0
                    else 0.5
                )
                new_u.append(
                    _clamp(agree_non / expected_non)
                    if expected_non > 0
                    else 0.5
                )
            delta = (
                abs(new_prevalence - prevalence)
                + sum(abs(a - b) for a, b in zip(new_m, m))
                + sum(abs(a - b) for a, b in zip(new_u, u))
            )
            deltas.append(delta)
            m, u, prevalence = new_m, new_u, new_prevalence
            if checkpoint is not None:
                checkpoint.save(
                    "state",
                    {
                        "signature": signature,
                        "m": m,
                        "u": u,
                        "prevalence": prevalence,
                        "deltas": deltas,
                    },
                )
            if delta < tolerance:
                break
        span.set("iterations", len(deltas))
        span.set("converged", bool(deltas) and deltas[-1] < tolerance)
        span.set("deltas", [round(delta, 10) for delta in deltas])
    tracer.counter("classify.em_iterations").inc(len(deltas))

    # EM's two components are label-symmetric; orient so the "match"
    # component is the one agreeing more (standard identifiability fix).
    if sum(m) < sum(u):
        m, u = u, m
        prevalence = 1.0 - prevalence

    # Threshold at posterior 0.5: w >= -log(prior odds).
    prior_odds = _clamp(prevalence) / (1.0 - _clamp(prevalence))
    decision_weight = -math.log(prior_odds)
    return FellegiSunterModel(
        m=tuple(m),
        u=tuple(u),
        prevalence=prevalence,
        agreement_threshold=agreement_threshold,
        upper_weight=decision_weight,
        lower_weight=decision_weight,
    )
