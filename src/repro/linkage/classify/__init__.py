"""Match classifiers: threshold, rule-based, Fellegi-Sunter (EM)."""

from repro.linkage.classify.fellegi_sunter import (
    FellegiSunterModel,
    fit_fellegi_sunter,
)
from repro.linkage.classify.rules import (
    MatchRule,
    RuleBasedClassifier,
    rule_for,
)
from repro.linkage.classify.threshold import MatchDecision, ThresholdClassifier

__all__ = [
    "FellegiSunterModel",
    "MatchDecision",
    "MatchRule",
    "RuleBasedClassifier",
    "ThresholdClassifier",
    "fit_fellegi_sunter",
    "rule_for",
]
