"""Threshold match classifier: the simplest decision rule."""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.linkage.comparison import ComparisonVector

__all__ = ["MatchDecision", "ThresholdClassifier"]


class MatchDecision:
    """Tri-state decision constants shared by all classifiers."""

    MATCH = "match"
    NON_MATCH = "non-match"
    POSSIBLE = "possible"


class ThresholdClassifier:
    """Match iff the aggregate score reaches ``match_threshold``.

    With ``review_threshold`` set below it, scores in between yield
    :data:`MatchDecision.POSSIBLE` — the clerical-review band of the
    classical linkage model.
    """

    name = "threshold"

    def __init__(
        self,
        match_threshold: float = 0.85,
        review_threshold: float | None = None,
    ) -> None:
        if not 0.0 <= match_threshold <= 1.0:
            raise ConfigurationError("match_threshold must be in [0, 1]")
        if review_threshold is not None and not (
            0.0 <= review_threshold <= match_threshold
        ):
            raise ConfigurationError(
                "review_threshold must be in [0, match_threshold]"
            )
        self._match_threshold = match_threshold
        self._review_threshold = review_threshold

    @property
    def match_threshold(self) -> float:
        """The score at or above which a pair is a match."""
        return self._match_threshold

    def classify(self, vector: ComparisonVector) -> str:
        """Decide one pair."""
        if vector.score >= self._match_threshold:
            return MatchDecision.MATCH
        if (
            self._review_threshold is not None
            and vector.score >= self._review_threshold
        ):
            return MatchDecision.POSSIBLE
        return MatchDecision.NON_MATCH

    def is_match(self, vector: ComparisonVector) -> bool:
        """True iff the pair is classified a match."""
        return self.classify(vector) == MatchDecision.MATCH
