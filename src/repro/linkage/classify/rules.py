"""Rule-based match classification.

A :class:`MatchRule` is a conjunction of per-field minimum similarities
(by field index in the comparator's vector); a
:class:`RuleBasedClassifier` declares a match when *any* rule fires —
disjunctive normal form, the way hand-written linkage rules are
actually expressed ("same identifier, OR name ≥ .9 and brand ≥ .9").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.linkage.classify.threshold import MatchDecision
from repro.linkage.comparison import ComparisonVector, RecordComparator

__all__ = ["MatchRule", "RuleBasedClassifier", "rule_for"]


@dataclass(frozen=True)
class MatchRule:
    """Conjunction of (field index → minimum similarity) requirements."""

    requirements: Mapping[int, float]
    label: str = "rule"

    def __post_init__(self) -> None:
        if not self.requirements:
            raise ConfigurationError("a rule needs at least one requirement")
        for index, minimum in self.requirements.items():
            if index < 0:
                raise ConfigurationError("field indices must be >= 0")
            if not 0.0 <= minimum <= 1.0:
                raise ConfigurationError("minimum similarities in [0, 1]")

    def fires(self, vector: ComparisonVector) -> bool:
        """True iff every required field is present and similar enough."""
        for index, minimum in self.requirements.items():
            if index >= len(vector.similarities):
                return False
            similarity = vector.similarities[index]
            if similarity is None or similarity < minimum:
                return False
        return True


def rule_for(
    comparator: RecordComparator,
    label: str = "rule",
    **attribute_minimums: float,
) -> MatchRule:
    """Build a rule by attribute *name* against a comparator's fields.

    >>> rule = rule_for(comparator, name=0.9, brand=0.9)  # doctest: +SKIP
    """
    index_of = {
        field.attribute.replace(" ", "_"): index
        for index, field in enumerate(comparator.fields)
    }
    requirements: dict[int, float] = {}
    for attribute, minimum in attribute_minimums.items():
        if attribute not in index_of:
            raise ConfigurationError(
                f"comparator has no field {attribute!r}; "
                f"available: {sorted(index_of)}"
            )
        requirements[index_of[attribute]] = minimum
    return MatchRule(requirements, label=label)


class RuleBasedClassifier:
    """Match when any rule fires (disjunction of conjunctions)."""

    name = "rules"

    def __init__(self, rules: Sequence[MatchRule]) -> None:
        if not rules:
            raise ConfigurationError("at least one rule is required")
        self._rules = tuple(rules)

    @property
    def rules(self) -> tuple[MatchRule, ...]:
        """The rules, in priority order."""
        return self._rules

    def classify(self, vector: ComparisonVector) -> str:
        """MATCH iff some rule fires, else NON_MATCH."""
        if any(rule.fires(vector) for rule in self._rules):
            return MatchDecision.MATCH
        return MatchDecision.NON_MATCH

    def is_match(self, vector: ComparisonVector) -> bool:
        """True iff some rule fires."""
        return self.classify(vector) == MatchDecision.MATCH

    def firing_rule(self, vector: ComparisonVector) -> MatchRule | None:
        """The first rule that fires, for explainability."""
        for rule in self._rules:
            if rule.fires(vector):
                return rule
        return None
