"""Active learning for match classification (humans in the loop).

Labels are the scarce resource in linkage: a domain expert (or crowd
worker) can judge a few hundred pairs, not a few million. Active
learning spends that budget where it matters — on the pairs the
current classifier is *least sure about* (scores nearest the decision
boundary), rather than on uniformly sampled pairs that are mostly
obvious non-matches.

:class:`ActiveThresholdLearner` learns a score threshold over a fixed
comparator: each round it queries the oracle on the most uncertain
unlabeled pairs, then re-fits the threshold to minimize labeled error.
An optional oracle noise rate models imperfect crowd answers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.errors import ConfigurationError, EmptyInputError
from repro.linkage.comparison import ComparisonVector

__all__ = ["LabeledPair", "ActiveThresholdLearner", "noisy_oracle"]

Oracle = Callable[[str, str], bool]


@dataclass(frozen=True)
class LabeledPair:
    """One oracle-labeled pair."""

    left_id: str
    right_id: str
    score: float
    is_match: bool


def noisy_oracle(
    truth: Oracle, noise_rate: float, seed: int = 0
) -> Oracle:
    """Wrap a perfect oracle with symmetric label noise.

    Models crowd workers: with probability ``noise_rate`` the answer
    flips. Deterministic per (pair, seed) so repeated queries agree.
    """
    if not 0.0 <= noise_rate < 0.5:
        raise ConfigurationError("noise_rate must be in [0, 0.5)")

    def oracle(left_id: str, right_id: str) -> bool:
        answer = truth(left_id, right_id)
        key = hash((min(left_id, right_id), max(left_id, right_id), seed))
        rng = random.Random(key)
        if rng.random() < noise_rate:
            return not answer
        return answer

    return oracle


class ActiveThresholdLearner:
    """Threshold learning with uncertainty-sampled oracle queries.

    Parameters
    ----------
    vectors:
        The comparison vectors of all candidate pairs (computed once by
        the caller; scores are what the learner consumes).
    batch_size:
        Oracle queries per round.
    strategy:
        ``"uncertainty"`` queries the unlabeled pairs whose score is
        nearest the current threshold (with an ``exploration`` fraction
        of random picks mixed in — pure boundary sampling is unstable
        under label noise); ``"random"`` is the baseline.
    exploration:
        Fraction of each uncertainty batch drawn at random.
    seed:
        Randomness for the random strategy, exploration, tie-breaking.
    """

    def __init__(
        self,
        vectors: Sequence[ComparisonVector],
        batch_size: int = 10,
        strategy: str = "uncertainty",
        initial_threshold: float = 0.5,
        exploration: float = 0.25,
        seed: int = 0,
    ) -> None:
        if not vectors:
            raise EmptyInputError("active learning needs candidate vectors")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if strategy not in ("uncertainty", "random"):
            raise ConfigurationError(f"unknown strategy {strategy!r}")
        if not 0.0 <= exploration <= 1.0:
            raise ConfigurationError("exploration must be in [0, 1]")
        self._vectors = list(vectors)
        self._batch_size = batch_size
        self._strategy = strategy
        self._threshold = initial_threshold
        self._exploration = exploration
        self._rng = random.Random(seed)
        self._labeled: list[LabeledPair] = []
        self._labeled_keys: set[frozenset[str]] = set()

    @property
    def threshold(self) -> float:
        """The current learned decision threshold."""
        return self._threshold

    @property
    def labeled(self) -> tuple[LabeledPair, ...]:
        """All labels gathered so far."""
        return tuple(self._labeled)

    def _unlabeled(self) -> list[ComparisonVector]:
        return [
            vector
            for vector in self._vectors
            if frozenset((vector.left_id, vector.right_id))
            not in self._labeled_keys
        ]

    def _pick_batch(self) -> list[ComparisonVector]:
        unlabeled = self._unlabeled()
        if not unlabeled:
            return []
        if self._strategy == "random":
            self._rng.shuffle(unlabeled)
            return unlabeled[: self._batch_size]
        n_random = round(self._batch_size * self._exploration)
        n_boundary = self._batch_size - n_random
        unlabeled.sort(
            key=lambda vector: (
                abs(vector.score - self._threshold),
                vector.left_id,
                vector.right_id,
            )
        )
        batch = unlabeled[:n_boundary]
        rest = unlabeled[n_boundary:]
        self._rng.shuffle(rest)
        batch.extend(rest[:n_random])
        return batch

    def _refit_threshold(self) -> None:
        """Fit a 1-D logistic model score → P(match); threshold at 0.5.

        Logistic regression degrades gracefully under label noise where
        exact zero-one-error minimization jumps between extreme cuts.
        A handful of Newton-ish gradient steps is plenty in 1-D.
        """
        if not self._labeled:
            return
        labels = [1.0 if pair.is_match else 0.0 for pair in self._labeled]
        scores = [pair.score for pair in self._labeled]
        if len(set(labels)) < 2:
            # One-class evidence: nudge the threshold past everything
            # seen, in the direction the labels imply.
            extreme = max(scores) if labels[0] == 0.0 else min(scores)
            margin = 0.02
            self._threshold = min(
                1.0,
                max(0.0, extreme + margin if labels[0] == 0.0 else extreme - margin),
            )
            return
        import math

        weight, bias = 8.0, -8.0 * self._threshold  # warm start
        learning_rate = 2.0
        for __ in range(300):
            gradient_w = 0.0
            gradient_b = 0.0
            for score, label in zip(scores, labels):
                predicted = 1.0 / (1.0 + math.exp(-(weight * score + bias)))
                gradient_w += (predicted - label) * score
                gradient_b += predicted - label
            n = len(scores)
            weight -= learning_rate * gradient_w / n
            bias -= learning_rate * gradient_b / n
        if weight <= 0:
            return  # degenerate fit; keep the previous threshold
        self._threshold = min(1.0, max(0.0, -bias / weight))

    def run_round(self, oracle: Oracle) -> int:
        """Query one batch and refit; returns queries actually spent."""
        batch = self._pick_batch()
        for vector in batch:
            is_match = oracle(vector.left_id, vector.right_id)
            self._labeled.append(
                LabeledPair(
                    vector.left_id, vector.right_id, vector.score, is_match
                )
            )
            self._labeled_keys.add(
                frozenset((vector.left_id, vector.right_id))
            )
        self._refit_threshold()
        return len(batch)

    def predict_matches(self) -> set[frozenset[str]]:
        """All candidate pairs at/above the learned threshold."""
        return {
            frozenset((vector.left_id, vector.right_id))
            for vector in self._vectors
            if vector.score >= self._threshold
        }
