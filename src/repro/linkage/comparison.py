"""Record-pair comparison: feature vectors and weighted scores.

A :class:`RecordComparator` holds a list of :class:`FieldComparator`
rules — which attribute to compare, with which similarity function, at
what weight. Comparing a pair yields a :class:`ComparisonVector` (one
similarity per field, ``None`` where either side lacks the field) and a
weighted aggregate score over the *present* fields.

Records from heterogeneous sources should be compared after mediated-
schema translation; pass ``translate`` to apply a
:class:`~repro.schema.mediated.MediatedSchema` on the fly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Mapping, NamedTuple, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.text.normalize import normalize_value, parse_measurement
from repro.text.similarity import (
    cosine_similarity,
    dice_similarity,
    exact_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    measurement_similarity,
    monge_elkan_similarity,
    monge_elkan_tokens,
    numeric_similarity,
    overlap_coefficient,
    product_name_similarity,
    product_name_similarity_tokens,
)
from repro.text.tokens import word_token_tuple

__all__ = [
    "BOUND_MARGIN",
    "FieldComparator",
    "ComparisonVector",
    "PreparedRecord",
    "BoundedComparison",
    "RecordComparator",
    "default_product_comparator",
    "similarity_spec",
]

#: Safety margin keeping early exits sound under float rounding: bounds
#: within this distance of the threshold never trigger an exit — the
#: pair is simply evaluated in full. Shared by the staged scalar scorer
#: and the columnar batch kernels so both reject identically.
BOUND_MARGIN = 1e-9

Translator = Callable[[Record], Mapping[str, str]]


def _raw_attributes(record: Record) -> Mapping[str, str]:
    """Default translator (module-level so comparators pickle)."""
    return record.attributes


# --- prepared-input fast path ---------------------------------------
#
# A similarity function is *preparable* when the per-value work it does
# (normalizing, tokenizing, parsing measurements) can be hoisted out of
# the pair loop. Each known similarity gets a spec: a relative cost
# rank (drives the staged early-exit evaluation order), a per-value
# ``prepare`` producing an immutable payload, and a payload-level
# ``similarity`` that is arithmetic-identical to the string-level
# function. Unknown similarity callables fall back to a generic spec
# that passes the (cached-normalized) strings straight through.


class _SimilaritySpec(NamedTuple):
    cost: int
    prepare: Callable[[str], Any]
    similarity: Callable[[Any, Any], float]


def _identity_payload(value: str) -> str:
    return value


def _prepare_token_set(value: str) -> frozenset[str]:
    return frozenset(word_token_tuple(value))


def _prepare_token_counts(value: str) -> Counter[str]:
    return Counter(word_token_tuple(value))


def _prepare_measurement(value: str) -> tuple[Any, str]:
    measurement = parse_measurement(value)
    base = measurement.in_base_unit() if measurement is not None else None
    return (base, value)


def _measurement_payload_similarity(
    a: tuple[Any, str], b: tuple[Any, str]
) -> float:
    base_a, text_a = a
    base_b, text_b = b
    if base_a is None or base_b is None:
        return levenshtein_similarity(
            text_a.lower().strip(), text_b.lower().strip()
        )
    if base_a.unit != base_b.unit:
        return 0.0
    return numeric_similarity(base_a.value, base_b.value, tolerance=0.05)


def _prepare_product_name(value: str) -> tuple[tuple[str, ...], frozenset[str]]:
    tokens = word_token_tuple(value)
    numbers = frozenset(
        token for token in tokens
        if any(character.isdigit() for character in token)
    )
    return (tokens, numbers)


def _product_name_payload_similarity(
    a: tuple[tuple[str, ...], frozenset[str]],
    b: tuple[tuple[str, ...], frozenset[str]],
) -> float:
    return product_name_similarity_tokens(a[0], a[1], b[0], b[1])


def _monge_elkan_payload_similarity(
    a: tuple[tuple[str, ...], frozenset[str]],
    b: tuple[tuple[str, ...], frozenset[str]],
) -> float:
    return monge_elkan_tokens(a[0], b[0])


#: Specs for the similarity functions the library ships. Costs are
#: relative ranks, cheap → expensive; they only drive evaluation order.
_SIMILARITY_SPECS: dict[Callable[..., float], _SimilaritySpec] = {
    exact_similarity: _SimilaritySpec(0, _identity_payload, exact_similarity),
    measurement_similarity: _SimilaritySpec(
        1, _prepare_measurement, _measurement_payload_similarity
    ),
    jaccard_similarity: _SimilaritySpec(
        2, _prepare_token_set, jaccard_similarity
    ),
    dice_similarity: _SimilaritySpec(2, _prepare_token_set, dice_similarity),
    overlap_coefficient: _SimilaritySpec(
        2, _prepare_token_set, overlap_coefficient
    ),
    cosine_similarity: _SimilaritySpec(
        3, _prepare_token_counts, cosine_similarity
    ),
    jaro_similarity: _SimilaritySpec(4, _identity_payload, jaro_similarity),
    jaro_winkler_similarity: _SimilaritySpec(
        4, _identity_payload, jaro_winkler_similarity
    ),
    levenshtein_similarity: _SimilaritySpec(
        5, _identity_payload, levenshtein_similarity
    ),
    monge_elkan_similarity: _SimilaritySpec(
        9, _prepare_product_name, _monge_elkan_payload_similarity
    ),
    product_name_similarity: _SimilaritySpec(
        10, _prepare_product_name, _product_name_payload_similarity
    ),
}

#: Cost rank assumed for similarity callables not in the registry.
_UNKNOWN_COST = 8


def _spec_for(similarity: Callable[..., float]) -> _SimilaritySpec:
    spec = _SIMILARITY_SPECS.get(similarity)
    if spec is not None:
        return spec
    return _SimilaritySpec(_UNKNOWN_COST, _identity_payload, similarity)


def similarity_spec(similarity: Callable[..., float]) -> _SimilaritySpec:
    """The ``(cost, prepare, similarity)`` spec for a similarity callable.

    Public accessor for consumers outside the pair loop (the columnar
    block builder keys its column kinds off the same registry the
    prepared fast path uses, so the two representations can never
    disagree about what a field's payload is).
    """
    return _spec_for(similarity)


@dataclass(frozen=True)
class PreparedRecord:
    """A record with all per-value comparison work done once.

    ``payloads`` holds one entry per :class:`FieldComparator` of the
    comparator that prepared it (``None`` where the field is missing):
    the normalized value, token tuple, parsed measurement, … whatever
    that field's similarity consumes. Prepared records are immutable
    and are only meaningful to the comparator that produced them —
    records must not change after preparation (library records are
    immutable by construction).
    """

    record_id: str
    payloads: tuple[Any, ...]


@dataclass(frozen=True)
class FieldComparator:
    """One comparison rule: attribute, similarity function, weight.

    ``aliases`` are fallback attribute names tried (in order) when the
    primary name is absent — the pragmatic answer to heterogeneous
    schemas when records are compared without prior schema translation.
    """

    attribute: str
    similarity: Callable[[str, str], float]
    weight: float = 1.0
    normalize: bool = True
    aliases: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError("field weight must be positive")

    def _lookup(self, attributes: Mapping[str, str]) -> str | None:
        value = attributes.get(self.attribute)
        if value is not None:
            return value
        for alias in self.aliases:
            value = attributes.get(alias)
            if value is not None:
                return value
        return None

    def compare(
        self, left: Mapping[str, str], right: Mapping[str, str]
    ) -> float | None:
        """Similarity of this field, or ``None`` when either is missing."""
        value_left = self._lookup(left)
        value_right = self._lookup(right)
        if value_left is None or value_right is None:
            return None
        if self.normalize:
            value_left = normalize_value(value_left)
            value_right = normalize_value(value_right)
        return self.similarity(value_left, value_right)

    @property
    def cost(self) -> int:
        """Relative cost rank of this field's similarity (cheap → expensive)."""
        return _spec_for(self.similarity).cost

    def prepare(self, attributes: Mapping[str, str]) -> Any | None:
        """Hoist this field's per-value work out of the pair loop.

        Returns the payload :meth:`compare_payloads` consumes, or
        ``None`` when the field is missing from ``attributes``.
        """
        value = self._lookup(attributes)
        if value is None:
            return None
        if self.normalize:
            value = normalize_value(value)
        return _spec_for(self.similarity).prepare(value)

    def compare_payloads(self, left: Any | None, right: Any | None) -> float | None:
        """Similarity from prepared payloads; ``None`` when either is missing.

        Arithmetic-identical to :meth:`compare` on the values the
        payloads were prepared from.
        """
        if left is None or right is None:
            return None
        return _spec_for(self.similarity).similarity(left, right)


@dataclass(frozen=True)
class ComparisonVector:
    """Per-field similarities plus the aggregate score of one pair."""

    left_id: str
    right_id: str
    similarities: tuple[float | None, ...]
    score: float

    def agreement_pattern(self, threshold: float = 0.85) -> tuple[bool, ...]:
        """Binary agreement vector (missing counts as disagreement).

        This is the representation Fellegi-Sunter's EM consumes.
        """
        return tuple(
            s is not None and s >= threshold for s in self.similarities
        )


@dataclass(frozen=True)
class BoundedComparison:
    """Outcome of a threshold-bounded (early-exit) pair comparison.

    When the staged evaluation proved the decision before computing
    every field, ``exact`` is ``False`` and ``score`` is the bound that
    proved it (an upper bound for rejections, a lower bound for
    early accepts); ``vector`` is then ``None``. When every present
    field was evaluated, ``score`` and ``vector`` are byte-identical to
    :meth:`RecordComparator.compare` output.
    """

    left_id: str
    right_id: str
    is_match: bool
    score: float
    exact: bool
    n_evaluated: int
    vector: ComparisonVector | None = None


class RecordComparator:
    """Compares record pairs field by field.

    Parameters
    ----------
    fields:
        The comparison rules.
    translate:
        Optional record → attribute-mapping translator applied before
        field lookup (e.g. ``schema.translate``). Defaults to the raw
        attribute mapping.
    missing_penalty:
        Score contribution assumed for fields missing on either side,
        in ``[0, 1]``; the default ``None`` simply excludes missing
        fields from the weighted average.
    """

    def __init__(
        self,
        fields: Sequence[FieldComparator],
        translate: Translator | None = None,
        missing_penalty: float | None = None,
    ) -> None:
        if not fields:
            raise ConfigurationError("at least one field comparator needed")
        if missing_penalty is not None and not 0 <= missing_penalty <= 1:
            raise ConfigurationError("missing_penalty must be in [0, 1]")
        self._fields = tuple(fields)
        self._translate = translate or _raw_attributes
        self._missing_penalty = missing_penalty
        self._specs = tuple(_spec_for(field.similarity) for field in self._fields)
        # Field indices cheap-to-expensive: the staged evaluation order
        # of score_bounded (ties broken by declaration order).
        self._staged_order = tuple(
            sorted(
                range(len(self._fields)),
                key=lambda index: (self._specs[index].cost, index),
            )
        )

    @property
    def fields(self) -> tuple[FieldComparator, ...]:
        """The comparison rules."""
        return self._fields

    @property
    def missing_penalty(self) -> float | None:
        """Score contribution assumed for missing fields (None = excluded)."""
        return self._missing_penalty

    @property
    def staged_order(self) -> tuple[int, ...]:
        """Field indices cheap-to-expensive (the early-exit evaluation order)."""
        return self._staged_order

    def compare(self, left: Record, right: Record) -> ComparisonVector:
        """Compare one pair, returning its vector and aggregate score."""
        left_attributes = self._translate(left)
        right_attributes = self._translate(right)
        similarities: list[float | None] = []
        weighted = 0.0
        total_weight = 0.0
        for field in self._fields:
            similarity = field.compare(left_attributes, right_attributes)
            similarities.append(similarity)
            if similarity is None:
                if self._missing_penalty is not None:
                    weighted += field.weight * self._missing_penalty
                    total_weight += field.weight
                continue
            weighted += field.weight * similarity
            total_weight += field.weight
        score = weighted / total_weight if total_weight else 0.0
        return ComparisonVector(
            left_id=left.record_id,
            right_id=right.record_id,
            similarities=tuple(similarities),
            score=score,
        )

    def score(self, left: Record, right: Record) -> float:
        """Aggregate score only (convenience)."""
        return self.compare(left, right).score

    # --- prepared fast path ------------------------------------------

    def prepare(self, record: Record) -> PreparedRecord:
        """Normalize/tokenize/parse a record once, for many comparisons.

        The returned :class:`PreparedRecord` is only valid with *this*
        comparator (payloads line up with its fields) and assumes the
        record does not change afterwards.
        """
        attributes = self._translate(record)
        return PreparedRecord(
            record_id=record.record_id,
            payloads=tuple(
                field.prepare(attributes) for field in self._fields
            ),
        )

    def compare_prepared(
        self, left: PreparedRecord, right: PreparedRecord
    ) -> ComparisonVector:
        """:meth:`compare` over prepared records — identical output,
        pure similarity arithmetic per pair."""
        similarities: list[float | None] = []
        weighted = 0.0
        total_weight = 0.0
        for field, spec, payload_left, payload_right in zip(
            self._fields, self._specs, left.payloads, right.payloads
        ):
            if payload_left is None or payload_right is None:
                similarities.append(None)
                if self._missing_penalty is not None:
                    weighted += field.weight * self._missing_penalty
                    total_weight += field.weight
                continue
            similarity = spec.similarity(payload_left, payload_right)
            similarities.append(similarity)
            weighted += field.weight * similarity
            total_weight += field.weight
        score = weighted / total_weight if total_weight else 0.0
        return ComparisonVector(
            left_id=left.record_id,
            right_id=right.record_id,
            similarities=tuple(similarities),
            score=score,
        )

    #: See the module-level :data:`BOUND_MARGIN`.
    _BOUND_MARGIN = BOUND_MARGIN

    def score_bounded(
        self,
        left: Record | PreparedRecord,
        right: Record | PreparedRecord,
        threshold: float,
        exact_scores: bool = True,
    ) -> BoundedComparison:
        """Staged comparison with early exit against ``threshold``.

        Fields are evaluated cheap-to-expensive while tracking the best
        and worst achievable final score; as soon as the pair provably
        cannot reach the threshold, the expensive remaining fields
        (Monge-Elkan / Levenshtein) are skipped. Match decisions agree
        exactly with ``compare(left, right).score >= threshold``.

        With ``exact_scores=True`` (the default) a pair that *can't
        lose* is still evaluated fully so matches carry exact scores
        (what clustering-by-score consumers need); only rejections
        exit early. With ``exact_scores=False`` both directions exit
        early and ``score`` may be a bound — cheapest when only the
        match/non-match decision matters.
        """
        prepared_left = (
            left if isinstance(left, PreparedRecord) else self.prepare(left)
        )
        prepared_right = (
            right if isinstance(right, PreparedRecord) else self.prepare(right)
        )
        fields = self._fields
        specs = self._specs
        payloads_left = prepared_left.payloads
        payloads_right = prepared_right.payloads

        # Presence pass: field lookups are already done (payloads), so
        # the exact denominator and the missing-field contribution are
        # known before any similarity runs.
        missing_weighted = 0.0
        total_weight = 0.0
        present: list[int] = []
        remaining = 0.0
        for index, field in enumerate(fields):
            if payloads_left[index] is None or payloads_right[index] is None:
                if self._missing_penalty is not None:
                    missing_weighted += field.weight * self._missing_penalty
                    total_weight += field.weight
            else:
                present.append(index)
                total_weight += field.weight
                remaining += field.weight

        similarities: dict[int, float] = {}
        if total_weight:
            weighted = missing_weighted
            decided_match = False
            margin = self._BOUND_MARGIN
            for index in self._staged_order:
                if payloads_left[index] is None or payloads_right[index] is None:
                    continue
                similarity = specs[index].similarity(
                    payloads_left[index], payloads_right[index]
                )
                similarities[index] = similarity
                weighted += fields[index].weight * similarity
                remaining -= fields[index].weight
                if decided_match:
                    continue  # completing the evaluation for exact scores
                upper = (weighted + remaining) / total_weight
                if upper < threshold - margin:
                    return BoundedComparison(
                        left_id=prepared_left.record_id,
                        right_id=prepared_right.record_id,
                        is_match=False,
                        score=upper,
                        exact=False,
                        n_evaluated=len(similarities),
                    )
                lower = weighted / total_weight
                if lower >= threshold + margin:
                    if not exact_scores:
                        return BoundedComparison(
                            left_id=prepared_left.record_id,
                            right_id=prepared_right.record_id,
                            is_match=True,
                            score=lower,
                            exact=False,
                            n_evaluated=len(similarities),
                        )
                    decided_match = True

        # Fully evaluated: rebuild the exact vector in declaration
        # order so the float summation is byte-identical to compare().
        vector_similarities: list[float | None] = []
        weighted = 0.0
        exact_total = 0.0
        for index, field in enumerate(fields):
            similarity = similarities.get(index)
            vector_similarities.append(similarity)
            if similarity is None:
                if self._missing_penalty is not None:
                    weighted += field.weight * self._missing_penalty
                    exact_total += field.weight
                continue
            weighted += field.weight * similarity
            exact_total += field.weight
        score = weighted / exact_total if exact_total else 0.0
        vector = ComparisonVector(
            left_id=prepared_left.record_id,
            right_id=prepared_right.record_id,
            similarities=tuple(vector_similarities),
            score=score,
        )
        return BoundedComparison(
            left_id=prepared_left.record_id,
            right_id=prepared_right.record_id,
            is_match=score >= threshold,
            score=score,
            exact=True,
            n_evaluated=len(similarities),
            vector=vector,
        )


def default_product_comparator(
    translate: Translator | None = None,
) -> RecordComparator:
    """A comparator tuned for the synthetic product corpus.

    The name comparison is model-number aware (see
    :func:`repro.text.similarity.product_name_similarity`), identifier
    agreement is decisive when present, measurements compare after unit
    conversion, and brand/color are cheap corroboration. Aliases cover
    the built-in vocabulary dialects, so the comparator also works on
    raw, untranslated records.
    """
    identifier_aliases = (
        "sku", "mpn", "model number", "item code", "part number",
        "model code", "model", "isbn", "isbn 13", "isbn13", "ean",
        "flight number", "flight", "flight no", "flt",
    )
    name_aliases = ("title", "product name", "model", "item name")
    return RecordComparator(
        fields=[
            FieldComparator(
                "name",
                product_name_similarity,
                weight=3.0,
                aliases=name_aliases,
            ),
            FieldComparator(
                "product id",
                exact_similarity,
                weight=4.0,
                aliases=identifier_aliases,
            ),
            FieldComparator(
                "brand",
                jaro_winkler_similarity,
                weight=1.0,
                aliases=("manufacturer", "make", "vendor", "producer"),
            ),
            FieldComparator(
                "color", exact_similarity, weight=0.5,
                aliases=("colour", "body color", "finish", "shade"),
            ),
            FieldComparator(
                "screen size",
                measurement_similarity,
                weight=1.0,
                aliases=(
                    "display size", "lcd size", "monitor size", "display",
                    "screen diagonal",
                ),
            ),
            FieldComparator(
                "weight", measurement_similarity, weight=1.0,
                aliases=("item weight", "body weight", "mass", "net weight",
                         "travel weight"),
            ),
        ],
        translate=translate,
    )
