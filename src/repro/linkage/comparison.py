"""Record-pair comparison: feature vectors and weighted scores.

A :class:`RecordComparator` holds a list of :class:`FieldComparator`
rules — which attribute to compare, with which similarity function, at
what weight. Comparing a pair yields a :class:`ComparisonVector` (one
similarity per field, ``None`` where either side lacks the field) and a
weighted aggregate score over the *present* fields.

Records from heterogeneous sources should be compared after mediated-
schema translation; pass ``translate`` to apply a
:class:`~repro.schema.mediated.MediatedSchema` on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.text.normalize import normalize_value
from repro.text.similarity import (
    exact_similarity,
    jaro_winkler_similarity,
    measurement_similarity,
    product_name_similarity,
)

__all__ = [
    "FieldComparator",
    "ComparisonVector",
    "RecordComparator",
    "default_product_comparator",
]

Translator = Callable[[Record], Mapping[str, str]]


@dataclass(frozen=True)
class FieldComparator:
    """One comparison rule: attribute, similarity function, weight.

    ``aliases`` are fallback attribute names tried (in order) when the
    primary name is absent — the pragmatic answer to heterogeneous
    schemas when records are compared without prior schema translation.
    """

    attribute: str
    similarity: Callable[[str, str], float]
    weight: float = 1.0
    normalize: bool = True
    aliases: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError("field weight must be positive")

    def _lookup(self, attributes: Mapping[str, str]) -> str | None:
        value = attributes.get(self.attribute)
        if value is not None:
            return value
        for alias in self.aliases:
            value = attributes.get(alias)
            if value is not None:
                return value
        return None

    def compare(
        self, left: Mapping[str, str], right: Mapping[str, str]
    ) -> float | None:
        """Similarity of this field, or ``None`` when either is missing."""
        value_left = self._lookup(left)
        value_right = self._lookup(right)
        if value_left is None or value_right is None:
            return None
        if self.normalize:
            value_left = normalize_value(value_left)
            value_right = normalize_value(value_right)
        return self.similarity(value_left, value_right)


@dataclass(frozen=True)
class ComparisonVector:
    """Per-field similarities plus the aggregate score of one pair."""

    left_id: str
    right_id: str
    similarities: tuple[float | None, ...]
    score: float

    def agreement_pattern(self, threshold: float = 0.85) -> tuple[bool, ...]:
        """Binary agreement vector (missing counts as disagreement).

        This is the representation Fellegi-Sunter's EM consumes.
        """
        return tuple(
            s is not None and s >= threshold for s in self.similarities
        )


class RecordComparator:
    """Compares record pairs field by field.

    Parameters
    ----------
    fields:
        The comparison rules.
    translate:
        Optional record → attribute-mapping translator applied before
        field lookup (e.g. ``schema.translate``). Defaults to the raw
        attribute mapping.
    missing_penalty:
        Score contribution assumed for fields missing on either side,
        in ``[0, 1]``; the default ``None`` simply excludes missing
        fields from the weighted average.
    """

    def __init__(
        self,
        fields: Sequence[FieldComparator],
        translate: Translator | None = None,
        missing_penalty: float | None = None,
    ) -> None:
        if not fields:
            raise ConfigurationError("at least one field comparator needed")
        if missing_penalty is not None and not 0 <= missing_penalty <= 1:
            raise ConfigurationError("missing_penalty must be in [0, 1]")
        self._fields = tuple(fields)
        self._translate = translate or (lambda record: record.attributes)
        self._missing_penalty = missing_penalty

    @property
    def fields(self) -> tuple[FieldComparator, ...]:
        """The comparison rules."""
        return self._fields

    def compare(self, left: Record, right: Record) -> ComparisonVector:
        """Compare one pair, returning its vector and aggregate score."""
        left_attributes = self._translate(left)
        right_attributes = self._translate(right)
        similarities: list[float | None] = []
        weighted = 0.0
        total_weight = 0.0
        for field in self._fields:
            similarity = field.compare(left_attributes, right_attributes)
            similarities.append(similarity)
            if similarity is None:
                if self._missing_penalty is not None:
                    weighted += field.weight * self._missing_penalty
                    total_weight += field.weight
                continue
            weighted += field.weight * similarity
            total_weight += field.weight
        score = weighted / total_weight if total_weight else 0.0
        return ComparisonVector(
            left_id=left.record_id,
            right_id=right.record_id,
            similarities=tuple(similarities),
            score=score,
        )

    def score(self, left: Record, right: Record) -> float:
        """Aggregate score only (convenience)."""
        return self.compare(left, right).score


def default_product_comparator(
    translate: Translator | None = None,
) -> RecordComparator:
    """A comparator tuned for the synthetic product corpus.

    The name comparison is model-number aware (see
    :func:`repro.text.similarity.product_name_similarity`), identifier
    agreement is decisive when present, measurements compare after unit
    conversion, and brand/color are cheap corroboration. Aliases cover
    the built-in vocabulary dialects, so the comparator also works on
    raw, untranslated records.
    """
    identifier_aliases = (
        "sku", "mpn", "model number", "item code", "part number",
        "model code", "model", "isbn", "isbn 13", "isbn13", "ean",
        "flight number", "flight", "flight no", "flt",
    )
    name_aliases = ("title", "product name", "model", "item name")
    return RecordComparator(
        fields=[
            FieldComparator(
                "name",
                product_name_similarity,
                weight=3.0,
                aliases=name_aliases,
            ),
            FieldComparator(
                "product id",
                exact_similarity,
                weight=4.0,
                aliases=identifier_aliases,
            ),
            FieldComparator(
                "brand",
                jaro_winkler_similarity,
                weight=1.0,
                aliases=("manufacturer", "make", "vendor", "producer"),
            ),
            FieldComparator(
                "color", exact_similarity, weight=0.5,
                aliases=("colour", "body color", "finish", "shade"),
            ),
            FieldComparator(
                "screen size",
                measurement_similarity,
                weight=1.0,
                aliases=(
                    "display size", "lcd size", "monitor size", "display",
                    "screen diagonal",
                ),
            ),
            FieldComparator(
                "weight", measurement_similarity, weight=1.0,
                aliases=("item weight", "body weight", "mass", "net weight",
                         "travel weight"),
            ),
        ],
        translate=translate,
    )
