"""Record linkage: blocking, meta-blocking, comparison, classification,
clustering, identifier/incremental/temporal linkage."""

from repro.linkage.active import (
    ActiveThresholdLearner,
    LabeledPair,
    noisy_oracle,
)
from repro.linkage.blocking import (
    Block,
    MinHashBlocker,
    BlockCollection,
    Blocker,
    CanopyBlocker,
    CompositeBlocker,
    KeyFunction,
    QGramBlocker,
    SortedNeighborhoodBlocker,
    StandardBlocker,
    SuffixArrayBlocker,
    TokenBlocker,
)
from repro.linkage.classify import (
    FellegiSunterModel,
    MatchDecision,
    MatchRule,
    RuleBasedClassifier,
    ThresholdClassifier,
    fit_fellegi_sunter,
    rule_for,
)
from repro.linkage.clustering import (
    center_clustering,
    connected_components,
    merge_center_clustering,
)
from repro.linkage.comparison import (
    BoundedComparison,
    ComparisonVector,
    FieldComparator,
    PreparedRecord,
    RecordComparator,
    default_product_comparator,
)
from repro.linkage.engine import (
    EngineRun,
    ParallelComparisonEngine,
    Representation,
    prepare_records,
)
from repro.linkage.identifier import (
    IdentifierDetection,
    detect_identifier_attributes,
    link_by_identifier,
    normalize_identifier,
)
from repro.linkage.incremental import (
    BatchStats,
    IncrementalLinker,
    ProbeResult,
)
from repro.linkage.metablocking import (
    BlockingGraph,
    build_blocking_graph,
    meta_block,
)
from repro.linkage.progressive import (
    ProgressivePoint,
    order_candidates,
    progressive_resolution_curve,
)
from repro.linkage.resolver import LinkageResult, MatchClassifier, resolve
from repro.linkage.swoosh import SwooshResult, r_swoosh, union_merge
from repro.linkage.temporal import (
    TemporalField,
    TemporalMatcher,
    link_temporal_stream,
)

__all__ = [
    "ActiveThresholdLearner",
    "BatchStats",
    "Block",
    "BlockCollection",
    "Blocker",
    "BlockingGraph",
    "BoundedComparison",
    "CanopyBlocker",
    "ComparisonVector",
    "CompositeBlocker",
    "EngineRun",
    "FellegiSunterModel",
    "FieldComparator",
    "IdentifierDetection",
    "IncrementalLinker",
    "KeyFunction",
    "LabeledPair",
    "LinkageResult",
    "MatchClassifier",
    "MatchDecision",
    "MatchRule",
    "MinHashBlocker",
    "ParallelComparisonEngine",
    "Representation",
    "PreparedRecord",
    "ProbeResult",
    "ProgressivePoint",
    "QGramBlocker",
    "RecordComparator",
    "RuleBasedClassifier",
    "SortedNeighborhoodBlocker",
    "StandardBlocker",
    "SuffixArrayBlocker",
    "SwooshResult",
    "TemporalField",
    "TemporalMatcher",
    "ThresholdClassifier",
    "TokenBlocker",
    "build_blocking_graph",
    "center_clustering",
    "connected_components",
    "default_product_comparator",
    "detect_identifier_attributes",
    "fit_fellegi_sunter",
    "link_by_identifier",
    "link_temporal_stream",
    "merge_center_clustering",
    "meta_block",
    "noisy_oracle",
    "normalize_identifier",
    "order_candidates",
    "prepare_records",
    "progressive_resolution_curve",
    "r_swoosh",
    "resolve",
    "rule_for",
    "union_merge",
]
