"""Incremental record linkage: maintain clusters as records arrive.

Web sources churn constantly; re-running batch linkage on every update
is the cost the velocity dimension makes unaffordable. The
:class:`IncrementalLinker` keeps a blocking-key index and a union-find
over everything seen so far; a new batch only compares its records
against the (few) existing records sharing a blocking key — work
proportional to the *batch*, not the corpus.

The quality argument (Gruenheid, Dong & Srivastava, VLDB'14) is that
greedy incremental merging matches batch connected-components quality
exactly when the classifier is deterministic, because union-find is
order-insensitive — which also makes the equivalence testable.

Comparisons run over prepared records (one-time normalize/tokenize per
record, cached across batches) and, under a plain
:class:`~repro.linkage.classify.threshold.ThresholdClassifier`, through
the staged early-exit scorer
:meth:`~repro.linkage.comparison.RecordComparator.score_bounded` —
match decisions are provably identical to the full ``compare`` path
(asserted in tests), only cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.core.unionfind import UnionFind
from repro.linkage.blocking.base import Blocker, KeyFunction
from repro.linkage.classify.threshold import ThresholdClassifier
from repro.linkage.comparison import PreparedRecord, RecordComparator
from repro.linkage.resolver import MatchClassifier

__all__ = ["BatchStats", "IncrementalLinker", "ProbeResult"]


@dataclass(frozen=True)
class BatchStats:
    """Cost counters for one incremental batch.

    ``match_pairs`` lists every ``(new_record_id, existing_record_id)``
    pair the classifier accepted, in decision order — the serving layer
    folds these into its entity projection without re-deriving clusters.
    """

    batch_size: int
    candidates: int
    comparisons: int
    matches: int
    match_pairs: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of a read-only :meth:`IncrementalLinker.probe`.

    ``matches`` holds ``(record_id, score)`` for every indexed record
    the classifier would merge with the probe record, sorted best-first
    (descending score, ties by id). Nothing is indexed or merged.
    """

    matches: tuple[tuple[str, float], ...] = ()
    candidates: int = 0
    comparisons: int = 0

    @property
    def best(self) -> str | None:
        """The best-matching record id, if any match was found."""
        return self.matches[0][0] if self.matches else None


class IncrementalLinker:
    """Maintains linkage clusters under record insertions.

    Parameters
    ----------
    key_functions:
        Blocking-key functions maintained as inverted indexes. A new
        record is compared against existing records sharing at least
        one key.
    comparator, classifier:
        The pairwise machinery, identical to batch linkage.
    max_candidates_per_record:
        Safety valve against stop-key blowups: a record's candidate set
        is truncated (deterministically) beyond this size.
    """

    def __init__(
        self,
        key_functions: Sequence[KeyFunction],
        comparator: RecordComparator,
        classifier: MatchClassifier,
        max_candidates_per_record: int = 1000,
    ) -> None:
        if not key_functions:
            raise ConfigurationError("at least one key function required")
        self._key_functions = tuple(key_functions)
        self._comparator = comparator
        self._classifier = classifier
        self._max_candidates = max_candidates_per_record
        self._records: dict[str, Record] = {}
        self._prepared: dict[str, PreparedRecord] = {}
        self._index: dict[str, list[str]] = {}
        self._uf: UnionFind[str] = UnionFind()
        # The early-exit fast path is only provably decision-identical
        # for the plain threshold rule (score >= match_threshold);
        # subclasses may override is_match, so the check is exact.
        self._threshold = (
            classifier.match_threshold
            if type(classifier) is ThresholdClassifier
            else None
        )

    def _keys_of(self, record: Record) -> list[str]:
        keys: list[str] = []
        for function in self._key_functions:
            raw = function(record)
            if raw is None:
                continue
            if isinstance(raw, str):
                if raw:
                    keys.append(raw)
            else:
                keys.extend(k for k in raw if k)
        return keys

    @property
    def n_records(self) -> int:
        """Records currently indexed (removals excluded)."""
        return len(self._records)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._records

    def record(self, record_id: str) -> Record | None:
        """The indexed record with this id, or ``None``."""
        return self._records.get(record_id)

    def clusters(self) -> list[list[str]]:
        """Current clustering of all records still indexed.

        Removed records drop out of the reported clusters (their past
        union-find merges persist internally, which is harmless: a
        record's identity never changes, only its availability).
        """
        alive = set(self._records)
        groups = []
        for group in self._uf.groups():
            survivors = [member for member in group if member in alive]
            if survivors:
                groups.append(survivors)
        groups.sort(key=lambda group: group[0])
        return groups

    def _unindex(self, record: Record, keys=None) -> None:
        """Drop a record's index entries, deleting emptied buckets.

        Leaving empty (or stale-heavy) buckets behind would grow the
        blocking index without bound under churn — tombstoned keys must
        go away entirely, not linger as empty lists.
        """
        record_id = record.record_id
        for key in keys if keys is not None else self._keys_of(record):
            bucket = self._index.get(key)
            if bucket is None:
                continue
            remaining = [other for other in bucket if other != record_id]
            if remaining:
                self._index[key] = remaining
            else:
                del self._index[key]

    def remove(self, record_id: str) -> None:
        """Tombstone a record: no future candidate will compare to it."""
        record = self._records.pop(record_id, None)
        if record is None:
            return
        self._prepared.pop(record_id, None)
        self._unindex(record)

    def resurrect(self, record: Record) -> None:
        """Re-index a previously removed record under its old identity.

        The record's past union-find merges still stand (same page,
        same entity); only its index entries are restored, with the new
        content. No comparisons are spent.
        """
        if record.record_id in self._records:
            raise ConfigurationError(
                f"record {record.record_id!r} is already indexed"
            )
        self._records[record.record_id] = record
        self._prepared[record.record_id] = self._comparator.prepare(record)
        self._uf.add(record.record_id)
        for key in self._keys_of(record):
            self._index.setdefault(key, []).append(record.record_id)

    def update(self, record: Record) -> None:
        """Replace a record's content in place, keeping its linkage.

        Used for pages whose content changed but whose identity did not
        (the overwhelmingly common case in re-crawls); the blocking
        index follows the new content, no comparisons are spent.
        """
        old = self._records.get(record.record_id)
        if old is None:
            raise ConfigurationError(
                f"cannot update unknown record {record.record_id!r}"
            )
        old_keys = set(self._keys_of(old))
        new_keys = set(self._keys_of(record))
        self._unindex(old, old_keys - new_keys)
        for key in new_keys - old_keys:
            self._index.setdefault(key, []).append(record.record_id)
        self._records[record.record_id] = record
        self._prepared[record.record_id] = self._comparator.prepare(record)

    def merge(self, record_id: str, other_id: str) -> None:
        """Record an externally decided match (no comparisons spent).

        Used to preload a known clustering (e.g. a batch re-resolution
        restored from a durable store) or to apply a human-confirmed
        match. Both records must have been indexed at some point.
        """
        for rid in (record_id, other_id):
            if rid not in self._uf:
                raise ConfigurationError(
                    f"cannot merge unknown record {rid!r}"
                )
        self._uf.union(record_id, other_id)

    def candidates(self, record: Record) -> tuple[str, ...]:
        """Indexed records sharing a blocking key with ``record``.

        Read-only (nothing is indexed), deterministic (key order, then
        bucket insertion order), and truncated at
        ``max_candidates_per_record`` exactly like :meth:`add_batch`.
        """
        candidate_ids: list[str] = []
        seen: set[str] = set()
        for key in self._keys_of(record):
            for other_id in self._index.get(key, ()):
                if other_id not in seen:
                    seen.add(other_id)
                    candidate_ids.append(other_id)
        return tuple(candidate_ids[: self._max_candidates])

    def _decide(
        self,
        prepared: PreparedRecord,
        candidate_ids: Sequence[str],
        exact_scores: bool,
    ) -> list[tuple[str, float, bool]]:
        """Classify ``prepared`` against each candidate.

        Routes through :meth:`RecordComparator.score_bounded` under a
        plain threshold classifier (early exit, identical decisions);
        any other classifier gets the full prepared vector. With
        ``exact_scores=False`` rejected/accepted scores may be bounds.
        """
        decisions: list[tuple[str, float, bool]] = []
        for other_id in candidate_ids:
            other = self._prepared[other_id]
            if self._threshold is not None:
                bounded = self._comparator.score_bounded(
                    prepared,
                    other,
                    self._threshold,
                    exact_scores=exact_scores,
                )
                decisions.append(
                    (other_id, bounded.score, bounded.is_match)
                )
            else:
                vector = self._comparator.compare_prepared(prepared, other)
                decisions.append(
                    (
                        other_id,
                        vector.score,
                        self._classifier.is_match(vector),
                    )
                )
        return decisions

    def probe(self, record: Record) -> ProbeResult:
        """Read-only query: which indexed records match ``record``?

        The serving layer's ``match`` endpoint — candidate generation
        and classification identical to :meth:`add_batch`, but nothing
        is indexed or merged, so probing the same record twice (or from
        concurrent readers) is side-effect free. Matches carry exact
        scores, sorted best-first.
        """
        candidate_ids = self.candidates(record)
        prepared = self._comparator.prepare(record)
        decisions = self._decide(prepared, candidate_ids, exact_scores=True)
        matches = tuple(
            sorted(
                (
                    (other_id, score)
                    for other_id, score, is_match in decisions
                    if is_match
                ),
                key=lambda pair: (-pair[1], pair[0]),
            )
        )
        return ProbeResult(
            matches=matches,
            candidates=len(candidate_ids),
            comparisons=len(decisions),
        )

    def add_batch(self, batch: Sequence[Record]) -> BatchStats:
        """Fold a batch of new records into the clustering."""
        candidates_total = 0
        comparisons = 0
        match_pairs: list[tuple[str, str]] = []
        for record in batch:
            if record.record_id in self._records:
                raise ConfigurationError(
                    f"record {record.record_id!r} already linked"
                )
            keys = self._keys_of(record)
            candidate_ids = self.candidates(record)
            candidates_total += len(candidate_ids)
            prepared = self._comparator.prepare(record)
            self._records[record.record_id] = record
            self._prepared[record.record_id] = prepared
            self._uf.add(record.record_id)
            decisions = self._decide(
                prepared, candidate_ids, exact_scores=False
            )
            comparisons += len(decisions)
            for other_id, _, is_match in decisions:
                if is_match:
                    match_pairs.append((record.record_id, other_id))
                    self._uf.union(record.record_id, other_id)
            for key in keys:
                self._index.setdefault(key, []).append(record.record_id)
        return BatchStats(
            batch_size=len(batch),
            candidates=candidates_total,
            comparisons=comparisons,
            matches=len(match_pairs),
            match_pairs=tuple(match_pairs),
        )

    def batch_equivalent(self, blocker: Blocker) -> list[list[str]]:
        """Batch re-linkage of everything seen (the expensive baseline).

        Uses ``blocker`` over the full record set with the same
        comparator/classifier, clustering by connected components —
        what a from-scratch run would compute.
        """
        from repro.linkage.resolver import resolve

        result = resolve(
            list(self._records.values()),
            blocker,
            self._comparator,
            self._classifier,
            clustering="components",
        )
        return result.clusters
