"""Incremental record linkage: maintain clusters as records arrive.

Web sources churn constantly; re-running batch linkage on every update
is the cost the velocity dimension makes unaffordable. The
:class:`IncrementalLinker` keeps a blocking-key index and a union-find
over everything seen so far; a new batch only compares its records
against the (few) existing records sharing a blocking key — work
proportional to the *batch*, not the corpus.

The quality argument (Gruenheid, Dong & Srivastava, VLDB'14) is that
greedy incremental merging matches batch connected-components quality
exactly when the classifier is deterministic, because union-find is
order-insensitive — which also makes the equivalence testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.core.unionfind import UnionFind
from repro.linkage.blocking.base import Blocker, KeyFunction
from repro.linkage.comparison import RecordComparator
from repro.linkage.resolver import MatchClassifier

__all__ = ["BatchStats", "IncrementalLinker"]


@dataclass(frozen=True)
class BatchStats:
    """Cost counters for one incremental batch."""

    batch_size: int
    candidates: int
    comparisons: int
    matches: int


class IncrementalLinker:
    """Maintains linkage clusters under record insertions.

    Parameters
    ----------
    key_functions:
        Blocking-key functions maintained as inverted indexes. A new
        record is compared against existing records sharing at least
        one key.
    comparator, classifier:
        The pairwise machinery, identical to batch linkage.
    max_candidates_per_record:
        Safety valve against stop-key blowups: a record's candidate set
        is truncated (deterministically) beyond this size.
    """

    def __init__(
        self,
        key_functions: Sequence[KeyFunction],
        comparator: RecordComparator,
        classifier: MatchClassifier,
        max_candidates_per_record: int = 1000,
    ) -> None:
        if not key_functions:
            raise ConfigurationError("at least one key function required")
        self._key_functions = tuple(key_functions)
        self._comparator = comparator
        self._classifier = classifier
        self._max_candidates = max_candidates_per_record
        self._records: dict[str, Record] = {}
        self._index: dict[str, list[str]] = {}
        self._uf: UnionFind[str] = UnionFind()

    def _keys_of(self, record: Record) -> list[str]:
        keys: list[str] = []
        for function in self._key_functions:
            raw = function(record)
            if raw is None:
                continue
            if isinstance(raw, str):
                if raw:
                    keys.append(raw)
            else:
                keys.extend(k for k in raw if k)
        return keys

    @property
    def n_records(self) -> int:
        """Records currently indexed (removals excluded)."""
        return len(self._records)

    def clusters(self) -> list[list[str]]:
        """Current clustering of all records still indexed.

        Removed records drop out of the reported clusters (their past
        union-find merges persist internally, which is harmless: a
        record's identity never changes, only its availability).
        """
        alive = set(self._records)
        groups = []
        for group in self._uf.groups():
            survivors = [member for member in group if member in alive]
            if survivors:
                groups.append(survivors)
        groups.sort(key=lambda group: group[0])
        return groups

    def remove(self, record_id: str) -> None:
        """Tombstone a record: no future candidate will compare to it."""
        record = self._records.pop(record_id, None)
        if record is None:
            return
        for key in self._keys_of(record):
            bucket = self._index.get(key)
            if bucket is not None:
                self._index[key] = [
                    other for other in bucket if other != record_id
                ]

    def resurrect(self, record: Record) -> None:
        """Re-index a previously removed record under its old identity.

        The record's past union-find merges still stand (same page,
        same entity); only its index entries are restored, with the new
        content. No comparisons are spent.
        """
        if record.record_id in self._records:
            raise ConfigurationError(
                f"record {record.record_id!r} is already indexed"
            )
        self._records[record.record_id] = record
        self._uf.add(record.record_id)
        for key in self._keys_of(record):
            self._index.setdefault(key, []).append(record.record_id)

    def update(self, record: Record) -> None:
        """Replace a record's content in place, keeping its linkage.

        Used for pages whose content changed but whose identity did not
        (the overwhelmingly common case in re-crawls); the blocking
        index follows the new content, no comparisons are spent.
        """
        old = self._records.get(record.record_id)
        if old is None:
            raise ConfigurationError(
                f"cannot update unknown record {record.record_id!r}"
            )
        old_keys = set(self._keys_of(old))
        new_keys = set(self._keys_of(record))
        for key in old_keys - new_keys:
            bucket = self._index.get(key)
            if bucket is not None:
                self._index[key] = [
                    other for other in bucket if other != record.record_id
                ]
        for key in new_keys - old_keys:
            self._index.setdefault(key, []).append(record.record_id)
        self._records[record.record_id] = record

    def add_batch(self, batch: Sequence[Record]) -> BatchStats:
        """Fold a batch of new records into the clustering."""
        candidates_total = 0
        comparisons = 0
        matches = 0
        for record in batch:
            if record.record_id in self._records:
                raise ConfigurationError(
                    f"record {record.record_id!r} already linked"
                )
            keys = self._keys_of(record)
            candidate_ids: list[str] = []
            seen: set[str] = set()
            for key in keys:
                for other_id in self._index.get(key, ()):
                    if other_id not in seen:
                        seen.add(other_id)
                        candidate_ids.append(other_id)
            candidate_ids = candidate_ids[: self._max_candidates]
            candidates_total += len(candidate_ids)
            self._records[record.record_id] = record
            self._uf.add(record.record_id)
            for other_id in candidate_ids:
                vector = self._comparator.compare(
                    record, self._records[other_id]
                )
                comparisons += 1
                if self._classifier.is_match(vector):
                    matches += 1
                    self._uf.union(record.record_id, other_id)
            for key in keys:
                self._index.setdefault(key, []).append(record.record_id)
        return BatchStats(
            batch_size=len(batch),
            candidates=candidates_total,
            comparisons=comparisons,
            matches=matches,
        )

    def batch_equivalent(self, blocker: Blocker) -> list[list[str]]:
        """Batch re-linkage of everything seen (the expensive baseline).

        Uses ``blocker`` over the full record set with the same
        comparator/classifier, clustering by connected components —
        what a from-scratch run would compute.
        """
        from repro.linkage.resolver import resolve

        result = resolve(
            list(self._records.values()),
            blocker,
            self._comparator,
            self._classifier,
            clustering="components",
        )
        return result.clusters
