"""Q-gram blocking: typo-robust keys from character n-grams."""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.core.record import Record
from repro.linkage.blocking.base import (
    BlockCollection,
    Blocker,
    KeyFunction,
    require_positive,
)
from repro.text.tokens import qgrams

__all__ = ["QGramBlocker"]


class QGramBlocker(Blocker):
    """Each q-gram of the blocking key becomes a block key.

    A single typo perturbs only ``q`` of the key's q-grams, so typo'd
    duplicates still co-occur in most of their blocks — high recall at
    the cost of many (overlapping) candidates; pair meta-blocking on
    top to prune. ``max_block_size`` drops stop-gram blocks (grams so
    common they pair everything with everything).
    """

    name = "qgram"

    def __init__(
        self,
        key_function: KeyFunction,
        q: int = 3,
        max_block_size: int | None = None,
    ) -> None:
        require_positive("q", q)
        if max_block_size is not None:
            require_positive("max_block_size", max_block_size)
        self._key_function = key_function
        self._q = q
        self._max_block_size = max_block_size

    def block(self, records: Sequence[Record]) -> BlockCollection:
        by_gram: dict[str, list[str]] = defaultdict(list)
        for record in records:
            grams: set[str] = set()
            for key in self._keys_of(self._key_function, record):
                grams.update(qgrams(key, q=self._q))
            for gram in grams:
                by_gram[gram].append(record.record_id)
        if self._max_block_size is not None:
            by_gram = {
                gram: ids
                for gram, ids in by_gram.items()
                if len(ids) <= self._max_block_size
            }
        return BlockCollection.from_key_map(by_gram)
