"""MinHash/LSH blocking: similarity-thresholded candidates at scale.

Token and q-gram blocking key on *shared tokens*; MinHash LSH keys on
*estimated Jaccard similarity*. Each record's token set is sketched
with ``n_hashes`` min-hashes; the sketch is cut into ``bands`` bands of
``rows = n_hashes / bands`` hashes, and records colliding on any whole
band become candidates. The collision probability of a pair with
Jaccard similarity ``s`` is ``1 − (1 − s^rows)^bands`` — the classic
S-curve whose threshold ``(1/bands)^(1/rows)`` the constructor reports.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.linkage.blocking.base import BlockCollection, Blocker
from repro.text.normalize import normalize_value
from repro.text.tokens import word_tokens

__all__ = ["MinHashBlocker"]

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def _stable_hash(token: str) -> int:
    """Deterministic 32-bit hash (Python's str hash is salted)."""
    value = 2166136261
    for character in token:
        value ^= ord(character)
        value = (value * 16777619) & 0xFFFFFFFF
    return value


class MinHashBlocker(Blocker):
    """LSH over MinHash sketches of record token sets.

    Parameters
    ----------
    n_hashes:
        Sketch size; must be divisible by ``bands``.
    bands:
        Number of LSH bands. More bands → lower similarity threshold
        (more candidates).
    text_function:
        Record → text whose word tokens are sketched (defaults to all
        attribute values).
    seed:
        Seeds the hash-family parameters.
    """

    name = "minhash-lsh"

    def __init__(
        self,
        n_hashes: int = 64,
        bands: int = 16,
        text_function: Callable[[Record], str] | None = None,
        seed: int = 0,
    ) -> None:
        if n_hashes < 1 or bands < 1:
            raise ConfigurationError("n_hashes and bands must be >= 1")
        if n_hashes % bands != 0:
            raise ConfigurationError(
                f"bands ({bands}) must divide n_hashes ({n_hashes})"
            )
        self._n_hashes = n_hashes
        self._bands = bands
        self._rows = n_hashes // bands
        self._text_function = text_function or (lambda r: r.text())
        import random

        rng = random.Random(seed)
        self._a = [
            rng.randrange(1, _MERSENNE_PRIME) for __ in range(n_hashes)
        ]
        self._b = [
            rng.randrange(0, _MERSENNE_PRIME) for __ in range(n_hashes)
        ]

    @property
    def similarity_threshold(self) -> float:
        """Approximate Jaccard similarity at 50% collision probability."""
        return (1.0 / self._bands) ** (1.0 / self._rows)

    def _sketch(self, tokens: Sequence[str]) -> tuple[int, ...] | None:
        if not tokens:
            return None
        hashes = [_stable_hash(token) for token in tokens]
        sketch = []
        for a, b in zip(self._a, self._b):
            sketch.append(
                min(
                    ((a * h + b) % _MERSENNE_PRIME) & _MAX_HASH
                    for h in hashes
                )
            )
        return tuple(sketch)

    def block(self, records: Sequence[Record]) -> BlockCollection:
        buckets: dict[str, list[str]] = defaultdict(list)
        for record in records:
            tokens = word_tokens(
                normalize_value(self._text_function(record))
            )
            sketch = self._sketch(tokens)
            if sketch is None:
                continue
            for band in range(self._bands):
                start = band * self._rows
                signature = sketch[start : start + self._rows]
                key = f"b{band}:" + ",".join(map(str, signature))
                buckets[key].append(record.record_id)
        return BlockCollection.from_key_map(buckets)
