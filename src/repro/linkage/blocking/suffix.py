"""Suffix-array blocking (Aizawa & Oyama).

Every suffix (of at least ``min_suffix_length``) of the blocking key
becomes a block key; overly common suffixes are dropped via
``max_block_size``. Robust to prefix corruption and key truncation —
complements prefix/q-gram schemes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.core.record import Record
from repro.linkage.blocking.base import (
    BlockCollection,
    Blocker,
    KeyFunction,
    require_positive,
)

__all__ = ["SuffixArrayBlocker"]


class SuffixArrayBlocker(Blocker):
    """Block on all sufficiently long suffixes of the key."""

    name = "suffix"

    def __init__(
        self,
        key_function: KeyFunction,
        min_suffix_length: int = 4,
        max_block_size: int = 50,
    ) -> None:
        require_positive("min_suffix_length", min_suffix_length)
        require_positive("max_block_size", max_block_size)
        self._key_function = key_function
        self._min_suffix_length = min_suffix_length
        self._max_block_size = max_block_size

    def block(self, records: Sequence[Record]) -> BlockCollection:
        by_suffix: dict[str, list[str]] = defaultdict(list)
        for record in records:
            suffixes: set[str] = set()
            for key in self._keys_of(self._key_function, record):
                compact = key.replace(" ", "")
                for start in range(
                    0, max(0, len(compact) - self._min_suffix_length) + 1
                ):
                    suffix = compact[start:]
                    if len(suffix) >= self._min_suffix_length:
                        suffixes.add(suffix)
            for suffix in suffixes:
                by_suffix[suffix].append(record.record_id)
        pruned = {
            suffix: ids
            for suffix, ids in by_suffix.items()
            if len(ids) <= self._max_block_size
        }
        return BlockCollection.from_key_map(pruned)
