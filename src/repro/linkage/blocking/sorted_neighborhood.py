"""Sorted-neighborhood blocking (Hernández & Stolfo).

Records are sorted by a key and a window of size ``w`` slides over the
sorted order; records within a window are candidates. Tolerant of key
typos that preserve sort locality, and the window bounds worst-case
cost (no giant blocks), at the price of missing matches whose keys sort
far apart.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

from repro.core.record import Record
from repro.linkage.blocking.base import (
    Block,
    BlockCollection,
    Blocker,
    KeyFunction,
    require_positive,
)

__all__ = ["SortedNeighborhoodBlocker"]


class SortedNeighborhoodBlocker(Blocker):
    """Slide a window of size ``window`` over the key-sorted records.

    Each window position becomes a (overlapping) block; candidate-pair
    deduplication happens downstream in
    :meth:`BlockCollection.candidate_pairs`. Records without a key are
    excluded (they can't be sorted meaningfully).
    """

    name = "sorted-neighborhood"

    def __init__(self, key_function: KeyFunction, window: int = 5) -> None:
        require_positive("window", window)
        if window < 2:
            # A window of 1 never pairs anything; catch the mistake early.
            raise ValueError("window must be >= 2 to produce candidates")
        self._key_function = key_function
        self._window = window

    @property
    def window(self) -> int:
        """The sliding-window size."""
        return self._window

    def block(self, records: Sequence[Record]) -> BlockCollection:
        keyed: list[tuple[str, str]] = []
        for record in records:
            keys = self._keys_of(self._key_function, record)
            if keys:
                keyed.append((keys[0], record.record_id))
        keyed.sort()
        collection = BlockCollection()
        n = len(keyed)
        for start in range(0, max(0, n - self._window + 1)):
            window = keyed[start : start + self._window]
            collection.add(
                Block(
                    key=f"win{start:06d}",
                    record_ids=tuple(record_id for __, record_id in window),
                )
            )
        if 0 < n < self._window:
            collection.add(
                Block("win000000", tuple(rid for __, rid in keyed))
            )
        return collection

    def stream_blocks(
        self, records: Iterable[Record], spill
    ) -> Iterator[Block]:
        """Out-of-core :meth:`block` via external sort on ``(key, id)``.

        The sorted ``(key, record_id)`` run merge feeds a sliding
        window of size ``window`` — identical windows (keys and
        contents) to sorting the full list in memory.
        """
        from repro.outofcore.spill import ExternalSorter, entry_nbytes

        sorter = ExternalSorter(spill.scoped(self.name), spill.budget)
        for record in records:
            keys = self._keys_of(self._key_function, record)
            if keys:
                entry = (keys[0], record.record_id)
                sorter.add(entry, entry_nbytes(*entry))
        start = 0
        window: deque[str] = deque(maxlen=self._window)
        for __, record_id in sorter.sorted_stream():
            window.append(record_id)
            if len(window) == self._window:
                yield Block(f"win{start:06d}", tuple(window))
                start += 1
        if 0 < len(window) < self._window and start == 0:
            yield Block("win000000", tuple(window))
        sorter.release()
