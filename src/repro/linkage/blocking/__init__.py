"""Blocking schemes: standard, sorted neighborhood, canopy, q-gram,
suffix array, schema-agnostic token blocking, and composition."""

from repro.linkage.blocking.base import (
    Block,
    BlockCollection,
    Blocker,
    KeyFunction,
)
from repro.linkage.blocking.canopy import CanopyBlocker
from repro.linkage.blocking.composite import CompositeBlocker
from repro.linkage.blocking.lsh import MinHashBlocker
from repro.linkage.blocking.keys import (
    NAME_ALIASES,
    attribute_key,
    compound_key,
    first_token_key,
    normalized_attribute_key,
    prefix_key,
    soundex_key,
    token_set_key,
)
from repro.linkage.blocking.qgram import QGramBlocker
from repro.linkage.blocking.sorted_neighborhood import (
    SortedNeighborhoodBlocker,
)
from repro.linkage.blocking.standard import StandardBlocker
from repro.linkage.blocking.suffix import SuffixArrayBlocker
from repro.linkage.blocking.token import TokenBlocker

__all__ = [
    "Block",
    "BlockCollection",
    "Blocker",
    "CanopyBlocker",
    "CompositeBlocker",
    "KeyFunction",
    "MinHashBlocker",
    "NAME_ALIASES",
    "QGramBlocker",
    "SortedNeighborhoodBlocker",
    "StandardBlocker",
    "SuffixArrayBlocker",
    "TokenBlocker",
    "attribute_key",
    "compound_key",
    "first_token_key",
    "normalized_attribute_key",
    "prefix_key",
    "soundex_key",
    "token_set_key",
]
