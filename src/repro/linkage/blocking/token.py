"""Schema-agnostic token blocking (Papadakis et al.).

Every word token appearing in *any* attribute value becomes a block
key. No schema knowledge needed — exactly what highly heterogeneous
multi-source corpora call for — at the price of enormous redundancy,
which is what meta-blocking (see :mod:`repro.linkage.metablocking`)
exists to prune.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Sequence

from repro.core.record import Record
from repro.linkage.blocking.base import Block, BlockCollection, Blocker
from repro.text.normalize import normalize_value
from repro.text.tokens import word_tokens

__all__ = ["TokenBlocker"]


class TokenBlocker(Blocker):
    """Block on every token of every attribute value.

    ``max_block_size`` drops stop-word blocks; ``min_token_length``
    skips tokens too short to be discriminative.
    """

    name = "token"

    def __init__(
        self,
        max_block_size: int | None = None,
        min_token_length: int = 2,
    ) -> None:
        self._max_block_size = max_block_size
        self._min_token_length = min_token_length

    def block(self, records: Sequence[Record]) -> BlockCollection:
        by_token: dict[str, list[str]] = defaultdict(list)
        for record in records:
            tokens: set[str] = set()
            for value in record.attributes.values():
                for token in word_tokens(normalize_value(value)):
                    if len(token) >= self._min_token_length:
                        tokens.add(token)
            for token in tokens:
                by_token[token].append(record.record_id)
        if self._max_block_size is not None:
            by_token = {
                token: ids
                for token, ids in by_token.items()
                if len(ids) <= self._max_block_size
            }
        return BlockCollection.from_key_map(by_token)

    def shard_keys(self, record: Record) -> list[str]:
        """Per-record token keys for shard-decomposed blocking.

        The token *set* of :meth:`block`, sorted: each distinct token
        indexes the record once, and per-key id lists depend only on
        record order, so sorted emission regroups identically.
        """
        tokens: set[str] = set()
        for value in record.attributes.values():
            for token in word_tokens(normalize_value(value)):
                if len(token) >= self._min_token_length:
                    tokens.add(token)
        return sorted(tokens)

    def accepts_block(self, key: str, record_ids: Sequence[str]) -> bool:
        """Re-apply the ``max_block_size`` stop-word filter at reassembly."""
        if (
            self._max_block_size is not None
            and len(record_ids) > self._max_block_size
        ):
            return False
        return len(record_ids) > 1

    def stream_blocks(
        self, records: Iterable[Record], spill
    ) -> Iterator[Block]:
        """Out-of-core :meth:`block`: identical blocks, bounded memory.

        The ``max_block_size`` filter applies at merge time — only
        there is a key's full id list known — which is equivalent to
        the in-memory filter over the complete token map.
        """
        from repro.outofcore.spill import SpillableBlockIndex

        index = SpillableBlockIndex(spill.scoped(self.name), spill.budget)
        for record in records:
            tokens: set[str] = set()
            for value in record.attributes.values():
                for token in word_tokens(normalize_value(value)):
                    if len(token) >= self._min_token_length:
                        tokens.add(token)
            for token in tokens:
                index.add(token, record.record_id)
        for token, ids in index.merged():
            if (
                self._max_block_size is not None
                and len(ids) > self._max_block_size
            ):
                continue
            if len(ids) > 1:
                yield Block(token, tuple(ids))
