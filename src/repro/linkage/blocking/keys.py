"""Reusable blocking-key functions.

Key functions are tiny and composable; these cover the standard
constructions: exact attribute value, normalized value, first/last
tokens, value prefixes, and Soundex codes. Every factory accepts
``aliases`` — fallback attribute names tried when the primary one is
absent — because heterogeneous sources rarely agree on attribute
naming (the record's title may be ``name``, ``title``, or ``model``
depending on the source).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.record import Record
from repro.linkage.blocking.base import KeyFunction
from repro.text.normalize import normalize_value
from repro.text.phonetic import soundex
from repro.text.tokens import word_tokens

__all__ = [
    "NAME_ALIASES",
    "attribute_key",
    "normalized_attribute_key",
    "first_token_key",
    "prefix_key",
    "soundex_key",
    "token_set_key",
    "compound_key",
]

#: The title-like attribute dialects of the built-in vocabularies.
NAME_ALIASES: tuple[str, ...] = (
    "title", "product name", "model", "item name",
)


def _lookup(
    record: Record, attribute: str, aliases: Sequence[str]
) -> str | None:
    value = record.get(attribute)
    if value is not None:
        return value
    for alias in aliases:
        value = record.get(alias)
        if value is not None:
            return value
    return None


def attribute_key(
    attribute: str, aliases: Sequence[str] = ()
) -> KeyFunction:
    """Raw value of ``attribute`` (or the first present alias)."""

    def key(record: Record) -> str | None:
        return _lookup(record, attribute, aliases)

    return key


def normalized_attribute_key(
    attribute: str, aliases: Sequence[str] = ()
) -> KeyFunction:
    """Normalized value of ``attribute`` as the key."""

    def key(record: Record) -> str | None:
        value = _lookup(record, attribute, aliases)
        return normalize_value(value) if value is not None else None

    return key


def first_token_key(
    attribute: str, aliases: Sequence[str] = ()
) -> KeyFunction:
    """First word token of ``attribute`` (e.g. the brand in a title)."""

    def key(record: Record) -> str | None:
        value = _lookup(record, attribute, aliases)
        if value is None:
            return None
        tokens = word_tokens(value)
        return tokens[0] if tokens else None

    return key


def prefix_key(
    attribute: str, length: int = 4, aliases: Sequence[str] = ()
) -> KeyFunction:
    """First ``length`` characters of the normalized value."""

    def key(record: Record) -> str | None:
        value = _lookup(record, attribute, aliases)
        if value is None:
            return None
        normalized = normalize_value(value)
        return normalized[:length] if normalized else None

    return key


def soundex_key(
    attribute: str, aliases: Sequence[str] = ()
) -> KeyFunction:
    """Soundex code of the first token of ``attribute``."""

    def key(record: Record) -> str | None:
        value = _lookup(record, attribute, aliases)
        if value is None:
            return None
        tokens = word_tokens(value)
        return soundex(tokens[0]) if tokens else None

    return key


def token_set_key(
    attribute: str, aliases: Sequence[str] = ()
) -> KeyFunction:
    """Every word token of ``attribute`` as a separate key (multi-key)."""

    def key(record: Record) -> Iterable[str]:
        value = _lookup(record, attribute, aliases)
        if value is None:
            return ()
        return word_tokens(value)

    return key


def compound_key(*functions: KeyFunction, separator: str = "|") -> KeyFunction:
    """Concatenate several single-valued keys; None anywhere → no key."""

    def key(record: Record) -> str | None:
        parts: list[str] = []
        for function in functions:
            value = function(record)
            if value is None or not isinstance(value, str) or not value:
                return None
            parts.append(value)
        return separator.join(parts)

    return key
