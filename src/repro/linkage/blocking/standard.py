"""Standard (key-equality) blocking."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Sequence

from repro.core.record import Record
from repro.linkage.blocking.base import (
    Block,
    BlockCollection,
    Blocker,
    KeyFunction,
)

__all__ = ["StandardBlocker"]


class StandardBlocker(Blocker):
    """Records sharing a blocking key form a block.

    The cheapest and most brittle scheme: recall depends entirely on the
    key never being corrupted. Use multi-valued key functions (e.g.
    :func:`repro.linkage.blocking.keys.token_set_key`) for redundancy.
    """

    name = "standard"

    def __init__(self, key_function: KeyFunction) -> None:
        self._key_function = key_function

    def block(self, records: Sequence[Record]) -> BlockCollection:
        by_key: dict[str, list[str]] = defaultdict(list)
        for record in records:
            for key in self._keys_of(self._key_function, record):
                by_key[key].append(record.record_id)
        return BlockCollection.from_key_map(by_key)

    def shard_keys(self, record: Record) -> list[str]:
        """Per-record keys for shard-decomposed blocking.

        Exactly what :meth:`block` indexes the record under —
        duplicates included, since ``block`` appends the record once
        per emitted key.
        """
        return self._keys_of(self._key_function, record)

    def stream_blocks(
        self, records: Iterable[Record], spill
    ) -> Iterator[Block]:
        """Out-of-core :meth:`block`: identical blocks, bounded memory."""
        from repro.outofcore.spill import SpillableBlockIndex

        index = SpillableBlockIndex(spill.scoped(self.name), spill.budget)
        for record in records:
            for key in self._keys_of(self._key_function, record):
                index.add(key, record.record_id)
        for key, ids in index.merged():
            if len(ids) > 1:
                yield Block(key, tuple(ids))
