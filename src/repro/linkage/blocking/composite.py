"""Composite blocking: union of several blockers' blocks.

Combining complementary blockers (e.g. a brand key plus a Soundex key)
is the standard recall remedy: a match missed by one key survives via
another. Costs add, so pair with meta-blocking when the union gets
large.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.linkage.blocking.base import Block, BlockCollection, Blocker

__all__ = ["CompositeBlocker"]


class CompositeBlocker(Blocker):
    """Run every child blocker and take the union of their blocks."""

    name = "composite"

    def __init__(self, blockers: Sequence[Blocker]) -> None:
        if not blockers:
            raise ConfigurationError(
                "CompositeBlocker needs at least one child blocker"
            )
        self._blockers = tuple(blockers)

    @property
    def blockers(self) -> tuple[Blocker, ...]:
        """The child blockers."""
        return self._blockers

    def block(self, records: Sequence[Record]) -> BlockCollection:
        combined = BlockCollection()
        for child_index, blocker in enumerate(self._blockers):
            child = blocker.block(records)
            for block in child:
                combined.add(
                    Block(
                        key=f"{child_index}:{blocker.name}:{block.key}",
                        record_ids=block.record_ids,
                    )
                )
        return combined
