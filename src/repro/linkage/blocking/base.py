"""Blocking primitives: blocks, block collections, the Blocker interface.

A *blocker* maps a sequence of records to a :class:`BlockCollection`;
records sharing a block become candidate pairs. The collection tracks
enough structure (record → blocks) for meta-blocking to build its
blocking graph without re-running the blocker.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record

__all__ = ["Block", "BlockCollection", "Blocker", "KeyFunction"]

#: A key function maps a record to zero or more blocking keys.
#: ``None`` and empty strings are treated as "no key".
KeyFunction = Callable[[Record], str | Iterable[str] | None]


@dataclass(frozen=True)
class Block:
    """One block: a key and the ids of the records that share it."""

    key: str
    record_ids: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.record_ids)

    @property
    def n_comparisons(self) -> int:
        """Number of unordered pairs this block induces."""
        n = len(self.record_ids)
        return n * (n - 1) // 2


class BlockCollection:
    """All blocks produced by one blocking pass.

    Exposes the two views consumers need: per-block (for distributed
    execution and statistics) and per-record (for meta-blocking's
    blocking graph).
    """

    def __init__(self, blocks: Iterable[Block] = ()) -> None:
        self._blocks: list[Block] = []
        self._blocks_of_record: dict[str, set[int]] = defaultdict(set)
        for block in blocks:
            self.add(block)

    @classmethod
    def from_key_map(
        cls, key_to_records: Mapping[str, Sequence[str]]
    ) -> "BlockCollection":
        """Build from a key → record-ids mapping, dropping size-1 blocks."""
        collection = cls()
        for key in sorted(key_to_records):
            record_ids = key_to_records[key]
            if len(record_ids) > 1:
                collection.add(Block(key, tuple(record_ids)))
        return collection

    def add(self, block: Block) -> None:
        """Append a block (singletons are permitted but useless)."""
        index = len(self._blocks)
        self._blocks.append(block)
        for record_id in block.record_ids:
            self._blocks_of_record[record_id].add(index)

    @property
    def blocks(self) -> tuple[Block, ...]:
        """All blocks, in insertion order."""
        return tuple(self._blocks)

    def blocks_of(self, record_id: str) -> frozenset[int]:
        """Indices of the blocks containing ``record_id``."""
        return frozenset(self._blocks_of_record.get(record_id, frozenset()))

    def candidate_pairs(self) -> set[frozenset[str]]:
        """Deduplicated unordered candidate pairs across all blocks."""
        pairs: set[frozenset[str]] = set()
        for block in self._blocks:
            ids = block.record_ids
            for i, left in enumerate(ids):
                for right in ids[i + 1 :]:
                    if left != right:
                        pairs.add(frozenset((left, right)))
        return pairs

    @property
    def n_comparisons(self) -> int:
        """Total comparisons counting duplicates across blocks.

        This is the cost a naive executor pays; ``len(candidate_pairs())``
        is the cost after deduplication.
        """
        return sum(block.n_comparisons for block in self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __repr__(self) -> str:
        return (
            f"BlockCollection(blocks={len(self._blocks)}, "
            f"comparisons={self.n_comparisons})"
        )


class Blocker:
    """Base class for blockers."""

    name = "blocker"

    def block(self, records: Sequence[Record]) -> BlockCollection:
        raise NotImplementedError

    def stream_blocks(self, records: Iterable[Record], spill) -> Iterator[Block]:
        """Stream blocks with bounded resident memory.

        ``records`` is any (re-)iterable of records — a list or a
        :class:`repro.io.RecordStream` — consumed in one pass;
        ``spill`` is a :class:`repro.outofcore.SpillSession` carrying
        the spill store and memory budget. Blockers with an
        out-of-core path override this and must yield **exactly** the
        blocks :meth:`block` would produce over the same records, in
        the same order. The base raises so callers can detect (via
        :attr:`supports_streaming`) and refuse rather than silently
        materialize.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no out-of-core streaming path"
        )

    @property
    def supports_streaming(self) -> bool:
        """Whether this blocker overrides :meth:`stream_blocks`."""
        return type(self).stream_blocks is not Blocker.stream_blocks

    def shard_keys(self, record: Record) -> list[str]:
        """Blocking keys of one record, for shard-decomposed blocking.

        A blocker whose keys depend only on the record itself can run
        as a distributed map: each shard emits ``(key, record)``
        contributions independently and key owners reassemble blocks.
        Overrides must emit, per record, exactly the keys :meth:`block`
        would index the record under (duplicates included, since
        :meth:`block` keeps them too). The base raises so callers can
        detect (via :attr:`supports_shard_keys`) and fall back to
        whole-corpus blocking at the coordinator.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no shard-decomposable key path"
        )

    def accepts_block(self, key: str, record_ids: Sequence[str]) -> bool:
        """Whether a reassembled block survives this blocker's filters.

        Called by the sharded runtime after a key owner regroups a
        key's record ids (in original record order). The base keeps
        any block that can produce at least one pair — the same rule
        ``BlockCollection.from_key_map`` applies; blockers with extra
        filters (e.g. an oversize cutoff) override and re-apply them.
        """
        return len(record_ids) > 1

    @property
    def supports_shard_keys(self) -> bool:
        """Whether this blocker overrides :meth:`shard_keys`."""
        return type(self).shard_keys is not Blocker.shard_keys

    @staticmethod
    def _keys_of(key_function: KeyFunction, record: Record) -> list[str]:
        """Normalize a key function's output to a list of usable keys."""
        raw = key_function(record)
        if raw is None:
            return []
        if isinstance(raw, str):
            return [raw] if raw else []
        return [key for key in raw if key]


def require_positive(name: str, value: int) -> None:
    """Shared validation helper for blocker parameters."""
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
