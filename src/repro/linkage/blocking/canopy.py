"""Canopy clustering blocking (McCallum, Nigam & Ungar).

Canopies are built with a *cheap* similarity (token Jaccard here):
pick a random seed record, gather everything within the *loose*
threshold into its canopy, and remove from the seed pool everything
within the *tight* threshold. Canopies overlap, so a record can appear
in several blocks — recall insurance that key-equality blocking lacks.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.linkage.blocking.base import Block, BlockCollection, Blocker
from repro.text.tokens import word_tokens

__all__ = ["CanopyBlocker"]


class CanopyBlocker(Blocker):
    """Overlapping canopies under a cheap token-Jaccard similarity.

    Parameters
    ----------
    text_function:
        Maps a record to the text its tokens are drawn from (defaults
        to all attribute values concatenated).
    loose, tight:
        Jaccard thresholds with ``0 <= loose <= tight <= 1``. ``loose``
        admits records into a canopy; ``tight`` removes them from the
        seed pool.
    seed:
        Seed-order randomness (canopy results depend on seed order;
        fixing it keeps runs reproducible).
    """

    name = "canopy"

    def __init__(
        self,
        text_function: Callable[[Record], str] | None = None,
        loose: float = 0.3,
        tight: float = 0.6,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= loose <= tight <= 1.0:
            raise ConfigurationError(
                f"need 0 <= loose <= tight <= 1, got {loose}, {tight}"
            )
        self._text_function = text_function or (lambda r: r.text())
        self._loose = loose
        self._tight = tight
        self._seed = seed

    def block(self, records: Sequence[Record]) -> BlockCollection:
        tokens: dict[str, frozenset[str]] = {
            record.record_id: frozenset(
                word_tokens(self._text_function(record))
            )
            for record in records
        }
        # Inverted index: token → record ids, to avoid all-pairs scans.
        index: dict[str, set[str]] = {}
        for record_id, record_tokens in tokens.items():
            for token in record_tokens:
                index.setdefault(token, set()).add(record_id)

        rng = random.Random(self._seed)
        pool = sorted(tokens)
        rng.shuffle(pool)
        alive = set(pool)
        collection = BlockCollection()
        canopy_index = 0
        for seed_id in pool:
            if seed_id not in alive:
                continue
            seed_tokens = tokens[seed_id]
            members = [seed_id]
            removed = {seed_id}
            candidates: set[str] = set()
            for token in seed_tokens:
                candidates.update(index.get(token, ()))
            candidates.discard(seed_id)
            for other_id in sorted(candidates):
                other_tokens = tokens[other_id]
                union = len(seed_tokens | other_tokens)
                if union == 0:
                    continue
                similarity = len(seed_tokens & other_tokens) / union
                if similarity >= self._loose:
                    members.append(other_id)
                    if similarity >= self._tight:
                        removed.add(other_id)
            alive -= removed
            if len(members) > 1:
                collection.add(
                    Block(f"canopy{canopy_index:06d}", tuple(members))
                )
            canopy_index += 1
        return collection
