"""R-Swoosh: merge-based generic entity resolution (Benjelloun et al.).

Pairwise linkage decides record-vs-record; *merge-based* ER lets
matched records **merge** into composite records whose combined
evidence can match things neither original could. The classic chain:
record A has only a name, B has name + identifier, C has only the
identifier — A~B by name, B~C by identifier, but A~C matches *only*
through the merged ⟨AB⟩ record. Under the ICAR properties
(idempotence, commutativity, associativity, representativity) the
R-Swoosh algorithm computes the unique merge closure with pairwise
comparisons only.

The merge function here is attribute union with first-writer-wins on
conflicts (representative under a match function that only ever *adds*
evidence); a custom merge can be supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record

__all__ = ["SwooshResult", "r_swoosh", "union_merge"]

MatchFunction = Callable[[Record, Record], bool]
MergeFunction = Callable[[Record, Record], Record]


def union_merge(left: Record, right: Record) -> Record:
    """Merge two records: union of attributes, left wins conflicts.

    The merged record id concatenates the constituents' ids with
    ``"+"`` (sorted), so provenance stays readable.
    """
    attributes = dict(right.attributes)
    attributes.update(left.attributes)
    members = sorted(
        set(left.record_id.split("+")) | set(right.record_id.split("+"))
    )
    timestamp = None
    if left.timestamp is not None or right.timestamp is not None:
        timestamp = max(
            left.timestamp or float("-inf"),
            right.timestamp or float("-inf"),
        )
    return Record(
        record_id="+".join(members),
        source_id=left.source_id,
        attributes=attributes,
        timestamp=timestamp,
    )


@dataclass(frozen=True)
class SwooshResult:
    """Output of an R-Swoosh run."""

    merged_records: tuple[Record, ...]
    clusters: tuple[tuple[str, ...], ...]
    comparisons: int

    @property
    def n_entities(self) -> int:
        """Number of merged records (resolved entities)."""
        return len(self.merged_records)


def r_swoosh(
    records: Sequence[Record],
    match: MatchFunction,
    merge: MergeFunction = union_merge,
    max_comparisons: int | None = None,
) -> SwooshResult:
    """Run R-Swoosh over ``records``.

    Maintains a resolved set R; each candidate record is compared
    against R — on the first match the two are merged and the merge
    re-enters the queue, else the candidate joins R. Terminates with
    the merge closure when ``match``/``merge`` satisfy ICAR.

    ``max_comparisons`` guards against pathological match functions
    (non-ICAR matchers can oscillate); exceeding it raises
    :class:`ConfigurationError`.
    """
    queue: list[Record] = list(records)
    resolved: list[Record] = []
    comparisons = 0
    while queue:
        candidate = queue.pop(0)
        merged_with: int | None = None
        for index, settled in enumerate(resolved):
            comparisons += 1
            if max_comparisons is not None and comparisons > max_comparisons:
                raise ConfigurationError(
                    f"r_swoosh exceeded {max_comparisons} comparisons; "
                    "match/merge may violate ICAR"
                )
            if match(candidate, settled):
                merged_with = index
                break
        if merged_with is None:
            resolved.append(candidate)
        else:
            settled = resolved.pop(merged_with)
            queue.append(merge(candidate, settled))
    clusters = tuple(
        tuple(sorted(record.record_id.split("+"))) for record in resolved
    )
    return SwooshResult(
        merged_records=tuple(resolved),
        clusters=clusters,
        comparisons=comparisons,
    )
