"""Temporal record linkage with similarity decay (Li et al., VLDB'11).

Entities evolve: people move, products get re-specced. A static
matcher treats every disagreement as evidence of non-match, so it
splits an evolving entity across epochs; and it treats every agreement
as full evidence of match, so it merges namesakes observed years
apart. Decay fixes both directions:

* **disagreement decay** — a *mutable* attribute disagreeing across a
  large time gap loses its negative force (the value may simply have
  changed);
* **agreement decay** — a mutable attribute agreeing across a large
  time gap loses some positive force (old values get reused by
  others).

Stable attributes (names, identifiers) never decay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record

__all__ = ["TemporalField", "TemporalMatcher", "link_temporal_stream"]


@dataclass(frozen=True)
class TemporalField:
    """One attribute's role in temporal matching."""

    attribute: str
    similarity: Callable[[str, str], float]
    weight: float = 1.0
    mutable: bool = True

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError("field weight must be positive")


class TemporalMatcher:
    """Scores record pairs with time-decayed agreement/disagreement.

    Per shared field the raw similarity ``s`` becomes signed evidence
    ``e = 2s - 1`` in ``[-1, 1]``. For mutable fields with time gap
    Δt, negative evidence is multiplied by ``exp(-disagreement_decay ·
    Δt)`` and positive evidence by ``exp(-agreement_decay · Δt)``. The
    aggregate is the weight-normalized evidence mapped back to
    ``[0, 1]``. ``decay = 0`` on both rates reproduces a static
    matcher exactly, which is the ablation the experiment runs.
    """

    def __init__(
        self,
        fields: Sequence[TemporalField],
        disagreement_decay: float = 0.5,
        agreement_decay: float = 0.05,
        match_threshold: float = 0.7,
    ) -> None:
        if not fields:
            raise ConfigurationError("at least one temporal field required")
        if disagreement_decay < 0 or agreement_decay < 0:
            raise ConfigurationError("decay rates must be >= 0")
        if not 0.0 <= match_threshold <= 1.0:
            raise ConfigurationError("match_threshold must be in [0, 1]")
        self._fields = tuple(fields)
        self._disagreement_decay = disagreement_decay
        self._agreement_decay = agreement_decay
        self._match_threshold = match_threshold

    @property
    def match_threshold(self) -> float:
        """Score at or above which a pair matches."""
        return self._match_threshold

    def score(self, left: Record, right: Record) -> float:
        """Time-decayed match score of a record pair in [0, 1]."""
        gap = 0.0
        if left.timestamp is not None and right.timestamp is not None:
            gap = abs(left.timestamp - right.timestamp)
        weighted = 0.0
        total_weight = 0.0
        for field in self._fields:
            value_left = left.get(field.attribute)
            value_right = right.get(field.attribute)
            if value_left is None or value_right is None:
                continue
            evidence = 2.0 * field.similarity(value_left, value_right) - 1.0
            if field.mutable and gap > 0:
                if evidence < 0:
                    evidence *= math.exp(-self._disagreement_decay * gap)
                else:
                    evidence *= math.exp(-self._agreement_decay * gap)
            weighted += field.weight * evidence
            total_weight += field.weight
        if total_weight == 0.0:
            return 0.0
        return (weighted / total_weight + 1.0) / 2.0

    def is_match(self, left: Record, right: Record) -> bool:
        """True iff the decayed score reaches the threshold."""
        return self.score(left, right) >= self._match_threshold


def link_temporal_stream(
    records: Sequence[Record],
    matcher: TemporalMatcher,
    compare_last: int = 3,
) -> list[list[str]]:
    """Cluster a time-ordered record stream incrementally.

    Records are processed in timestamp order (early binding). Each new
    record is scored against the ``compare_last`` most recent members
    of every existing cluster and joins the best-scoring cluster above
    the matcher's threshold, else starts its own. Comparing against
    recent members (not the earliest) is what lets a cluster *follow*
    an evolving entity.
    """
    ordered = sorted(
        records, key=lambda r: (r.timestamp or 0.0, r.record_id)
    )
    clusters: list[list[Record]] = []
    for record in ordered:
        best_index = -1
        best_score = matcher.match_threshold
        for index, cluster in enumerate(clusters):
            recent = cluster[-compare_last:]
            score = max(matcher.score(record, member) for member in recent)
            if score >= best_score and (
                best_index == -1 or score > best_score
            ):
                best_index = index
                best_score = score
        if best_index >= 0:
            clusters[best_index].append(record)
        else:
            clusters.append([record])
    return [
        sorted(member.record_id for member in cluster)
        for cluster in clusters
    ]
