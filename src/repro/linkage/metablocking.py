"""Meta-blocking: pruning redundancy-heavy block collections.

Token and q-gram blocking achieve recall through massive redundancy —
true matches co-occur in *many* blocks, random pairs in few. Meta-
blocking (Papadakis et al.) exploits exactly that: build the *blocking
graph* whose nodes are records and whose edges connect records sharing
at least one block, weight each edge by co-occurrence evidence, and
prune weak edges. The four canonical pruning schemes are provided:

* **WEP** — weighted edge pruning: keep edges above the global mean
  weight;
* **CEP** — cardinality edge pruning: keep the globally top-K edges;
* **WNP** — weighted node pruning: per record, keep edges above that
  record's local mean;
* **CNP** — cardinality node pruning: per record, keep its top-k edges.

Edge weights: **CBS** (common blocks — raw co-occurrence count), **JS**
(Jaccard of the two records' block sets), and **ARCS** (sum of
1/‖block‖ over shared blocks, discounting stop-word blocks).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Literal

from repro.core.errors import ConfigurationError
from repro.linkage.blocking.base import BlockCollection
from repro.obs import NULL_TRACER, observe_candidate_pruning

__all__ = ["BlockingGraph", "build_blocking_graph", "meta_block"]

WeightScheme = Literal["cbs", "js", "arcs"]
PruningScheme = Literal["wep", "cep", "wnp", "cnp"]

Edge = frozenset[str]


class BlockingGraph:
    """The weighted blocking graph of a block collection."""

    def __init__(self, weights: dict[Edge, float]) -> None:
        self._weights = weights
        self._adjacency: dict[str, dict[str, float]] = defaultdict(dict)
        for edge, weight in weights.items():
            a, b = sorted(edge)
            self._adjacency[a][b] = weight
            self._adjacency[b][a] = weight

    @property
    def weights(self) -> dict[Edge, float]:
        """Copy of edge → weight."""
        return dict(self._weights)

    @property
    def n_edges(self) -> int:
        """Number of distinct edges (candidate pairs before pruning)."""
        return len(self._weights)

    def neighbors(self, record_id: str) -> dict[str, float]:
        """Neighbor → weight for one record."""
        return dict(self._adjacency.get(record_id, {}))

    def nodes(self) -> list[str]:
        """All record ids participating in at least one edge."""
        return sorted(self._adjacency)

    def mean_weight(self) -> float:
        """Global mean edge weight (the WEP threshold)."""
        if not self._weights:
            return 0.0
        return sum(self._weights.values()) / len(self._weights)


def build_blocking_graph(
    blocks: BlockCollection, weight: WeightScheme = "cbs"
) -> BlockingGraph:
    """Build the blocking graph with the chosen edge-weight scheme."""
    common: dict[Edge, float] = defaultdict(float)
    arcs: dict[Edge, float] = defaultdict(float)
    for block in blocks:
        ids = block.record_ids
        contribution = 1.0 / len(ids) if ids else 0.0
        for i, left in enumerate(ids):
            for right in ids[i + 1 :]:
                if left == right:
                    continue
                edge = frozenset((left, right))
                common[edge] += 1.0
                arcs[edge] += contribution
    if weight == "cbs":
        return BlockingGraph(dict(common))
    if weight == "arcs":
        return BlockingGraph(dict(arcs))
    if weight == "js":
        weights: dict[Edge, float] = {}
        for edge, shared in common.items():
            a, b = tuple(edge)
            total = (
                len(blocks.blocks_of(a))
                + len(blocks.blocks_of(b))
                - shared
            )
            weights[edge] = shared / total if total else 0.0
        return BlockingGraph(weights)
    raise ConfigurationError(f"unknown weight scheme {weight!r}")


def _prune_wep(graph: BlockingGraph) -> set[Edge]:
    threshold = graph.mean_weight()
    return {
        edge
        for edge, weight in graph.weights.items()
        if weight >= threshold
    }


def _prune_cep(graph: BlockingGraph, budget: int) -> set[Edge]:
    ranked = sorted(
        graph.weights.items(),
        key=lambda kv: (-kv[1], tuple(sorted(kv[0]))),
    )
    return {edge for edge, __ in ranked[:budget]}


def _prune_wnp(graph: BlockingGraph) -> set[Edge]:
    kept: set[Edge] = set()
    for node in graph.nodes():
        neighbors = graph.neighbors(node)
        if not neighbors:
            continue
        local_mean = sum(neighbors.values()) / len(neighbors)
        for other, weight in neighbors.items():
            if weight >= local_mean:
                kept.add(frozenset((node, other)))
    return kept


def _prune_cnp(graph: BlockingGraph, k: int) -> set[Edge]:
    kept: set[Edge] = set()
    for node in graph.nodes():
        neighbors = sorted(
            graph.neighbors(node).items(),
            key=lambda kv: (-kv[1], kv[0]),
        )
        for other, __ in neighbors[:k]:
            kept.add(frozenset((node, other)))
    return kept


def meta_block(
    blocks: BlockCollection,
    weight: WeightScheme = "cbs",
    pruning: PruningScheme = "wep",
    cardinality_ratio: float = 0.05,
    node_degree: int | None = None,
    tracer=None,
) -> set[frozenset[str]]:
    """Prune a block collection down to strong candidate pairs.

    Parameters
    ----------
    blocks:
        The (redundancy-positive) input block collection.
    weight:
        Edge weighting scheme: ``"cbs"``, ``"js"``, or ``"arcs"``.
    pruning:
        ``"wep"``, ``"cep"``, ``"wnp"``, or ``"cnp"``.
    cardinality_ratio:
        For CEP: the edge budget as a fraction of the graph's edges.
    node_degree:
        For CNP: per-node edge budget; defaults to
        ``max(1, round(avg block membership))`` following the original
        heuristic.
    tracer:
        An :class:`repro.obs.Tracer` (default no-op) recording a span
        plus retained/pruned-pair counters.

    Returns the retained candidate pairs.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span(
        "metablocking.meta_block", weight=weight, pruning=pruning
    ) as span:
        graph = build_blocking_graph(blocks, weight=weight)
        if pruning == "wep":
            kept = _prune_wep(graph)
        elif pruning == "cep":
            if not 0.0 < cardinality_ratio <= 1.0:
                raise ConfigurationError(
                    "cardinality_ratio must be in (0, 1]"
                )
            budget = max(1, math.ceil(graph.n_edges * cardinality_ratio))
            kept = _prune_cep(graph, budget)
        elif pruning == "wnp":
            kept = _prune_wnp(graph)
        elif pruning == "cnp":
            if node_degree is None:
                nodes = graph.nodes()
                total_memberships = sum(
                    len(blocks.blocks_of(node)) for node in nodes
                )
                node_degree = max(
                    1, round(total_memberships / max(1, len(nodes)))
                )
            if node_degree < 1:
                raise ConfigurationError("node_degree must be >= 1")
            kept = _prune_cnp(graph, node_degree)
        else:
            raise ConfigurationError(f"unknown pruning scheme {pruning!r}")
        observe_candidate_pruning(tracer, graph.n_edges, len(kept))
        span.set("n_edges", graph.n_edges)
        span.set("n_retained", len(kept))
    return kept
