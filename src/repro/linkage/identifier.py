"""Identifier-based linkage: redundancy as a friend.

Product pages publish product identifiers (SKU, MPN, ISBN …) because
marketplaces and shopping agents demand it. That turns web-scale
linkage on its head: instead of fuzzy-matching everything, *detect*
each source's identifier attribute and hard-join on normalized
identifier values. Detection needs no schema knowledge — identifier
columns are near-unique, alphanumeric-with-digits, and consistently
shaped within a source.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.record import Record
from repro.linkage.clustering import connected_components
from repro.schema.attribute_stats import AttributeProfile

__all__ = [
    "IdentifierDetection",
    "detect_identifier_attributes",
    "link_by_identifier",
    "normalize_identifier",
]

_NON_ALNUM = re.compile(r"[^a-z0-9]+")
_HAS_DIGIT = re.compile(r"\d")


def normalize_identifier(value: str) -> str:
    """Canonical identifier form: lowercase, alphanumerics only."""
    return _NON_ALNUM.sub("", value.lower())


@dataclass(frozen=True)
class IdentifierDetection:
    """One source attribute judged to be an identifier, with its score."""

    source_id: str
    attribute: str
    score: float


def _identifier_score(profile: AttributeProfile) -> float:
    """Heuristic identifier-ness of an attribute profile in [0, 1].

    Identifiers are near-unique within a source, carry digits, are
    compact single tokens (no internal whitespace — which separates
    them from product *names*, whose model numbers also contain
    digits), and have plausible lengths (4–32 characters). The signals
    multiply through uniqueness so a non-unique attribute can never
    score high. Attributes seen on very few records are not trusted.
    """
    if profile.n_records < 3:
        return 0.0
    values = list(profile.values)
    if not values:
        return 0.0
    with_digits = sum(1 for v in values if _HAS_DIGIT.search(v))
    digit_fraction = with_digits / len(values)
    lengths = [len(normalize_identifier(v)) for v in values]
    plausible = sum(1 for n in lengths if 4 <= n <= 32)
    length_fraction = plausible / len(lengths)
    single_token = sum(1 for v in values if len(v.split()) == 1)
    single_token_fraction = single_token / len(values)
    shape = (
        0.3 * digit_fraction
        + 0.2 * length_fraction
        + 0.5 * single_token_fraction
    )
    return profile.uniqueness * shape


def detect_identifier_attributes(
    profiles: Mapping[tuple[str, str], AttributeProfile],
    min_score: float = 0.8,
    per_source: int = 1,
) -> list[IdentifierDetection]:
    """Detect each source's most identifier-like attributes.

    Returns up to ``per_source`` attributes per source scoring at least
    ``min_score``, best first.
    """
    by_source: dict[str, list[IdentifierDetection]] = {}
    for (source_id, attribute), profile in profiles.items():
        score = _identifier_score(profile)
        if score >= min_score:
            by_source.setdefault(source_id, []).append(
                IdentifierDetection(source_id, attribute, score)
            )
    detections: list[IdentifierDetection] = []
    for source_id in sorted(by_source):
        ranked = sorted(
            by_source[source_id],
            key=lambda d: (-d.score, d.attribute),
        )
        detections.extend(ranked[:per_source])
    return detections


def link_by_identifier(
    records: Sequence[Record],
    detections: Sequence[IdentifierDetection],
    min_cluster_sources: int = 1,
) -> list[list[str]]:
    """Cluster records sharing a normalized identifier value.

    Only values of detected identifier attributes participate. Values
    shared within a single source are honored too (duplicate listings
    exist). ``min_cluster_sources`` can require identifier clusters to
    span several sources before they are trusted.
    """
    identifier_attributes = {
        (detection.source_id, detection.attribute)
        for detection in detections
    }
    by_value: dict[str, list[Record]] = {}
    for record in records:
        for attribute, value in record.attributes.items():
            if (record.source_id, attribute) not in identifier_attributes:
                continue
            normalized = normalize_identifier(value)
            if len(normalized) < 4:
                continue
            by_value.setdefault(normalized, []).append(record)
    pairs: list[tuple[str, str]] = []
    for value in sorted(by_value):
        group = by_value[value]
        if len(group) < 2:
            continue
        sources = {record.source_id for record in group}
        if len(sources) < min_cluster_sources:
            continue
        anchor = group[0].record_id
        for other in group[1:]:
            pairs.append((anchor, other.record_id))
    all_ids = [record.record_id for record in records]
    return connected_components(pairs, all_ids)
