"""The fast pair-comparison engine.

Candidate-pair comparison is the quadratic hot path of the whole
linkage stack; this module makes it fast at three layers, each strictly
preserving the output of the naive path:

1. **Prepared records** — :func:`prepare_records` normalizes,
   tokenizes, and parses measurements for every record *once*
   (:class:`~repro.linkage.comparison.PreparedRecord`), so per-pair
   work collapses to pure similarity arithmetic.
2. **Staged early-exit scoring** — when the classifier is a plain
   threshold rule, fields are evaluated cheap-to-expensive and scoring
   stops as soon as the pair provably cannot reach (or cannot fall
   below) the threshold
   (:meth:`~repro.linkage.comparison.RecordComparator.score_bounded`).
3. **Multiprocess execution** — :class:`ParallelComparisonEngine` with
   ``execution="process"`` fans chunked pair batches out over a
   :class:`~concurrent.futures.ProcessPoolExecutor`; each worker keeps
   its own prepared-record cache, and results reassemble in input
   order so output is identical to the serial path.
4. **Columnar batch scoring** — ``representation="columnar"`` packs
   prepared records into per-field numpy columns
   (:mod:`repro.columnar`) and scores whole chunks per call with
   vectorized kernels plus a vectorized early-exit mask, falling back
   to the scalar path only for the residual pairs that survive it.
   Orthogonal to ``execution`` and streaming; output stays
   bit-identical to the dict representation.

Records must be immutable after preparation (library records are
immutable by construction); a prepared record is only meaningful to
the comparator that produced it.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Iterable, Literal, Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.linkage.classify.threshold import ThresholdClassifier
from repro.linkage.comparison import (
    ComparisonVector,
    PreparedRecord,
    RecordComparator,
)
from repro.obs import NULL_TRACER, SCORE_BUCKETS
from repro.resilience import (
    ChunkResultInvalid,
    ChunkTimeoutError,
    DeadLetterLog,
    ResilienceConfig,
)
from repro.resilience.executor import ResilientChunkExecutor

__all__ = [
    "EngineRun",
    "ParallelComparisonEngine",
    "PreparedRecord",
    "prepare_records",
]

#: ``"sharded"`` is accepted by :func:`repro.linkage.resolve` (which
#: routes it to :mod:`repro.dist.runtime`); the engine itself executes
#: only ``"serial"`` and ``"process"``.
ExecutionMode = Literal["serial", "process", "sharded"]
Representation = Literal["dict", "columnar"]

IdPair = tuple[str, str]

# Checkpointing without an explicit ResilienceConfig routes through the
# resilient chunked path under this fail-fast config: one attempt, no
# retries, abort on first failure — the same semantics as the
# non-resilient path (and serial-chunked output is asserted identical
# to unchunked in tests/test_resilience.py), but chunk results flow
# through the executor where they can be persisted and replayed.
_CHECKPOINT_PASSTHROUGH = ResilienceConfig(failure="fail")


def prepare_records(
    comparator: RecordComparator, records: Iterable[Record]
) -> dict[str, PreparedRecord]:
    """Prepare every record once, keyed by record id."""
    return {
        record.record_id: comparator.prepare(record) for record in records
    }


@dataclass(frozen=True)
class EngineRun:
    """Everything one engine pass over a pair list produced.

    ``scored_edges`` lists ``(left_id, right_id, score)`` for matched
    pairs in input-pair order, with scores identical to full
    comparison. ``n_early_exit`` counts pairs the staged scorer
    decided without evaluating every field (0 for non-threshold
    classifiers, which always score fully).

    The last fields carry the run's fault-tolerance outcome (only
    populated when the engine was built with a
    :class:`~repro.resilience.ResilienceConfig`): the dead-letter log
    of quarantined work, the quarantined pairs themselves, and the
    ``completed_chunks``/``n_chunks`` split — partial-result semantics
    for runs that survived worker failures. ``replayed_chunks`` counts
    chunks restored from a checkpoint store instead of recomputed (0
    for fresh runs and when checkpointing is off).
    """

    match_pairs: set[frozenset[str]]
    scored_edges: list[tuple[str, str, float]]
    n_pairs: int
    n_early_exit: int
    execution: str
    n_workers: int
    dead_letters: DeadLetterLog = field(default_factory=DeadLetterLog)
    quarantined_pairs: tuple[IdPair, ...] = ()
    completed_chunks: int = 0
    n_chunks: int = 0
    representation: str = "dict"
    replayed_chunks: int = 0


# --- worker-side state for the process backend -----------------------
#
# Initialized once per worker process; the prepared cache fills lazily
# as the worker's chunks reference records, so each record is prepared
# at most once per worker. Columnar workers instead receive the whole
# block at pool startup (its transient memo caches ship empty and
# refill per worker).

_WORKER: dict = {}


def _worker_init(comparator: RecordComparator, records: list[Record]) -> None:
    _WORKER["comparator"] = comparator
    _WORKER["by_id"] = {record.record_id: record for record in records}
    _WORKER["prepared"] = {}


def _worker_prepared(record_id: str) -> PreparedRecord:
    cache = _WORKER["prepared"]
    prepared = cache.get(record_id)
    if prepared is None:
        prepared = _WORKER["comparator"].prepare(_WORKER["by_id"][record_id])
        cache[record_id] = prepared
    return prepared


def _chunk_cache_stats(pairs: list[IdPair], misses: int) -> dict[str, int]:
    """Worker-side counter snapshot for one chunk.

    Each pair performs two prepared-cache lookups; every lookup that
    did not add a cache entry was a hit. These plain dicts are the
    degenerate form of the obs collection protocol
    (:meth:`repro.obs.MetricsRegistry.merge_counters`) — the parent
    folds them into its registry after the chunk result arrives.
    """
    return {
        "engine.prepared_cache_misses": misses,
        "engine.prepared_cache_hits": 2 * len(pairs) - misses,
    }


def _score_chunk(
    pairs: list[IdPair],
) -> tuple[list[ComparisonVector], dict[str, int]]:
    comparator: RecordComparator = _WORKER["comparator"]
    cache_before = len(_WORKER["prepared"])
    vectors = [
        comparator.compare_prepared(
            _worker_prepared(left), _worker_prepared(right)
        )
        for left, right in pairs
    ]
    misses = len(_WORKER["prepared"]) - cache_before
    return vectors, _chunk_cache_stats(pairs, misses)


def _match_chunk(
    args: tuple[list[IdPair], float],
) -> tuple[list[tuple[str, str, float]], int, dict[str, int]]:
    pairs, threshold = args
    comparator: RecordComparator = _WORKER["comparator"]
    cache_before = len(_WORKER["prepared"])
    matches: list[tuple[str, str, float]] = []
    n_early = 0
    for left, right in pairs:
        bounded = comparator.score_bounded(
            _worker_prepared(left),
            _worker_prepared(right),
            threshold,
            exact_scores=True,
        )
        if not bounded.exact:
            n_early += 1
        if bounded.is_match:
            matches.append((left, right, bounded.score))
    misses = len(_WORKER["prepared"]) - cache_before
    return matches, n_early, _chunk_cache_stats(pairs, misses)


# --- worker-side paths for the streaming (out-of-core) backend -------
#
# Streamed runs cannot ship the whole corpus to workers at pool
# startup, so the pool is initialized with the comparator only and each
# chunk carries the records it references; the per-chunk prepared dict
# plays the cache role, keeping worker residency bounded by chunk size.


def _stream_worker_init(comparator: RecordComparator) -> None:
    _WORKER["comparator"] = comparator


def _match_chunk_shipped(
    args: tuple[list[IdPair], dict[str, Record], float],
) -> tuple[list[tuple[str, str, float]], int, dict[str, int]]:
    pairs, records, threshold = args
    comparator: RecordComparator = _WORKER["comparator"]
    prepared: dict[str, PreparedRecord] = {}

    def prepared_for(record_id: str) -> PreparedRecord:
        entry = prepared.get(record_id)
        if entry is None:
            entry = comparator.prepare(records[record_id])
            prepared[record_id] = entry
        return entry

    matches: list[tuple[str, str, float]] = []
    n_early = 0
    for left, right in pairs:
        bounded = comparator.score_bounded(
            prepared_for(left),
            prepared_for(right),
            threshold,
            exact_scores=True,
        )
        if not bounded.exact:
            n_early += 1
        if bounded.is_match:
            matches.append((left, right, bounded.score))
    return matches, n_early, _chunk_cache_stats(pairs, len(prepared))


def _score_chunk_shipped(
    args: tuple[list[IdPair], dict[str, Record]],
) -> tuple[list[ComparisonVector], dict[str, int]]:
    pairs, records = args
    comparator: RecordComparator = _WORKER["comparator"]
    prepared: dict[str, PreparedRecord] = {}

    def prepared_for(record_id: str) -> PreparedRecord:
        entry = prepared.get(record_id)
        if entry is None:
            entry = comparator.prepare(records[record_id])
            prepared[record_id] = entry
        return entry

    vectors = [
        comparator.compare_prepared(prepared_for(left), prepared_for(right))
        for left, right in pairs
    ]
    return vectors, _chunk_cache_stats(pairs, len(prepared))


# --- worker-side paths for the columnar representation ---------------
#
# Non-streamed columnar runs build the block once in the parent and
# ship it whole via pool initargs (interned columns are far smaller
# than the record list the dict representation ships). Streamed runs
# ship each chunk's records and let the worker build a chunk-local
# block — same residency bound as the shipped dict path.


def _columnar_worker_init(block) -> None:
    _WORKER["block"] = block


def _columnar_match_chunk(
    args: tuple[list[IdPair], float],
) -> tuple[list[tuple[str, str, float]], int, dict[str, int]]:
    from repro.columnar import match_id_pairs

    pairs, threshold = args
    return match_id_pairs(_WORKER["block"], pairs, threshold)


def _columnar_score_chunk(
    pairs: list[IdPair],
) -> tuple[list[ComparisonVector], dict[str, int]]:
    from repro.columnar import score_id_pairs

    return score_id_pairs(_WORKER["block"], pairs)


def _columnar_match_chunk_shipped(
    args: tuple[list[IdPair], dict[str, Record], float],
) -> tuple[list[tuple[str, str, float]], int, dict[str, int]]:
    from repro.columnar import build_block, match_id_pairs

    pairs, records, threshold = args
    block = build_block(_WORKER["comparator"], records)
    return match_id_pairs(block, pairs, threshold)


def _columnar_score_chunk_shipped(
    args: tuple[list[IdPair], dict[str, Record]],
) -> tuple[list[ComparisonVector], dict[str, int]]:
    from repro.columnar import build_block, score_id_pairs

    pairs, records = args
    block = build_block(_WORKER["comparator"], records)
    return score_id_pairs(block, pairs)


class _BoundedPreparedCache:
    """An LRU prepared-record cache tracked against a memory budget.

    The serial streaming backend's replacement for the unbounded
    prepared dict: entries are charged to the shared
    :class:`repro.outofcore.MemoryBudget` (a small multiple of the raw
    record payload) and evicted least-recently-used when an insert
    would exceed it. Without a budget it degrades to an unbounded
    cache with hit/miss counting.
    """

    def __init__(
        self,
        comparator: RecordComparator,
        by_id: Mapping[str, Record],
        budget,
    ) -> None:
        from collections import OrderedDict

        self._comparator = comparator
        self._by_id = by_id
        self._budget = budget
        self._cache: "OrderedDict[str, tuple[PreparedRecord, int]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def get(self, record_id: str) -> PreparedRecord:
        entry = self._cache.get(record_id)
        if entry is not None:
            self._cache.move_to_end(record_id)
            self.hits += 1
            return entry[0]
        self.misses += 1
        record = self._by_id[record_id]
        prepared = self._comparator.prepare(record)
        cost = 0
        if self._budget is not None:
            from repro.outofcore.budget import (
                PREPARED_RECORD_FACTOR,
                record_nbytes,
            )

            cost = PREPARED_RECORD_FACTOR * record_nbytes(record)
            while self._cache and self._budget.would_exceed(cost):
                __, (___, old_cost) = self._cache.popitem(last=False)
                self._budget.remove(old_cost)
            if self._budget.would_exceed(cost):
                # Another component holds the remaining budget; serve
                # the prepared record uncached rather than exceed it.
                return prepared
            self._budget.add(cost)
        self._cache[record_id] = (prepared, cost)
        return prepared

    def release(self) -> None:
        if self._budget is not None:
            for __, cost in self._cache.values():
                self._budget.remove(cost)
        self._cache.clear()


# --- chunk-result validation (garbage detection) ---------------------
#
# The resilient executor runs these after every chunk attempt; a result
# whose shape is wrong — a worker that OOMed mid-pickle, a fault
# injector returning garbage — becomes a retryable failure instead of
# a crash (or worse, silent corruption) further downstream.


def _fold_stats(acc: dict[str, int], stats: Mapping[str, int]) -> None:
    """Accumulate one chunk's stats dict into ``acc``, key by key.

    Chunk workers report whatever counters their path tracks (the
    prepared-cache pair for the dict representation, plus the
    vectorized/residual pair split for columnar kernels); folding
    generically keeps the parent agnostic of the representation.
    """
    for key, value in stats.items():
        acc[key] = acc.get(key, 0) + value


def _validate_score_result(pairs: list[IdPair], value) -> None:
    if (
        not isinstance(value, tuple)
        or len(value) != 2
        or not isinstance(value[0], list)
        or len(value[0]) != len(pairs)
        or not isinstance(value[1], dict)
    ):
        raise ChunkResultInvalid(
            f"score chunk of {len(pairs)} pairs returned {value!r:.80}"
        )


def _validate_match_result(pairs: list[IdPair], value) -> None:
    if (
        not isinstance(value, tuple)
        or len(value) != 3
        or not isinstance(value[0], list)
        or len(value[0]) > len(pairs)
        or not isinstance(value[1], int)
        or not isinstance(value[2], dict)
    ):
        raise ChunkResultInvalid(
            f"match chunk of {len(pairs)} pairs returned {value!r:.80}"
        )


class _PoolRunner:
    """Submits chunks to a worker pool with timeout and self-healing.

    A timed-out future cannot reclaim its worker and a crashed worker
    breaks the whole pool, so on either event the pool is torn down and
    lazily rebuilt for the next attempt — the retried chunk lands on
    fresh workers.
    """

    def __init__(self, make_pool: Callable[[], ProcessPoolExecutor]) -> None:
        self._make_pool = make_pool
        self._pool: ProcessPoolExecutor | None = None

    def submit(self, fn, arg, timeout: float | None):
        if self._pool is None:
            self._pool = self._make_pool()
        future = self._pool.submit(fn, arg)
        try:
            return future.result(timeout=timeout)
        except FuturesTimeout:
            future.cancel()
            self._recycle()
            raise ChunkTimeoutError(timeout) from None
        except BrokenProcessPool:
            self._recycle()
            raise

    def _recycle(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ParallelComparisonEngine:
    """Executes pair comparisons with prepared records, early exit, and
    an optional multiprocess backend.

    Parameters
    ----------
    comparator:
        The comparison rules. For ``execution="process"`` it must be
        picklable (the built-in comparators are).
    execution:
        ``"serial"`` runs in-process; ``"process"`` fans chunked pair
        batches out over ``n_workers`` OS processes. Both produce
        identical output.
    representation:
        ``"dict"`` (the default) scores pairs one at a time over
        prepared records; ``"columnar"`` packs the records into a
        :class:`repro.columnar.ColumnarBlock` and scores whole chunks
        per call with the vectorized batch kernels. Orthogonal to
        ``execution``, streaming, resilience, and checkpointing —
        every combination produces bit-identical output (the columnar
        representation always routes through the chunked executor, so
        chunk checkpoints are even interchangeable between
        representations).
    n_workers:
        Process count for the process backend (default: CPU count).
    chunk_size:
        Maximum pairs per worker task; the engine shrinks chunks when
        the pair list is small so every worker gets work.
    tracer:
        An :class:`repro.obs.Tracer` to record spans and counters into
        (pairs compared, early exits, prepared-cache hits, matched-score
        histogram, chunk counts). Defaults to the no-op
        :data:`repro.obs.NULL_TRACER`, whose overhead is below bench
        noise. Counters are always touched, so an empty pair list or
        fewer chunks than workers still yields a well-formed zeroed
        report.
    resilience:
        A :class:`~repro.resilience.ResilienceConfig` to survive worker
        failures: crashed, hung, or garbage-returning chunks are
        retried with backoff, bisected down to the poison pair, and —
        under ``failure="skip"`` — quarantined into a
        :class:`~repro.resilience.DeadLetterLog` carried on the
        :class:`EngineRun`, rather than aborting the run. ``None``
        (the default) keeps the zero-overhead fail-fast path; serial
        execution is then also chunked so both backends recover
        identically.
    checkpoint:
        An optional checkpoint store (a :class:`repro.recovery.RunStore`,
        a view of one, or a directory path to open a store at).
        Completed chunk results are durably saved as
        they finish, and a rerun of the same workload against the same
        store resumes from the last completed chunk instead of
        recomputing. Works with or without ``resilience``: without it,
        work routes through the chunked path under a fail-fast
        pass-through config whose output is identical to the plain
        path.
    """

    def __init__(
        self,
        comparator: RecordComparator,
        execution: ExecutionMode = "serial",
        n_workers: int | None = None,
        chunk_size: int = 2048,
        tracer=None,
        resilience: ResilienceConfig | None = None,
        checkpoint=None,
        representation: Representation = "dict",
    ) -> None:
        if execution not in ("serial", "process"):
            raise ConfigurationError(f"unknown execution mode {execution!r}")
        if representation not in ("dict", "columnar"):
            raise ConfigurationError(
                f"unknown representation {representation!r}"
            )
        if n_workers is not None and n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        if resilience is not None and not isinstance(
            resilience, ResilienceConfig
        ):
            raise ConfigurationError(
                "resilience must be a ResilienceConfig or None"
            )
        self._comparator = comparator
        self._execution: ExecutionMode = execution
        self._representation: Representation = representation
        self._n_workers = n_workers or os.cpu_count() or 1
        self._chunk_size = chunk_size
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._resilience = resilience
        if isinstance(checkpoint, (str, os.PathLike)):
            from repro.recovery import RunStore

            checkpoint = RunStore(checkpoint)
        self._checkpoint = checkpoint
        self._last_dead_letters: DeadLetterLog | None = None

    @property
    def comparator(self) -> RecordComparator:
        """The comparison rules this engine executes."""
        return self._comparator

    @property
    def execution(self) -> str:
        """The configured execution mode."""
        return self._execution

    @property
    def representation(self) -> str:
        """The configured record representation."""
        return self._representation

    @property
    def n_workers(self) -> int:
        """Worker-process count used by the process backend."""
        return self._n_workers

    @property
    def resilience(self) -> ResilienceConfig | None:
        """The fault-tolerance configuration, if any."""
        return self._resilience

    @property
    def dead_letters(self) -> DeadLetterLog | None:
        """Quarantined work from the most recent call, if resilient.

        :meth:`match_pairs` also carries this on the returned
        :class:`EngineRun`; this property is how
        :meth:`compare_pairs` callers reach it.
        """
        return self._last_dead_letters

    # --- helpers -----------------------------------------------------

    @staticmethod
    def _by_id(
        records: Sequence[Record] | Mapping[str, Record],
    ) -> Mapping[str, Record]:
        if isinstance(records, Mapping):
            return records
        return {record.record_id: record for record in records}

    def _valid_pairs(
        self,
        by_id: Mapping[str, Record],
        pairs: Iterable[IdPair],
    ) -> list[IdPair]:
        """Drop pairs referencing unknown ids (mirrors the naive loops)."""
        return [
            (left, right)
            for left, right in pairs
            if left in by_id and right in by_id
        ]

    def _chunks(self, pairs: list[IdPair]) -> list[list[IdPair]]:
        size = max(
            1,
            min(
                self._chunk_size,
                math.ceil(len(pairs) / max(1, self._n_workers)),
            ),
        )
        return [pairs[i : i + size] for i in range(0, len(pairs), size)]

    def _prepared_lookup(
        self, by_id: Mapping[str, Record], pairs: list[IdPair]
    ) -> dict[str, PreparedRecord]:
        """Prepare exactly the records the pair list references."""
        prepared: dict[str, PreparedRecord] = {}
        comparator = self._comparator
        for left, right in pairs:
            if left not in prepared:
                prepared[left] = comparator.prepare(by_id[left])
            if right not in prepared:
                prepared[right] = comparator.prepare(by_id[right])
        if self._tracer is not NULL_TRACER:
            from repro.outofcore.budget import (
                PREPARED_RECORD_FACTOR,
                record_nbytes,
            )

            self._tracer.gauge("engine.prepared_bytes").set(
                sum(
                    PREPARED_RECORD_FACTOR * record_nbytes(by_id[record_id])
                    for record_id in prepared
                )
            )
        return prepared

    def _build_block(self, by_id: Mapping[str, Record]):
        """Columnarize the corpus once, publishing its size gauge."""
        from repro.columnar import build_block

        block = build_block(self._comparator, by_id.values())
        if self._tracer is not NULL_TRACER:
            self._tracer.gauge("columnar.block_bytes").set(block.nbytes)
        return block

    # --- public API --------------------------------------------------

    def compare_pairs(
        self,
        records: Sequence[Record] | Mapping[str, Record],
        pairs: Sequence[IdPair],
    ) -> list[ComparisonVector]:
        """Full comparison vectors for ``pairs``, in input order.

        Byte-identical to calling
        :meth:`RecordComparator.compare` per pair, at prepared-record
        speed; the process backend reassembles chunk results in order.
        """
        by_id = self._by_id(records)
        valid = self._valid_pairs(by_id, pairs)
        if (
            self._resilience is not None
            or self._checkpoint is not None
            or self._representation == "columnar"
        ):
            # Columnar scoring always runs through the chunked executor
            # (fail-fast pass-through when no resilience is configured):
            # one batch-kernel path covers plain, resilient, and
            # checkpointed runs alike.
            return self._compare_pairs_resilient(by_id, valid)
        tracer = self._tracer
        with tracer.span(
            "engine.compare_pairs",
            execution=self._execution,
            n_workers=self._n_workers,
        ) as span:
            vectors: list[ComparisonVector] = []
            cache_hits = cache_misses = n_chunks = 0
            if valid and self._execution == "process":
                chunks = self._chunks(valid)
                n_chunks = len(chunks)
                heartbeat = tracer.gauge("engine.chunks_done")
                with self._executor(by_id) as executor:
                    for done, (chunk_vectors, stats) in enumerate(
                        executor.map(_score_chunk, chunks), start=1
                    ):
                        vectors.extend(chunk_vectors)
                        cache_hits += stats["engine.prepared_cache_hits"]
                        cache_misses += stats["engine.prepared_cache_misses"]
                        heartbeat.set(done)
            elif valid:
                prepared = self._prepared_lookup(by_id, valid)
                cache_misses = len(prepared)
                cache_hits = 2 * len(valid) - cache_misses
                comparator = self._comparator
                vectors = [
                    comparator.compare_prepared(
                        prepared[left], prepared[right]
                    )
                    for left, right in valid
                ]
            tracer.counter("engine.pairs_total").inc(len(valid))
            tracer.counter("engine.prepared_cache_hits").inc(cache_hits)
            tracer.counter("engine.prepared_cache_misses").inc(cache_misses)
            tracer.counter("engine.chunks").inc(n_chunks)
            span.set("n_pairs", len(valid))
        return vectors

    def match_pairs(
        self,
        records: Sequence[Record] | Mapping[str, Record],
        pairs: Sequence[IdPair],
        classifier,
    ) -> EngineRun:
        """Classify every pair, skipping provably-decided work.

        When ``classifier`` is a :class:`ThresholdClassifier` the staged
        early-exit scorer decides most non-matches after the cheap
        fields; matches are always scored fully, so ``scored_edges``
        carries exact scores. Other classifiers get full vectors.
        """
        by_id = self._by_id(records)
        valid = self._valid_pairs(by_id, pairs)
        threshold: float | None = None
        if isinstance(classifier, ThresholdClassifier):
            threshold = classifier.match_threshold
        if (
            self._resilience is not None
            or self._checkpoint is not None
            or self._representation == "columnar"
        ):
            return self._match_pairs_resilient(
                by_id, valid, classifier, threshold
            )
        tracer = self._tracer
        match_pairs: set[frozenset[str]] = set()
        scored_edges: list[tuple[str, str, float]] = []
        n_early = 0
        cache_hits = cache_misses = n_chunks = 0
        with tracer.span(
            "engine.match_pairs",
            execution=self._execution,
            n_workers=self._n_workers,
        ) as span:
            started = tracer.time()
            if valid and self._execution == "process":
                chunks = self._chunks(valid)
                n_chunks = len(chunks)
                heartbeat = tracer.gauge("engine.chunks_done")
                with self._executor(by_id) as executor:
                    if threshold is not None:
                        chunk_args = [
                            (chunk, threshold) for chunk in chunks
                        ]
                        for done, (matches, chunk_early, stats) in enumerate(
                            executor.map(_match_chunk, chunk_args), start=1
                        ):
                            n_early += chunk_early
                            cache_hits += stats[
                                "engine.prepared_cache_hits"
                            ]
                            cache_misses += stats[
                                "engine.prepared_cache_misses"
                            ]
                            heartbeat.set(done)
                            for left, right, score in matches:
                                match_pairs.add(frozenset((left, right)))
                                scored_edges.append((left, right, score))
                    else:
                        for done, (chunk_vectors, stats) in enumerate(
                            executor.map(_score_chunk, chunks), start=1
                        ):
                            cache_hits += stats[
                                "engine.prepared_cache_hits"
                            ]
                            cache_misses += stats[
                                "engine.prepared_cache_misses"
                            ]
                            heartbeat.set(done)
                            for vector in chunk_vectors:
                                if classifier.is_match(vector):
                                    match_pairs.add(
                                        frozenset(
                                            (vector.left_id, vector.right_id)
                                        )
                                    )
                                    scored_edges.append(
                                        (
                                            vector.left_id,
                                            vector.right_id,
                                            vector.score,
                                        )
                                    )
            elif valid:
                prepared = self._prepared_lookup(by_id, valid)
                cache_misses = len(prepared)
                cache_hits = 2 * len(valid) - cache_misses
                comparator = self._comparator
                for left, right in valid:
                    if threshold is not None:
                        bounded = comparator.score_bounded(
                            prepared[left],
                            prepared[right],
                            threshold,
                            exact_scores=True,
                        )
                        if not bounded.exact:
                            n_early += 1
                        if bounded.is_match:
                            match_pairs.add(frozenset((left, right)))
                            scored_edges.append(
                                (left, right, bounded.score)
                            )
                    else:
                        vector = comparator.compare_prepared(
                            prepared[left], prepared[right]
                        )
                        if classifier.is_match(vector):
                            match_pairs.add(frozenset((left, right)))
                            scored_edges.append(
                                (left, right, vector.score)
                            )
            elapsed = tracer.time() - started
            self._record_match_metrics(
                span,
                n_pairs=len(valid),
                scored_edges=scored_edges,
                n_early=n_early,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                n_chunks=n_chunks,
                elapsed=elapsed,
            )
        return EngineRun(
            match_pairs,
            scored_edges,
            len(valid),
            n_early,
            self._execution,
            self._n_workers,
            representation=self._representation,
        )

    def match_pairs_stream(
        self,
        records: Sequence[Record] | Mapping[str, Record],
        pairs: Iterable[IdPair],
        classifier,
        budget=None,
    ) -> EngineRun:
        """Classify a lazily produced pair stream with bounded memory.

        ``pairs`` may be any iterable — typically the sorted-unique
        merge off a spill (:class:`repro.outofcore.ExternalPairDeduper`)
        — consumed once, chunked lazily, and never materialized as a
        list. Output is identical to :meth:`match_pairs` over the same
        pairs in the same order. ``records`` is usually a lazy mapping
        (:class:`repro.outofcore.IndexedRecordStore`); the serial
        backend holds prepared records in an LRU charged to ``budget``
        (a :class:`repro.outofcore.MemoryBudget`, optional), while the
        process backend ships each chunk's records with the chunk so
        worker residency is bounded by chunk size.

        Resilience, checkpointing, and dead-lettering apply per chunk
        exactly as in :meth:`match_pairs`: the executor persists and
        replays chunk results by index and content signature, so a
        killed streamed run resumes mid-stream.
        """
        by_id = self._by_id(records)
        threshold: float | None = None
        if isinstance(classifier, ThresholdClassifier):
            threshold = classifier.match_threshold
        tracer = self._tracer
        match_pairs: set[frozenset[str]] = set()
        scored_edges: list[tuple[str, str, float]] = []
        counts = {"pairs": 0, "early": 0}
        folded: dict[str, int] = {}
        with tracer.span(
            "engine.match_pairs",
            execution=self._execution,
            n_workers=self._n_workers,
            streaming=True,
        ) as span:
            started = tracer.time()
            run_attempt, close = self._stream_runner(by_id, threshold, budget)
            if threshold is not None:
                validate = _validate_match_result
                executor = self._chunk_executor("match")
            else:
                validate = _validate_score_result
                executor = self._chunk_executor("score")

            def feed():
                chunk: list[IdPair] = []
                for left, right in pairs:
                    if left not in by_id or right not in by_id:
                        continue
                    chunk.append((left, right))
                    counts["pairs"] += 1
                    if len(chunk) >= self._chunk_size:
                        yield chunk
                        chunk = []
                if chunk:
                    yield chunk

            def consume(chunk_pairs, value) -> None:
                if threshold is not None:
                    matches, chunk_early, stats = value
                    counts["early"] += chunk_early
                    for left, right, score in matches:
                        match_pairs.add(frozenset((left, right)))
                        scored_edges.append((left, right, score))
                else:
                    chunk_vectors, stats = value
                    for vector in chunk_vectors:
                        if classifier.is_match(vector):
                            match_pairs.add(
                                frozenset((vector.left_id, vector.right_id))
                            )
                            scored_edges.append(
                                (vector.left_id, vector.right_id, vector.score)
                            )
                _fold_stats(folded, stats)

            try:
                outcome = executor.run_stream(
                    feed(), run_attempt, validate, consume
                )
            finally:
                close()
            cache_hits, cache_misses = self._publish_chunk_counters(folded)
            elapsed = tracer.time() - started
            self._record_match_metrics(
                span,
                n_pairs=counts["pairs"],
                scored_edges=scored_edges,
                n_early=counts["early"],
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                n_chunks=outcome.n_chunks,
                elapsed=elapsed,
            )
            quarantined = tuple(outcome.quarantined_items)
            self._last_dead_letters = outcome.dead_letters
            span.set("n_quarantined", len(quarantined))
            span.set("completed_chunks", outcome.completed_chunks)
        return EngineRun(
            match_pairs,
            scored_edges,
            counts["pairs"],
            counts["early"],
            self._execution,
            self._n_workers,
            dead_letters=outcome.dead_letters,
            quarantined_pairs=quarantined,
            completed_chunks=outcome.completed_chunks,
            n_chunks=outcome.n_chunks,
            representation=self._representation,
            replayed_chunks=outcome.replayed_chunks,
        )

    def _stream_runner(
        self,
        by_id: Mapping[str, Record],
        threshold: float | None,
        budget,
    ):
        """``(run_attempt, close)`` for the streaming backends."""

        def chunk_records(pairs: list[IdPair]) -> dict[str, Record]:
            records: dict[str, Record] = {}
            for left, right in pairs:
                if left not in records:
                    records[left] = by_id[left]
                if right not in records:
                    records[right] = by_id[right]
            return records

        if self._representation == "columnar":
            return self._columnar_stream_runner(
                chunk_records, threshold, budget
            )
        if self._execution == "process":
            pool = _PoolRunner(
                lambda: ProcessPoolExecutor(
                    max_workers=self._n_workers,
                    initializer=_stream_worker_init,
                    initargs=(self._comparator,),
                )
            )
            if threshold is not None:
                def run(pairs: list[IdPair], timeout):
                    return pool.submit(
                        _match_chunk_shipped,
                        (pairs, chunk_records(pairs), threshold),
                        timeout,
                    )
            else:
                def run(pairs: list[IdPair], timeout):
                    return pool.submit(
                        _score_chunk_shipped,
                        (pairs, chunk_records(pairs)),
                        timeout,
                    )
            return run, pool.close
        cache = _BoundedPreparedCache(self._comparator, by_id, budget)
        comparator = self._comparator
        if threshold is not None:
            def run(pairs: list[IdPair], timeout):
                hits, misses = cache.hits, cache.misses
                matches: list[tuple[str, str, float]] = []
                n_early = 0
                for left, right in pairs:
                    bounded = comparator.score_bounded(
                        cache.get(left),
                        cache.get(right),
                        threshold,
                        exact_scores=True,
                    )
                    if not bounded.exact:
                        n_early += 1
                    if bounded.is_match:
                        matches.append((left, right, bounded.score))
                return matches, n_early, {
                    "engine.prepared_cache_hits": cache.hits - hits,
                    "engine.prepared_cache_misses": cache.misses - misses,
                }
        else:
            def run(pairs: list[IdPair], timeout):
                hits, misses = cache.hits, cache.misses
                vectors = [
                    comparator.compare_prepared(
                        cache.get(left), cache.get(right)
                    )
                    for left, right in pairs
                ]
                return vectors, {
                    "engine.prepared_cache_hits": cache.hits - hits,
                    "engine.prepared_cache_misses": cache.misses - misses,
                }
        return run, cache.release

    def _columnar_stream_runner(self, chunk_records, threshold, budget):
        """Streaming runners that columnarize each chunk's records.

        The process backend ships each chunk's records and lets the
        worker build a chunk-local block (residency bounded by chunk
        size, like the shipped dict path); the serial backend builds
        the block in-process, charging its deterministic byte estimate
        to ``budget`` for the chunk's lifetime — and, like the bounded
        prepared cache on the dict path, never past the limit: a chunk
        whose block would exceed the remaining budget is split in half
        until each sub-block fits (pairs score independently, so the
        concatenated results are bit-identical). Only a single pair
        whose own block exceeds the budget is charged past the limit,
        mirroring the dict cache's one-resident-record floor.
        """
        if self._execution == "process":
            pool = _PoolRunner(
                lambda: ProcessPoolExecutor(
                    max_workers=self._n_workers,
                    initializer=_stream_worker_init,
                    initargs=(self._comparator,),
                )
            )
            if threshold is not None:
                def run(pairs: list[IdPair], timeout):
                    return pool.submit(
                        _columnar_match_chunk_shipped,
                        (pairs, chunk_records(pairs), threshold),
                        timeout,
                    )
            else:
                def run(pairs: list[IdPair], timeout):
                    return pool.submit(
                        _columnar_score_chunk_shipped,
                        (pairs, chunk_records(pairs)),
                        timeout,
                    )
            return run, pool.close

        from repro.columnar import (
            build_block,
            match_id_pairs,
            score_id_pairs,
        )
        from repro.outofcore.budget import columnar_block_nbytes

        comparator = self._comparator
        tracer = self._tracer

        def with_chunk_block(pairs: list[IdPair], kernel, merge):
            block = build_block(comparator, chunk_records(pairs))
            cost = columnar_block_nbytes(block)
            if (
                budget is not None
                and len(pairs) > 1
                and budget.would_exceed(cost)
            ):
                mid = len(pairs) // 2
                return merge(
                    with_chunk_block(pairs[:mid], kernel, merge),
                    with_chunk_block(pairs[mid:], kernel, merge),
                )
            if tracer is not NULL_TRACER:
                tracer.gauge("columnar.block_bytes").set(cost)
            if budget is not None:
                budget.add(cost)
            try:
                return kernel(block, pairs)
            finally:
                if budget is not None:
                    budget.remove(cost)

        if threshold is not None:
            def merge(a, b):
                stats = dict(a[2])
                _fold_stats(stats, b[2])
                return a[0] + b[0], a[1] + b[1], stats

            def run(pairs: list[IdPair], timeout):
                return with_chunk_block(
                    pairs,
                    lambda block, chunk: match_id_pairs(
                        block, chunk, threshold
                    ),
                    merge,
                )
        else:
            def merge(a, b):
                stats = dict(a[1])
                _fold_stats(stats, b[1])
                return a[0] + b[0], stats

            def run(pairs: list[IdPair], timeout):
                return with_chunk_block(pairs, score_id_pairs, merge)
        return run, lambda: None

    # --- resilient execution -----------------------------------------
    #
    # With a ResilienceConfig, both backends run through the shared
    # retry → bisect → quarantine loop: serial execution is chunked
    # exactly like the process backend (same _chunks), so a given
    # fault pattern recovers identically under either mode.

    def _serial_prepared(self, by_id: Mapping[str, Record]):
        """A lazily-filled prepared cache shared across chunk retries."""
        prepared: dict[str, PreparedRecord] = {}
        comparator = self._comparator

        def prepared_for(record_id: str) -> PreparedRecord:
            entry = prepared.get(record_id)
            if entry is None:
                entry = comparator.prepare(by_id[record_id])
                prepared[record_id] = entry
            return entry

        return prepared, prepared_for

    def _publish_chunk_counters(
        self, folded: dict[str, int]
    ) -> tuple[int, int]:
        """Publish folded chunk stats; return the (hits, misses) pair.

        The prepared-cache pair feeds the standard match metrics; any
        remaining keys (the columnar kernels' counters) publish as
        counters of their own. Columnar counters are touched even when
        zero, so columnar runs always yield well-formed reports.
        """
        hits = folded.pop("engine.prepared_cache_hits", 0)
        misses = folded.pop("engine.prepared_cache_misses", 0)
        if self._representation == "columnar":
            for key in (
                "columnar.pairs_vectorized",
                "columnar.pairs_residual",
            ):
                folded.setdefault(key, 0)
        for key, value in folded.items():
            self._tracer.counter(key).inc(value)
        return hits, misses

    def _score_runner(self, by_id: Mapping[str, Record]):
        """``(run_attempt, close)`` for full-vector chunk scoring."""
        if self._representation == "columnar":
            block = self._build_block(by_id)
            if self._execution == "process":
                pool = _PoolRunner(
                    lambda: ProcessPoolExecutor(
                        max_workers=self._n_workers,
                        initializer=_columnar_worker_init,
                        initargs=(block,),
                    )
                )
                return (
                    lambda pairs, timeout: pool.submit(
                        _columnar_score_chunk, pairs, timeout
                    ),
                    pool.close,
                )
            from repro.columnar import score_id_pairs

            return (
                lambda pairs, timeout: score_id_pairs(block, pairs),
                lambda: None,
            )
        if self._execution == "process":
            pool = _PoolRunner(lambda: self._executor(by_id))
            return (
                lambda pairs, timeout: pool.submit(
                    _score_chunk, pairs, timeout
                ),
                pool.close,
            )
        prepared, prepared_for = self._serial_prepared(by_id)
        comparator = self._comparator

        def run(pairs: list[IdPair], timeout):
            before = len(prepared)
            vectors = [
                comparator.compare_prepared(
                    prepared_for(left), prepared_for(right)
                )
                for left, right in pairs
            ]
            return vectors, _chunk_cache_stats(
                pairs, len(prepared) - before
            )

        return run, lambda: None

    def _match_runner(self, by_id: Mapping[str, Record], threshold: float):
        """``(run_attempt, close)`` for staged threshold matching."""
        if self._representation == "columnar":
            block = self._build_block(by_id)
            if self._execution == "process":
                pool = _PoolRunner(
                    lambda: ProcessPoolExecutor(
                        max_workers=self._n_workers,
                        initializer=_columnar_worker_init,
                        initargs=(block,),
                    )
                )
                return (
                    lambda pairs, timeout: pool.submit(
                        _columnar_match_chunk, (pairs, threshold), timeout
                    ),
                    pool.close,
                )
            from repro.columnar import match_id_pairs

            return (
                lambda pairs, timeout: match_id_pairs(
                    block, pairs, threshold
                ),
                lambda: None,
            )
        if self._execution == "process":
            pool = _PoolRunner(lambda: self._executor(by_id))
            return (
                lambda pairs, timeout: pool.submit(
                    _match_chunk, (pairs, threshold), timeout
                ),
                pool.close,
            )
        prepared, prepared_for = self._serial_prepared(by_id)
        comparator = self._comparator

        def run(pairs: list[IdPair], timeout):
            before = len(prepared)
            matches: list[tuple[str, str, float]] = []
            n_early = 0
            for left, right in pairs:
                bounded = comparator.score_bounded(
                    prepared_for(left),
                    prepared_for(right),
                    threshold,
                    exact_scores=True,
                )
                if not bounded.exact:
                    n_early += 1
                if bounded.is_match:
                    matches.append((left, right, bounded.score))
            return matches, n_early, _chunk_cache_stats(
                pairs, len(prepared) - before
            )

        return run, lambda: None

    def _scoped_checkpoint(self, kind: str):
        """The chunk store namespaced by payload shape.

        Score chunks and match chunks carry differently-shaped values,
        so they checkpoint under distinct prefixes — a store reused
        across both operations never replays one shape into the other.
        """
        if self._checkpoint is None:
            return None
        return self._checkpoint.sub(kind)

    def _chunk_executor(self, kind: str) -> ResilientChunkExecutor:
        return ResilientChunkExecutor(
            self._resilience
            if self._resilience is not None
            else _CHECKPOINT_PASSTHROUGH,
            tracer=self._tracer,
            scope="engine.chunk",
            checkpoint=self._scoped_checkpoint(kind),
        )

    def _compare_pairs_resilient(
        self, by_id: Mapping[str, Record], valid: list[IdPair]
    ) -> list[ComparisonVector]:
        tracer = self._tracer
        with tracer.span(
            "engine.compare_pairs",
            execution=self._execution,
            n_workers=self._n_workers,
            resilient=True,
        ) as span:
            chunks = self._chunks(valid) if valid else []
            run_attempt, close = self._score_runner(by_id)
            executor = self._chunk_executor("score")
            try:
                outcome = executor.run(
                    chunks, run_attempt, _validate_score_result
                )
            finally:
                close()
            vectors: list[ComparisonVector] = []
            folded: dict[str, int] = {}
            for __, value in outcome.results:
                chunk_vectors, stats = value
                vectors.extend(chunk_vectors)
                _fold_stats(folded, stats)
            cache_hits, cache_misses = self._publish_chunk_counters(folded)
            self._last_dead_letters = outcome.dead_letters
            tracer.counter("engine.pairs_total").inc(len(valid))
            tracer.counter("engine.prepared_cache_hits").inc(cache_hits)
            tracer.counter("engine.prepared_cache_misses").inc(cache_misses)
            tracer.counter("engine.chunks").inc(len(chunks))
            span.set("n_pairs", len(valid))
            span.set("n_quarantined", len(outcome.quarantined_items))
        return vectors

    def _match_pairs_resilient(
        self,
        by_id: Mapping[str, Record],
        valid: list[IdPair],
        classifier,
        threshold: float | None,
    ) -> EngineRun:
        tracer = self._tracer
        match_pairs: set[frozenset[str]] = set()
        scored_edges: list[tuple[str, str, float]] = []
        n_early = 0
        folded: dict[str, int] = {}
        with tracer.span(
            "engine.match_pairs",
            execution=self._execution,
            n_workers=self._n_workers,
            resilient=True,
        ) as span:
            started = tracer.time()
            chunks = self._chunks(valid) if valid else []
            if threshold is not None:
                run_attempt, close = self._match_runner(by_id, threshold)
                validate = _validate_match_result
                executor = self._chunk_executor("match")
            else:
                run_attempt, close = self._score_runner(by_id)
                validate = _validate_score_result
                executor = self._chunk_executor("score")
            try:
                outcome = executor.run(chunks, run_attempt, validate)
            finally:
                close()
            for __, value in outcome.results:
                if threshold is not None:
                    matches, chunk_early, stats = value
                    n_early += chunk_early
                    for left, right, score in matches:
                        match_pairs.add(frozenset((left, right)))
                        scored_edges.append((left, right, score))
                else:
                    chunk_vectors, stats = value
                    for vector in chunk_vectors:
                        if classifier.is_match(vector):
                            match_pairs.add(
                                frozenset(
                                    (vector.left_id, vector.right_id)
                                )
                            )
                            scored_edges.append(
                                (
                                    vector.left_id,
                                    vector.right_id,
                                    vector.score,
                                )
                            )
                _fold_stats(folded, stats)
            cache_hits, cache_misses = self._publish_chunk_counters(folded)
            elapsed = tracer.time() - started
            self._record_match_metrics(
                span,
                n_pairs=len(valid),
                scored_edges=scored_edges,
                n_early=n_early,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                n_chunks=len(chunks),
                elapsed=elapsed,
            )
            quarantined = tuple(outcome.quarantined_items)
            self._last_dead_letters = outcome.dead_letters
            span.set("n_quarantined", len(quarantined))
            span.set("completed_chunks", outcome.completed_chunks)
        return EngineRun(
            match_pairs,
            scored_edges,
            len(valid),
            n_early,
            self._execution,
            self._n_workers,
            dead_letters=outcome.dead_letters,
            quarantined_pairs=quarantined,
            completed_chunks=outcome.completed_chunks,
            n_chunks=outcome.n_chunks,
            representation=self._representation,
            replayed_chunks=outcome.replayed_chunks,
        )

    def _record_match_metrics(
        self,
        span,
        n_pairs: int,
        scored_edges: list[tuple[str, str, float]],
        n_early: int,
        cache_hits: int,
        cache_misses: int,
        n_chunks: int,
        elapsed: float,
    ) -> None:
        """Publish one match pass's counters and span attributes.

        Every counter is touched unconditionally, so empty pair lists
        and degenerate chunkings still produce zeroed metrics rather
        than missing keys.
        """
        tracer = self._tracer
        tracer.counter("engine.pairs_total").inc(n_pairs)
        tracer.counter("engine.pairs_matched").inc(len(scored_edges))
        tracer.counter("engine.pairs_early_exit").inc(n_early)
        tracer.counter("engine.prepared_cache_hits").inc(cache_hits)
        tracer.counter("engine.prepared_cache_misses").inc(cache_misses)
        tracer.counter("engine.chunks").inc(n_chunks)
        tracer.histogram("engine.match_score", SCORE_BUCKETS).observe_many(
            score for __, __, score in scored_edges
        )
        span.set("n_pairs", n_pairs)
        span.set("n_matched", len(scored_edges))
        span.set("n_early_exit", n_early)
        span.set("early_exit_rate", round(n_early / n_pairs, 4) if n_pairs else 0.0)
        if n_chunks:
            span.set("n_chunks", n_chunks)
        if elapsed > 0 and n_pairs:
            span.set("pairs_per_sec", round(n_pairs / elapsed, 1))

    def _executor(self, by_id: Mapping[str, Record]) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self._n_workers,
            initializer=_worker_init,
            initargs=(self._comparator, list(by_id.values())),
        )
