"""Distributed entity resolution on the simulated cluster.

Wires blocking output through a partitioning strategy into the
MapReduce engine: mappers emit (reducer, task), reducers execute their
match tasks with the supplied comparator/classifier. All strategies
compare exactly the same pairs, so match output is identical; only the
work distribution (and hence the simulated makespan) differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.dist.costmodel import ClusterCostModel, PartitionCost
from repro.dist.partition import (
    MatchTask,
    block_split_partition,
    naive_partition,
    pair_range_partition,
    task_pairs,
)
from repro.linkage.blocking.base import BlockCollection
from repro.linkage.comparison import RecordComparator
from repro.linkage.resolver import MatchClassifier

__all__ = ["DistributedRun", "partition_blocks", "run_distributed_linkage"]

StrategyName = Literal["naive", "blocksplit", "pairrange"]


def partition_blocks(
    blocks: BlockCollection,
    strategy: StrategyName,
    n_reducers: int,
) -> list[list[MatchTask]]:
    """Partition a block collection's comparisons with one strategy."""
    if strategy == "naive":
        return naive_partition(blocks, n_reducers)
    if strategy == "blocksplit":
        return block_split_partition(blocks, n_reducers)
    if strategy == "pairrange":
        return pair_range_partition(blocks, n_reducers)
    raise ConfigurationError(f"unknown strategy {strategy!r}")


@dataclass(frozen=True)
class DistributedRun:
    """Result of one distributed linkage execution."""

    strategy: str
    match_pairs: set[frozenset[str]]
    cost: PartitionCost
    n_comparisons: int


def run_distributed_linkage(
    records: Sequence[Record],
    blocks: BlockCollection,
    comparator: RecordComparator,
    classifier: MatchClassifier,
    strategy: StrategyName = "blocksplit",
    n_reducers: int = 4,
    cost_model: ClusterCostModel | None = None,
) -> DistributedRun:
    """Execute distributed matching and return pairs plus cluster cost.

    Matching really runs (every task's pairs are compared), so tests
    can assert that all strategies produce identical match pairs. Pairs
    duplicated across blocks are compared once per task occurrence —
    exactly the redundancy a real MapReduce ER job pays — but the
    returned match-pair set is deduplicated.
    """
    cost_model = cost_model or ClusterCostModel()
    partition = partition_blocks(blocks, strategy, n_reducers)
    by_id = {record.record_id: record for record in records}
    match_pairs: set[frozenset[str]] = set()
    n_comparisons = 0
    for tasks in partition:
        for task in tasks:
            for left_id, right_id in task_pairs(task):
                left = by_id.get(left_id)
                right = by_id.get(right_id)
                if left is None or right is None or left_id == right_id:
                    continue
                n_comparisons += 1
                vector = comparator.compare(left, right)
                if classifier.is_match(vector):
                    match_pairs.add(frozenset((left_id, right_id)))
    return DistributedRun(
        strategy=strategy,
        match_pairs=match_pairs,
        cost=cost_model.evaluate(partition),
        n_comparisons=n_comparisons,
    )
