"""Distributed entity resolution on the simulated cluster.

Wires blocking output through a partitioning strategy into the
MapReduce engine: mappers emit (reducer, task), reducers execute their
match tasks with the supplied comparator/classifier. All strategies
compare exactly the same pairs, so match output is identical; only the
work distribution (and hence the simulated makespan) differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.dist.costmodel import ClusterCostModel, PartitionCost
from repro.dist.partition import (
    MatchTask,
    block_split_partition,
    naive_partition,
    pair_range_partition,
    task_pairs,
)
from repro.linkage.blocking.base import BlockCollection
from repro.linkage.comparison import RecordComparator
from repro.linkage.engine import ExecutionMode, ParallelComparisonEngine
from repro.linkage.resolver import MatchClassifier
from repro.obs import NULL_TRACER, observe_block_collection

__all__ = ["DistributedRun", "partition_blocks", "run_distributed_linkage"]

StrategyName = Literal["naive", "blocksplit", "pairrange"]


def partition_blocks(
    blocks: BlockCollection,
    strategy: StrategyName,
    n_reducers: int,
) -> list[list[MatchTask]]:
    """Partition a block collection's comparisons with one strategy."""
    if strategy == "naive":
        return naive_partition(blocks, n_reducers)
    if strategy == "blocksplit":
        return block_split_partition(blocks, n_reducers)
    if strategy == "pairrange":
        return pair_range_partition(blocks, n_reducers)
    raise ConfigurationError(f"unknown strategy {strategy!r}")


@dataclass(frozen=True)
class DistributedRun:
    """Result of one distributed linkage execution.

    ``n_comparisons`` is the raw task-level comparison count (pairs
    duplicated across blocks counted once per occurrence — the
    redundancy a real MapReduce ER job schedules);
    ``n_unique_comparisons`` is the deduplicated pair count actually
    scored when memoization is on.
    """

    strategy: str
    match_pairs: set[frozenset[str]]
    cost: PartitionCost
    n_comparisons: int
    n_unique_comparisons: int = 0
    dead_letters: "object | None" = None
    quarantined_pairs: tuple = ()
    completed_chunks: int = 0
    n_chunks: int = 0


def run_distributed_linkage(
    records: Sequence[Record],
    blocks: BlockCollection,
    comparator: RecordComparator,
    classifier: MatchClassifier,
    strategy: StrategyName = "blocksplit",
    n_reducers: int = 4,
    cost_model: ClusterCostModel | None = None,
    execution: ExecutionMode = "serial",
    n_workers: int | None = None,
    memoize: bool = True,
    tracer=None,
    resilience=None,
    checkpoint=None,
) -> DistributedRun:
    """Execute distributed matching and return pairs plus cluster cost.

    Matching really runs (every task's pairs are compared), so tests
    can assert that all strategies produce identical match pairs. The
    simulated cost model still charges every task occurrence, but with
    ``memoize=True`` (the default) a per-run comparison cache keyed on
    the pair scores each duplicated block pair only once — the
    match-pair output is identical either way. Comparison itself goes
    through the :class:`~repro.linkage.engine.ParallelComparisonEngine`
    (prepared records, early exit, optional ``execution="process"``
    backend).

    ``tracer`` (an :class:`repro.obs.Tracer`, default no-op) records a
    span per run with per-reducer comparison counts, plus counters
    surfacing the raw/deduplicated comparison split — memoization hits
    are ``dist.comparisons_raw - dist.comparisons_unique``.

    ``resilience`` (a :class:`repro.resilience.ResilienceConfig`,
    default off) threads the fault-tolerance layer through the engine:
    the returned :class:`DistributedRun` then reports
    ``completed_chunks``/``n_chunks`` and carries the quarantined
    pairs and dead-letter log — a run with failed workers degrades to
    partial results instead of aborting.

    ``checkpoint`` (a :class:`repro.recovery.RunStore`, a view of
    one, or a directory path, default off) makes the comparison stage crash-resumable: a
    rerun over the same blocks and records against the same store
    resumes from the last completed chunk instead of rescoring from
    scratch.

    ``execution="sharded"`` scores the deduplicated workload through
    :func:`repro.dist.runtime.sharded_match_pairs` — ``n_workers``
    (default ``n_reducers``) real shards, each with its own checkpoint
    namespace — instead of one engine; memoization is implied.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    cost_model = cost_model or ClusterCostModel()
    with tracer.span(
        "dist.linkage", strategy=strategy, n_reducers=n_reducers
    ) as span:
        partition = partition_blocks(blocks, strategy, n_reducers)
        observe_block_collection(tracer, blocks, prefix="dist.blocking")
        by_id = {record.record_id: record for record in records}
        raw_pairs: list[tuple[str, str]] = []
        per_reducer = tracer.histogram("dist.reducer_comparisons")
        for tasks in partition:
            reducer_pairs = 0
            for task in tasks:
                for left_id, right_id in task_pairs(task):
                    if (
                        left_id == right_id
                        or left_id not in by_id
                        or right_id not in by_id
                    ):
                        continue
                    raw_pairs.append((left_id, right_id))
                    reducer_pairs += 1
            per_reducer.observe(float(reducer_pairs))
        # Canonical dedup — the per-run comparison cache. Normalizing to
        # sorted (min, max) pairs makes the scored workload independent
        # of reducer assignment order: two partitionings of the same
        # blocks score the same pairs in the same orientation and
        # order, so memoized results merge deterministically even when
        # reducers share a pair.
        unique_pairs: list[tuple[str, str]] = sorted(
            {
                (left, right) if left < right else (right, left)
                for left, right in raw_pairs
            }
        )
        scored = unique_pairs if memoize else raw_pairs
        if execution == "sharded":
            # Sharding partitions the canonical pair list; it always
            # scores the deduplicated workload (memoization implied).
            from repro.dist.runtime import sharded_match_pairs

            run = sharded_match_pairs(
                by_id,
                unique_pairs,
                comparator,
                classifier,
                n_shards=n_workers or n_reducers,
                tracer=tracer,
                resilience=resilience,
                checkpoint=checkpoint,
            )
        else:
            engine = ParallelComparisonEngine(
                comparator, execution=execution, n_workers=n_workers,
                tracer=tracer, resilience=resilience, checkpoint=checkpoint,
            )
            run = engine.match_pairs(by_id, scored, classifier)
        cost = cost_model.evaluate(partition)
        tracer.counter("dist.comparisons_raw").inc(len(raw_pairs))
        tracer.counter("dist.comparisons_unique").inc(len(unique_pairs))
        tracer.counter("dist.memoization_hits").inc(
            len(raw_pairs) - len(unique_pairs) if memoize else 0
        )
        span.set("n_comparisons", len(raw_pairs))
        span.set("n_unique_comparisons", len(unique_pairs))
        span.set("makespan", cost.makespan)
        if resilience is not None:
            span.set("n_quarantined", len(run.quarantined_pairs))
    return DistributedRun(
        strategy=strategy,
        match_pairs=run.match_pairs,
        cost=cost,
        n_comparisons=len(raw_pairs),
        n_unique_comparisons=len(unique_pairs),
        dead_letters=run.dead_letters if resilience is not None else None,
        quarantined_pairs=run.quarantined_pairs,
        completed_chunks=run.completed_chunks,
        n_chunks=run.n_chunks,
    )
