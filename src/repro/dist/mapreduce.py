"""A deterministic in-process MapReduce engine.

The real systems this substitutes for (Hadoop-era clusters) matter to
the experiments only through *how work distributes across reducers*:
skewed reducers dominate the makespan. This engine executes map →
shuffle → reduce faithfully and meters per-task work, so load-balancing
strategies can be compared exactly and reproducibly on one core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterable, Sequence, TypeVar

from repro.core.errors import ConfigurationError
from repro.dist.partition import stable_key_hash
from repro.obs import NULL_TRACER
from repro.resilience import ResilienceConfig
from repro.resilience.executor import ResilientChunkExecutor

__all__ = ["MapReduceJob", "JobResult", "ReducerMetrics", "hash_partitioner"]

I = TypeVar("I")   # input item
K = TypeVar("K", bound=Hashable)  # intermediate key
V = TypeVar("V")   # intermediate value
O = TypeVar("O")   # output item

MapFunction = Callable[[I], Iterable[tuple[K, V]]]
ReduceFunction = Callable[[K, list[V]], Iterable[O]]
Partitioner = Callable[[K, int], int]
CostFunction = Callable[[K, list[V]], float]


def hash_partitioner(key: Hashable, n_reducers: int) -> int:
    """Stable hash partitioning (Python's hash is salted for str, so a
    deterministic fold over the repr is used instead)."""
    return stable_key_hash(repr(key)) % n_reducers


@dataclass(frozen=True)
class ReducerMetrics:
    """Work metering for one reducer."""

    reducer: int
    n_keys: int
    n_values: int
    cost: float


@dataclass(frozen=True)
class JobResult(Generic[O]):
    """Outputs plus the metrics the cost model consumes.

    ``dead_letters``/``n_quarantined_keys`` report reduce keys the
    fault-tolerance layer quarantined (populated only when the job was
    built with a :class:`~repro.resilience.ResilienceConfig` and
    ``failure="skip"``); their outputs are absent from ``outputs``.
    """

    outputs: list[O]
    reducer_metrics: tuple[ReducerMetrics, ...]
    n_map_outputs: int
    dead_letters: "object | None" = None
    n_quarantined_keys: int = 0

    @property
    def total_cost(self) -> float:
        """Sum of reducer costs (single-machine work)."""
        return sum(metric.cost for metric in self.reducer_metrics)

    @property
    def makespan_cost(self) -> float:
        """Max reducer cost — the parallel completion time driver."""
        if not self.reducer_metrics:
            return 0.0
        return max(metric.cost for metric in self.reducer_metrics)

    @property
    def skew(self) -> float:
        """Max/mean reducer cost (1.0 = perfectly balanced)."""
        costs = [metric.cost for metric in self.reducer_metrics]
        if not costs or sum(costs) == 0:
            return 1.0
        mean = sum(costs) / len(costs)
        return max(costs) / mean if mean else 1.0


class MapReduceJob(Generic[I, K, V, O]):
    """One configured MapReduce job.

    Parameters
    ----------
    map_function:
        item → iterable of (key, value).
    reduce_function:
        (key, values) → iterable of outputs. Called once per key with
        all of the key's values (values keep map emission order).
    n_reducers:
        Number of simulated reducers.
    partitioner:
        key → reducer index; defaults to stable hashing.
    cost_function:
        Work units one key's reduce call costs; defaults to
        ``len(values)``. ER jobs pass comparison counts here.
    tracer:
        An :class:`repro.obs.Tracer` (default no-op). Each run records
        a span plus map/shuffle/reduce counters; the per-reducer
        metrics this engine already meters are aggregated back into the
        parent run's registry as a reducer-cost histogram and a skew
        gauge (the single-process analogue of the worker collection
        protocol).
    resilience:
        A :class:`~repro.resilience.ResilienceConfig` (default off)
        applying the retry/backoff/quarantine policy per reduce key: a
        reduce call that keeps raising is retried, then — under
        ``failure="skip"`` — its key is quarantined into the result's
        dead-letter log while every other key's outputs survive.
    """

    def __init__(
        self,
        map_function: MapFunction,
        reduce_function: ReduceFunction,
        n_reducers: int = 4,
        partitioner: Partitioner | None = None,
        cost_function: CostFunction | None = None,
        tracer=None,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        if n_reducers < 1:
            raise ConfigurationError("n_reducers must be >= 1")
        if resilience is not None and not isinstance(
            resilience, ResilienceConfig
        ):
            raise ConfigurationError(
                "resilience must be a ResilienceConfig or None"
            )
        self._map = map_function
        self._reduce = reduce_function
        self._n_reducers = n_reducers
        self._partitioner = partitioner or hash_partitioner
        self._cost = cost_function or (lambda key, values: float(len(values)))
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._resilience = resilience

    @property
    def n_reducers(self) -> int:
        """Number of simulated reducers."""
        return self._n_reducers

    def run(self, inputs: Sequence[I]) -> JobResult[O]:
        """Execute the job and return outputs plus reducer metrics."""
        with self._tracer.span(
            "mapreduce.run", n_reducers=self._n_reducers
        ) as span:
            # Map + shuffle.
            partitions: list[dict[K, list[V]]] = [
                {} for __ in range(self._n_reducers)
            ]
            n_map_outputs = 0
            for item in inputs:
                for key, value in self._map(item):
                    index = self._partitioner(key, self._n_reducers)
                    if not 0 <= index < self._n_reducers:
                        raise ConfigurationError(
                            f"partitioner returned {index} for "
                            f"{self._n_reducers} reducers"
                        )
                    partitions[index].setdefault(key, []).append(value)
                    n_map_outputs += 1
            # Reduce, metering per-reducer work. Keys are sorted so output
            # order is deterministic regardless of dict insertion order.
            # Cost is metered whether or not a key's reduce succeeds —
            # the cluster pays for attempted work either way.
            outputs: list[O] = []
            metrics: list[ReducerMetrics] = []
            units: list[tuple[int, K]] = []
            for reducer_index, partition in enumerate(partitions):
                cost = 0.0
                n_values = 0
                for key in sorted(partition, key=repr):
                    values = partition[key]
                    n_values += len(values)
                    cost += self._cost(key, values)
                    if self._resilience is None:
                        outputs.extend(self._reduce(key, values))
                    else:
                        units.append((reducer_index, key))
                metrics.append(
                    ReducerMetrics(
                        reducer=reducer_index,
                        n_keys=len(partition),
                        n_values=n_values,
                        cost=cost,
                    )
                )
            dead_letters = None
            n_quarantined = 0
            if self._resilience is not None:
                outputs, dead_letters, n_quarantined = (
                    self._reduce_resilient(partitions, units)
                )
            result = JobResult(
                outputs=outputs,
                reducer_metrics=tuple(metrics),
                n_map_outputs=n_map_outputs,
                dead_letters=dead_letters,
                n_quarantined_keys=n_quarantined,
            )
            self._record_metrics(span, inputs, result)
            if self._resilience is not None:
                span.set("n_quarantined_keys", n_quarantined)
        return result

    def _reduce_resilient(
        self, partitions: list[dict[K, list[V]]], units: list[tuple[int, K]]
    ) -> tuple[list[O], "object", int]:
        """Run every (reducer, key) unit through the resilient loop.

        Each reduce key is one recovery unit: retried per the policy,
        and quarantined (``failure="skip"``) or raised
        (``"retry"``/``"fail"``) when it keeps failing. Output order
        matches the non-resilient path exactly.
        """
        executor = ResilientChunkExecutor(
            self._resilience, tracer=self._tracer, scope="mapreduce.key"
        )

        def run_attempt(items: list, timeout) -> list[O]:
            reducer_index, key = items[0]
            return list(self._reduce(key, partitions[reducer_index][key]))

        outcome = executor.run([[unit] for unit in units], run_attempt)
        outputs = [
            output for __, value in outcome.results for output in value
        ]
        n_quarantined = len(outcome.quarantined_items)
        self._tracer.counter("mapreduce.keys_quarantined").inc(n_quarantined)
        return outputs, outcome.dead_letters, n_quarantined

    def _record_metrics(
        self, span, inputs: Sequence[I], result: JobResult[O]
    ) -> None:
        """Aggregate the job's per-reducer metering into the registry."""
        tracer = self._tracer
        tracer.counter("mapreduce.map_inputs").inc(len(inputs))
        tracer.counter("mapreduce.map_outputs").inc(result.n_map_outputs)
        tracer.counter("mapreduce.reduce_keys").inc(
            sum(metric.n_keys for metric in result.reducer_metrics)
        )
        tracer.counter("mapreduce.reduce_values").inc(
            sum(metric.n_values for metric in result.reducer_metrics)
        )
        histogram = tracer.histogram("mapreduce.reducer_cost")
        histogram.observe_many(
            metric.cost for metric in result.reducer_metrics
        )
        tracer.gauge("mapreduce.skew").set(result.skew)
        span.set("n_inputs", len(inputs))
        span.set("n_map_outputs", result.n_map_outputs)
        span.set("makespan_cost", result.makespan_cost)
        span.set("skew", round(result.skew, 4))
