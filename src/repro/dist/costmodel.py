"""Cluster cost model: from per-reducer work to makespan and speedup.

The experiments on distributed ER report wall-clock speedup curves.
On a simulated cluster the analogue is exact: a reducer's completion
time is its startup overhead plus its comparison work times the
per-comparison cost; the job finishes when the slowest reducer does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.dist.partition import MatchTask

__all__ = ["ClusterCostModel", "PartitionCost"]


@dataclass(frozen=True)
class PartitionCost:
    """Cost summary of one partitioning at one cluster size."""

    n_reducers: int
    per_reducer_comparisons: tuple[int, ...]
    makespan: float
    total_work: float
    speedup: float
    skew: float

    @property
    def efficiency(self) -> float:
        """Speedup divided by reducer count (1.0 = perfect scaling)."""
        return self.speedup / self.n_reducers if self.n_reducers else 0.0


@dataclass(frozen=True)
class ClusterCostModel:
    """Simulated cluster timing parameters.

    ``comparison_cost`` is the time of one record-pair comparison;
    ``task_overhead`` is per match task (scheduling/IO); ``startup`` is
    per reducer (JVM spin-up in the systems this models).
    """

    comparison_cost: float = 1.0
    task_overhead: float = 2.0
    startup: float = 50.0

    def __post_init__(self) -> None:
        if self.comparison_cost <= 0:
            raise ConfigurationError("comparison_cost must be positive")
        if self.task_overhead < 0 or self.startup < 0:
            raise ConfigurationError("overheads must be >= 0")

    def reducer_time(self, tasks: Sequence[MatchTask]) -> float:
        """Completion time of one reducer's task list."""
        comparisons = sum(task.n_comparisons for task in tasks)
        return (
            self.startup
            + len(tasks) * self.task_overhead
            + comparisons * self.comparison_cost
        )

    def evaluate(
        self, partition: Sequence[Sequence[MatchTask]]
    ) -> PartitionCost:
        """Score one partitioning: makespan, speedup vs 1 reducer, skew."""
        if not partition:
            raise ConfigurationError("partition must have >= 1 reducer")
        times = [self.reducer_time(tasks) for tasks in partition]
        comparisons = tuple(
            sum(task.n_comparisons for task in tasks) for tasks in partition
        )
        makespan = max(times)
        # The 1-reducer baseline: all tasks on one machine.
        all_tasks = [task for tasks in partition for task in tasks]
        serial = self.reducer_time(all_tasks)
        loaded = [c for c in comparisons if c > 0] or [0]
        mean_load = sum(comparisons) / len(comparisons)
        skew = (max(comparisons) / mean_load) if mean_load else 1.0
        return PartitionCost(
            n_reducers=len(partition),
            per_reducer_comparisons=comparisons,
            makespan=makespan,
            total_work=sum(times),
            speedup=serial / makespan if makespan else 1.0,
            skew=skew,
        )
