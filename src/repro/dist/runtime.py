"""Sharded pipeline runtime: entity-partitioned linkage over workers.

The rest of :mod:`repro.dist` *simulates* a cluster (MapReduce engine,
partitioning strategies, cost model). This module runs the real thing
on one machine: the pipeline is hash-partitioned into shards that
execute in actual worker processes, and the coordinator reassembles a
result **byte-identical** to the single-process :func:`repro.linkage.resolve`.

The run proceeds in four coordinated steps:

1. **Shuffle / blocking.** Every record belongs to a home shard
   (:func:`~repro.dist.partition.shard_of_key` over its record id) and
   every candidate pair to an owner shard (hash of its smaller id).
   Decomposable blockers (``blocker.supports_shard_keys``) run as a
   distributed map: each home shard emits ``(key, position, id)``
   tuples into sorted per-destination runs through the
   :mod:`repro.outofcore` spill machinery, key-owner shards k-way merge
   their inbound runs, rebuild each block in original record order,
   and write sorted pair runs to the pair-owner shards. The
   coordinator's final merge (:func:`~repro.outofcore.merge_sorted_streams`
   with dedup) hands every shard exactly its sorted slice of the
   canonical pair list — the same sorted-unique order the serial
   resolver feeds its engine.
2. **Matching.** Each shard's pairs run through the existing resilient
   chunked :class:`~repro.linkage.engine.ParallelComparisonEngine`
   (dict or columnar) inside a worker. Workers checkpoint into their
   own ``dist.shard.{k}.engine`` store namespace, so a killed worker
   resumes alone from its chunk ledger.
3. **Reconciliation.** Per-shard match results merge back: match pairs
   union, scored edges k-way merge (each shard's edges are a sorted
   disjoint sublist of the serial edge order), and clusters reconcile
   with a union-find pass over each shard's local components — the
   transitive closure across shard boundaries is exactly the serial
   ``connected_components`` output.
4. **Manifest.** With a checkpoint store, the coordinator records a
   ``dist.layout`` artifact carrying the shard count and per-shard pair
   fingerprints. Re-running against the store with a different
   ``n_shards`` raises
   :class:`~repro.recovery.CheckpointMismatchError`; re-running with
   the same layout reuses completed shard results and replays only
   unfinished shards from their engine chunk checkpoints.

:func:`plan_shards` picks a default shard count from the
:class:`~repro.dist.costmodel.ClusterCostModel` when the caller does
not pin one.
"""

from __future__ import annotations

import hashlib
import itertools
import math
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.core.record import Record
from repro.core.unionfind import UnionFind
from repro.dist.costmodel import ClusterCostModel
from repro.dist.partition import shard_of_key
from repro.linkage.blocking.base import Blocker
from repro.linkage.clustering import ScoredEdge, connected_components
from repro.linkage.engine import EngineRun, ParallelComparisonEngine
from repro.obs import NULL_TRACER, Tracer, observe_block_collection
from repro.outofcore import merge_sorted_streams
from repro.recovery import CheckpointMismatchError, RunStore, config_fingerprint
from repro.resilience import DeadLetterLog

__all__ = [
    "SHARD_BACKENDS",
    "ShardPlan",
    "ShardResult",
    "ShardedResolveRun",
    "plan_shards",
    "sharded_match_pairs",
    "sharded_resolve",
    "sharded_vote_fusion",
]

#: Worker backends: ``"process"`` fans shards out over OS processes,
#: ``"inline"`` runs them sequentially in-process (deterministic kill
#: semantics for chaos tests, zero fork overhead for tiny corpora).
SHARD_BACKENDS: tuple[str, ...] = ("process", "inline")


@dataclass(frozen=True)
class ShardPlan:
    """The coordinator's shard-count decision.

    ``candidates`` holds the cost model's predicted makespan for every
    considered shard count; ``pinned`` records that the caller chose
    ``n_shards`` explicitly (the plan then just prices that choice).
    """

    n_shards: int
    predicted_cost: float
    candidates: tuple[tuple[int, float], ...] = ()
    pinned: bool = False


@dataclass(frozen=True)
class ShardResult:
    """Everything one shard's worker produced.

    ``match_pairs`` / ``scored_edges`` are sorted tuples (each shard
    owns a disjoint, pre-sorted slice of the canonical pair list);
    ``local_groups`` are the shard's connected components over its own
    match pairs, which the coordinator unions across shards.
    ``elapsed`` is the worker-measured matching wall time — the
    quantity shard-scaling benchmarks aggregate into a makespan.
    ``resumed`` marks a shard whose result was reused from the
    checkpoint store; ``replayed_chunks`` counts engine chunks restored
    from checkpoints instead of recomputed.
    """

    shard: int
    n_pairs: int
    n_chunks: int
    completed_chunks: int
    replayed_chunks: int
    n_early_exit: int
    elapsed: float
    match_pairs: tuple[tuple[str, str], ...]
    scored_edges: tuple[ScoredEdge, ...]
    local_groups: tuple[tuple[str, ...], ...]
    counters: tuple[tuple[str, float], ...]
    quarantined_pairs: tuple = ()
    dead_letters: DeadLetterLog = field(default_factory=DeadLetterLog)
    resumed: bool = False


@dataclass(frozen=True)
class ShardedResolveRun:
    """A sharded run: the reassembled result plus per-shard forensics."""

    result: "object"
    plan: ShardPlan
    shards: tuple[ShardResult, ...]
    n_shards: int
    backend: str
    n_spanning_pairs: int
    signatures: tuple[str, ...] = ()

    @property
    def n_resumed(self) -> int:
        """Shards whose results were reused from the checkpoint store."""
        return sum(1 for shard in self.shards if shard.resumed)

    @property
    def replayed_chunks(self) -> int:
        """Engine chunks replayed from checkpoints across all shards."""
        return sum(shard.replayed_chunks for shard in self.shards)


def plan_shards(
    n_pairs: int,
    *,
    model: ClusterCostModel | None = None,
    max_shards: int = 8,
    n_shards: int | None = None,
) -> ShardPlan:
    """Choose a shard count for ``n_pairs`` comparisons.

    Predicted makespan of ``k`` shards is the startup cost of going
    distributed at all (``k > 1``), plus per-shard task overhead, plus
    the slowest shard's comparison work (``⌈n_pairs / k⌉``). The
    smallest ``k`` wins ties, so tiny workloads stay single-shard.
    """
    if max_shards < 1:
        raise ConfigurationError("max_shards must be >= 1")
    if n_shards is not None and n_shards < 1:
        raise ConfigurationError("n_shards must be >= 1")
    model = model if model is not None else ClusterCostModel()
    considered = max(max_shards, n_shards or 1)

    def predicted(k: int) -> float:
        return (
            (model.startup if k > 1 else 0.0)
            + model.task_overhead * k
            + model.comparison_cost * math.ceil(n_pairs / k)
        )

    candidates = tuple((k, predicted(k)) for k in range(1, considered + 1))
    if n_shards is not None:
        return ShardPlan(n_shards, predicted(n_shards), candidates, pinned=True)
    best = min(candidates, key=lambda entry: (entry[1], entry[0]))
    return ShardPlan(best[0], best[1], candidates)


def _canonical_pairs(candidate_pairs) -> list[tuple[str, str]]:
    """The serial resolver's canonical sorted-unique pair order.

    Equivalent to ``sorted(candidate_pairs, key=sorted)`` followed by
    sorting each pair, but orients every pair first and sorts the
    tuples directly — one sort pass, no per-comparison key lists.
    """
    return sorted(
        (pair_ids[0], pair_ids[1])
        for pair_ids in (sorted(pair) for pair in candidate_pairs)
    )


def _partition_pairs(
    ordered_pairs: Sequence[tuple[str, str]], n_shards: int
) -> tuple[list[list[tuple[str, str]]], int]:
    """Split the canonical pair list into per-owner sorted sublists.

    A pair's owner is the shard of its smaller id; the second return
    value counts *spanning* pairs whose two records live on different
    home shards (the pairs a real cluster shuffles across the wire).
    """
    buckets: list[list[tuple[str, str]]] = [[] for __ in range(n_shards)]
    spanning = 0
    # Each record id appears in many pairs; hashing it once instead of
    # once per pair keeps the coordinator's partitioning pass cheap.
    shard_of: dict[str, int] = {}
    for pair in ordered_pairs:
        owner = shard_of.get(pair[0])
        if owner is None:
            owner = shard_of[pair[0]] = shard_of_key(pair[0], n_shards)
        other = shard_of.get(pair[1])
        if other is None:
            other = shard_of[pair[1]] = shard_of_key(pair[1], n_shards)
        if other != owner:
            spanning += 1
        buckets[owner].append(pair)
    return buckets, spanning


def _shuffled_shard_pairs(
    records: Sequence[Record], blocker: Blocker, n_shards: int, store, tracer
) -> tuple[list[list[tuple[str, str]]], int, int]:
    """The decomposed blocking shuffle (step 1 of the module docstring).

    Returns per-owner sorted pair lists, the number of accepted blocks,
    and the spanning-pair count. The per-owner lists concatenate to
    exactly the serial blocker's canonical pair order: every block is
    rebuilt with its ids in original record order before the blocker's
    own ``accepts_block`` filter runs, and the final per-owner merge
    dedups across key owners.
    """
    # Map side: home shards emit (key, position, record id) runs.
    by_producer: list[list[tuple[int, Record]]] = [[] for __ in range(n_shards)]
    for position, record in enumerate(records):
        home = shard_of_key(record.record_id, n_shards)
        by_producer[home].append((position, record))
    for producer, assigned in enumerate(by_producer):
        outbound: list[list[tuple[str, int, str]]] = [
            [] for __ in range(n_shards)
        ]
        for position, record in assigned:
            for key in blocker.shard_keys(record):
                owner = shard_of_key(key, n_shards)
                outbound[owner].append((key, position, record.record_id))
        for owner, items in enumerate(outbound):
            if items:
                store.save_stream(
                    f"shuffle.keys.to{owner}.from{producer}", sorted(items)
                )
    # Key-owner side: merge inbound runs, rebuild blocks, emit pairs.
    n_blocks = 0
    for key_owner in range(n_shards):
        inbound = [
            store.load_stream(f"shuffle.keys.to{key_owner}.from{producer}")
            for producer in range(n_shards)
        ]
        merged = merge_sorted_streams(
            stream for stream in inbound if stream is not None
        )
        pairs_out: list[set[tuple[str, str]]] = [set() for __ in range(n_shards)]
        for key, group in itertools.groupby(merged, key=lambda item: item[0]):
            ids = [record_id for __, __, record_id in group]
            if not blocker.accepts_block(key, ids):
                continue
            n_blocks += 1
            for i, left in enumerate(ids):
                for right in ids[i + 1 :]:
                    if left == right:
                        continue
                    pair = (left, right) if left < right else (right, left)
                    pairs_out[shard_of_key(pair[0], n_shards)].add(pair)
        for pair_owner, pairs in enumerate(pairs_out):
            if pairs:
                store.save_stream(
                    f"shuffle.pairs.to{pair_owner}.from{key_owner}",
                    sorted(pairs),
                )
    # Coordinator side: per-owner k-way merge with cross-owner dedup.
    buckets: list[list[tuple[str, str]]] = []
    spanning = 0
    for pair_owner in range(n_shards):
        inbound = [
            store.load_stream(f"shuffle.pairs.to{pair_owner}.from{key_owner}")
            for key_owner in range(n_shards)
        ]
        merged = list(
            merge_sorted_streams(
                (stream for stream in inbound if stream is not None),
                dedup=True,
            )
        )
        spanning += sum(
            1
            for pair in merged
            if shard_of_key(pair[1], n_shards) != pair_owner
        )
        buckets.append(merged)
    tracer.counter("dist.shuffle.blocks").inc(n_blocks)
    return buckets, n_blocks, spanning


@dataclass(frozen=True)
class _ShardTask:
    """One shard's matching workload (must stay picklable)."""

    shard: int
    pairs: tuple[tuple[str, str], ...]
    records: dict
    comparator: "object"
    classifier: "object"
    chunk_size: int
    representation: str
    resilience: "object | None"
    store_root: str | None
    store_prefix: str
    durable: bool


def _run_shard(task: _ShardTask) -> ShardResult:
    """Execute one shard's matching inside a worker process.

    Runs the serial resilient engine over the shard's pre-sorted pairs,
    checkpointing into the shard's own store namespace, and returns a
    picklable :class:`ShardResult` (the worker-collection protocol: raw
    counters travel back and fold into the coordinator's tracer).
    """
    tracer = Tracer()
    injector = getattr(task.resilience, "fault_injector", None)
    if injector is not None and hasattr(injector, "bind_shard"):
        injector.bind_shard(task.shard)
    checkpoint = None
    if task.store_root is not None:
        checkpoint = RunStore(task.store_root, durable=task.durable).sub(
            task.store_prefix
        )
    engine = ParallelComparisonEngine(
        task.comparator,
        execution="serial",
        chunk_size=task.chunk_size,
        tracer=tracer,
        resilience=task.resilience,
        checkpoint=checkpoint,
        representation=task.representation,
    )
    started = time.perf_counter()
    run = engine.match_pairs(task.records, list(task.pairs), task.classifier)
    elapsed = time.perf_counter() - started
    local_ids = sorted({member for pair in run.match_pairs for member in pair})
    groups = connected_components(run.match_pairs, local_ids)
    counters = tracer.report().metrics["counters"]
    return ShardResult(
        shard=task.shard,
        n_pairs=run.n_pairs,
        n_chunks=run.n_chunks,
        completed_chunks=run.completed_chunks,
        replayed_chunks=run.replayed_chunks,
        n_early_exit=run.n_early_exit,
        elapsed=elapsed,
        match_pairs=tuple(
            sorted(tuple(sorted(pair)) for pair in run.match_pairs)
        ),
        scored_edges=tuple(run.scored_edges),
        local_groups=tuple(tuple(group) for group in groups),
        counters=tuple(sorted(counters.items())),
        quarantined_pairs=tuple(run.quarantined_pairs),
        dead_letters=run.dead_letters,
    )


@dataclass(frozen=True)
class _StoreBinding:
    """How the coordinator and its workers reach the checkpoint store."""

    base_view: "object | None" = None
    root_store: "object | None" = None
    store_root: str | None = None
    prefix: str = "dist"
    durable: bool = True


def _bind_store(checkpoint) -> _StoreBinding:
    """Normalize ``checkpoint`` (path / RunStore / StoreView / None)."""
    if checkpoint is None:
        return _StoreBinding()
    if isinstance(checkpoint, (str, os.PathLike)):
        checkpoint = RunStore(checkpoint)
    if isinstance(checkpoint, RunStore):
        root_store = checkpoint
    else:  # a StoreView — reach its backing store for the manifest.
        root_store = getattr(checkpoint, "_store", None)
    base_view = checkpoint.sub("dist")
    prefix = getattr(base_view, "_prefix", "dist.").rstrip(".")
    return _StoreBinding(
        base_view=base_view,
        root_store=root_store,
        store_root=(
            str(root_store.root) if root_store is not None else None
        ),
        prefix=prefix,
        durable=getattr(root_store, "_durable", True),
    )


def _pair_signature(pairs: Sequence[tuple[str, str]]) -> str:
    """Content fingerprint of one shard's canonical pair slice."""
    return hashlib.sha256(repr(list(pairs)).encode("utf-8")).hexdigest()


def _guard_layout(
    binding: _StoreBinding, n_shards: int, signatures: Sequence[str]
) -> None:
    """Record — and defend — the manifest's shard layout.

    A store that already holds a layout with a different shard count
    cannot be resumed: shard slices would no longer line up with the
    recorded per-shard checkpoints, so the run refuses loudly instead
    of silently recomputing or (worse) mixing slices.
    """
    if binding.base_view is None:
        return
    offered = config_fingerprint("dist.layout", n_shards)
    recorded = binding.base_view.load("layout")
    if recorded is not None and recorded.get("n_shards") != n_shards:
        raise CheckpointMismatchError(
            recorded.get("fingerprint", "<unknown>"),
            offered,
            binding.store_root or "<store>",
        )
    meta = binding.base_view.save(
        "layout",
        {
            "n_shards": n_shards,
            "fingerprint": offered,
            "shards": {
                str(shard): signature
                for shard, signature in enumerate(signatures)
            },
        },
    )
    if binding.root_store is not None:
        binding.root_store.mark_stage(
            "dist.layout", f"{binding.prefix}.layout", sha256=meta["sha256"]
        )


def _execute_shards(
    buckets: Sequence[Sequence[tuple[str, str]]],
    by_id: Mapping[str, Record],
    comparator,
    classifier,
    *,
    backend: str,
    chunk_size: int,
    representation: str,
    resilience,
    binding: _StoreBinding,
    signatures: Sequence[str],
    tracer,
    supervisor=None,
) -> list[ShardResult]:
    """Run (or resume) every shard and persist per-shard results."""
    n_shards = len(buckets)
    results: list[ShardResult | None] = [None] * n_shards
    tasks: list[_ShardTask | None] = [None] * n_shards
    for shard, pairs in enumerate(buckets):
        if binding.base_view is not None:
            prior = binding.base_view.load(f"shard.{shard}.result")
            if (
                prior is not None
                and prior.get("signature") == signatures[shard]
                and isinstance(prior.get("result"), ShardResult)
            ):
                results[shard] = replace(
                    prior["result"], resumed=True, replayed_chunks=0
                )
                continue
        needed = sorted({record_id for pair in pairs for record_id in pair})
        tasks[shard] = _ShardTask(
            shard=shard,
            pairs=tuple(pairs),
            records={record_id: by_id[record_id] for record_id in needed},
            comparator=comparator,
            classifier=classifier,
            chunk_size=chunk_size,
            representation=representation,
            resilience=resilience,
            store_root=binding.store_root,
            store_prefix=f"{binding.prefix}.shard.{shard}.engine",
            durable=binding.durable,
        )

    def persist(shard: int, result: ShardResult) -> None:
        if binding.base_view is None:
            return
        meta = binding.base_view.save(
            f"shard.{shard}.result",
            {"signature": signatures[shard], "result": result},
        )
        if binding.root_store is not None:
            binding.root_store.mark_stage(
                f"dist.shard.{shard}",
                f"{binding.prefix}.shard.{shard}.result",
                sha256=meta["sha256"],
            )

    pending = [shard for shard in range(n_shards) if tasks[shard] is not None]
    if supervisor is not None and pending:
        # Self-healing path: the supervisor owns launch, liveness
        # monitoring, and restart-from-checkpoint for every pending
        # shard; resumed shards above never re-execute.
        executed = supervisor.execute(
            {shard: tasks[shard] for shard in pending},
            persist,
            backend=backend,
            binding=binding,
        )
        for shard, result in executed.items():
            results[shard] = result
    elif backend == "inline" or len(pending) <= 1:
        # Sequential, in shard order — a kill mid-shard leaves every
        # earlier shard's result persisted and the current shard's
        # engine chunks checkpointed, which is what single-shard
        # resume relies on.
        for shard in pending:
            result = _run_shard(tasks[shard])
            results[shard] = result
            persist(shard, result)
    else:
        max_workers = max(1, min(len(pending), os.cpu_count() or 1))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [(shard, pool.submit(_run_shard, tasks[shard])) for shard in pending]
            for shard, future in futures:
                result = future.result()
                results[shard] = result
                persist(shard, result)
    return [result for result in results if result is not None]


def _merge_dead_letters(shards: Sequence[ShardResult]) -> DeadLetterLog:
    """Coordinator-level dead-letter log: shard entries in shard order.

    Entries were already durably appended (when a sink is configured)
    by the workers that produced them, so they re-attach here without
    re-appending.
    """
    merged = DeadLetterLog()
    for shard in shards:
        merged.restore(shard.dead_letters.entries)
    return merged


def _emit_shard_metrics(
    tracer, shards: Sequence[ShardResult], n_shards: int, spanning: int
) -> None:
    """The coordinator's ``dist.shard.*`` observability surface."""
    tracer.gauge("dist.shard.count").set(float(n_shards))
    pair_counts = [float(shard.n_pairs) for shard in shards]
    tracer.counter("dist.shard.pairs").inc(int(sum(pair_counts)))
    tracer.counter("dist.shard.spanning_pairs").inc(spanning)
    tracer.histogram("dist.shard.pair_count").observe_many(pair_counts)
    mean = sum(pair_counts) / len(pair_counts) if pair_counts else 0.0
    skew = max(pair_counts) / mean if mean else 1.0
    tracer.gauge("dist.shard.skew").set(skew)
    tracer.counter("dist.shard.resumed").inc(
        sum(1 for shard in shards if shard.resumed)
    )
    tracer.counter("dist.shard.replayed_chunks").inc(
        sum(shard.replayed_chunks for shard in shards)
    )
    for shard in shards:
        for name, value in shard.counters:
            tracer.counter(name).inc(int(value))


def sharded_resolve(
    records: Sequence[Record],
    blocker: Blocker,
    comparator,
    classifier,
    *,
    clustering: str = "components",
    candidate_pairs=None,
    n_shards: int | None = None,
    backend: str = "process",
    chunk_size: int = 2048,
    cost_model: ClusterCostModel | None = None,
    tracer=None,
    resilience=None,
    checkpoint=None,
    spill_dir=None,
    representation: str = "dict",
    supervisor=None,
) -> ShardedResolveRun:
    """Run the full linkage pipeline sharded across workers.

    Produces a :class:`~repro.linkage.resolver.LinkageResult` (in
    ``.result``) byte-identical to the serial
    :func:`~repro.linkage.resolve` over the same inputs, for every
    ``n_shards``, backend, and representation. See the module docstring
    for the four coordinated steps; ``n_shards=None`` lets
    :func:`plan_shards` choose from the cost model (which then blocks
    at the coordinator, since the shuffle needs the shard count
    up-front).
    """
    from repro.linkage.resolver import LinkageResult, _cluster

    if backend not in SHARD_BACKENDS:
        raise ConfigurationError(
            f"unknown shard backend {backend!r}; expected one of "
            f"{SHARD_BACKENDS}"
        )
    tracer = tracer if tracer is not None else NULL_TRACER
    records = list(records)
    by_id = {record.record_id: record for record in records}
    with tracer.span("dist.sharded", backend=backend) as span:
        temp = None
        try:
            buckets: list[list[tuple[str, str]]] | None = None
            spanning = 0
            if candidate_pairs is not None:
                ordered = _canonical_pairs(candidate_pairs)
                plan = plan_shards(
                    len(ordered), model=cost_model, n_shards=n_shards
                )
                buckets, spanning = _partition_pairs(ordered, plan.n_shards)
            elif n_shards is not None and blocker.supports_shard_keys:
                if spill_dir is None:
                    temp = tempfile.TemporaryDirectory(prefix="repro-shuffle-")
                    store = RunStore(temp.name, durable=False)
                elif hasattr(spill_dir, "save_stream"):
                    store = spill_dir
                else:
                    store = RunStore(spill_dir, durable=False)
                with tracer.span(
                    "dist.shuffle", blocker=type(blocker).__name__
                ) as shuffle_span:
                    buckets, n_blocks, spanning = _shuffled_shard_pairs(
                        records, blocker, n_shards, store, tracer
                    )
                    shuffle_span.set("n_blocks", n_blocks)
                plan = plan_shards(
                    sum(len(bucket) for bucket in buckets),
                    model=cost_model,
                    n_shards=n_shards,
                )
            else:
                with tracer.span(
                    "dist.block", blocker=type(blocker).__name__
                ) as block_span:
                    blocks = blocker.block(records)
                    observe_block_collection(tracer, blocks)
                    pairs = blocks.candidate_pairs()
                    block_span.set("n_blocks", len(blocks))
                ordered = _canonical_pairs(pairs)
                plan = plan_shards(
                    len(ordered), model=cost_model, n_shards=n_shards
                )
                buckets, spanning = _partition_pairs(ordered, plan.n_shards)
            n_candidates = sum(len(bucket) for bucket in buckets)
            signatures = [_pair_signature(bucket) for bucket in buckets]
            binding = _bind_store(checkpoint)
            _guard_layout(binding, plan.n_shards, signatures)
            shards = _execute_shards(
                buckets,
                by_id,
                comparator,
                classifier,
                backend=backend,
                chunk_size=chunk_size,
                representation=representation,
                resilience=resilience,
                binding=binding,
                signatures=signatures,
                tracer=tracer,
                supervisor=supervisor,
            )
        finally:
            if temp is not None:
                temp.cleanup()
        _emit_shard_metrics(tracer, shards, plan.n_shards, spanning)
        match_pairs: set[frozenset[str]] = set()
        for shard in shards:
            match_pairs.update(frozenset(pair) for pair in shard.match_pairs)
        scored_edges = list(
            merge_sorted_streams(
                iter(shard.scored_edges) for shard in shards
            )
        )
        all_ids = sorted(by_id)
        if clustering == "components":
            with tracer.span("dist.reconcile") as reconcile_span:
                union = UnionFind(all_ids)
                for shard in shards:
                    for group in shard.local_groups:
                        for member in group[1:]:
                            union.union(group[0], member)
                clusters = union.groups()
                reconcile_span.set("n_clusters", len(clusters))
        else:
            clusters = _cluster(
                clustering, match_pairs, scored_edges, all_ids, tracer
            )
        quarantined = tuple(
            itertools.chain.from_iterable(
                shard.quarantined_pairs for shard in shards
            )
        )
        result = LinkageResult(
            clusters=clusters,
            match_pairs=match_pairs,
            n_candidates=n_candidates,
            scored_edges=scored_edges,
            dead_letters=(
                _merge_dead_letters(shards) if resilience is not None else None
            ),
            quarantined_pairs=quarantined,
        )
        span.set("n_shards", plan.n_shards)
        span.set("n_candidates", n_candidates)
        span.set("n_resumed", sum(1 for shard in shards if shard.resumed))
    return ShardedResolveRun(
        result=result,
        plan=plan,
        shards=tuple(shards),
        n_shards=plan.n_shards,
        backend=backend,
        n_spanning_pairs=spanning,
        signatures=tuple(signatures),
    )


def sharded_match_pairs(
    by_id: Mapping[str, Record],
    pairs: Sequence[tuple[str, str]],
    comparator,
    classifier,
    *,
    n_shards: int,
    backend: str = "inline",
    chunk_size: int = 2048,
    tracer=None,
    resilience=None,
    checkpoint=None,
    representation: str = "dict",
    supervisor=None,
) -> EngineRun:
    """Shard an explicit canonical pair list and merge to one EngineRun.

    The sharded counterpart of
    :meth:`~repro.linkage.engine.ParallelComparisonEngine.match_pairs`
    for callers that already hold the sorted-unique pair list (e.g. the
    distributed-linkage driver). Output fields are merged exactly as
    :func:`sharded_resolve` merges them.
    """
    if backend not in SHARD_BACKENDS:
        raise ConfigurationError(
            f"unknown shard backend {backend!r}; expected one of "
            f"{SHARD_BACKENDS}"
        )
    tracer = tracer if tracer is not None else NULL_TRACER
    ordered = _canonical_pairs(pairs)
    buckets, spanning = _partition_pairs(ordered, n_shards)
    signatures = [_pair_signature(bucket) for bucket in buckets]
    binding = _bind_store(checkpoint)
    _guard_layout(binding, n_shards, signatures)
    shards = _execute_shards(
        buckets,
        by_id,
        comparator,
        classifier,
        backend=backend,
        chunk_size=chunk_size,
        representation=representation,
        resilience=resilience,
        binding=binding,
        signatures=signatures,
        tracer=tracer,
        supervisor=supervisor,
    )
    _emit_shard_metrics(tracer, shards, n_shards, spanning)
    match_pairs: set[frozenset[str]] = set()
    for shard in shards:
        match_pairs.update(frozenset(pair) for pair in shard.match_pairs)
    return EngineRun(
        match_pairs=match_pairs,
        scored_edges=list(
            merge_sorted_streams(iter(shard.scored_edges) for shard in shards)
        ),
        n_pairs=sum(shard.n_pairs for shard in shards),
        n_early_exit=sum(shard.n_early_exit for shard in shards),
        execution="sharded",
        n_workers=n_shards,
        dead_letters=_merge_dead_letters(shards),
        quarantined_pairs=tuple(
            itertools.chain.from_iterable(
                shard.quarantined_pairs for shard in shards
            )
        ),
        completed_chunks=sum(shard.completed_chunks for shard in shards),
        n_chunks=sum(shard.n_chunks for shard in shards),
        representation=representation,
        replayed_chunks=sum(shard.replayed_chunks for shard in shards),
    )


def _run_fusion_shard(args) -> "object":
    """Worker half of :func:`sharded_vote_fusion` (must stay picklable)."""
    from repro.fusion.voting import VotingFuser

    shard_claims = args
    return VotingFuser().fuse(shard_claims)


def sharded_vote_fusion(
    claims,
    *,
    n_shards: int,
    backend: str = "inline",
    tracer=None,
):
    """Voting fusion partitioned by item across shards.

    Voting decides each item independently, so items hash-partition
    cleanly: every shard fuses the claim subset for its items and the
    coordinator reassembles the chosen/confidence maps **in the serial
    claim-set's item order** — byte-identical to one
    :class:`~repro.fusion.voting.VotingFuser` pass over all claims.
    """
    from repro.fusion.base import ClaimSet, FusionResult

    if backend not in SHARD_BACKENDS:
        raise ConfigurationError(
            f"unknown shard backend {backend!r}; expected one of "
            f"{SHARD_BACKENDS}"
        )
    if n_shards < 1:
        raise ConfigurationError("n_shards must be >= 1")
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("dist.fusion", n_shards=n_shards):
        shard_claims = [ClaimSet() for __ in range(n_shards)]
        for item in claims.items():
            owner = shard_of_key(item, n_shards)
            for claim in claims.claims_for(item):
                shard_claims[owner].add(claim)
        populated = [
            (shard, subset)
            for shard, subset in enumerate(shard_claims)
            if subset.items()
        ]
        if backend == "inline" or len(populated) <= 1:
            fused = {
                shard: _run_fusion_shard(subset)
                for shard, subset in populated
            }
        else:
            max_workers = max(1, min(len(populated), os.cpu_count() or 1))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    (shard, pool.submit(_run_fusion_shard, subset))
                    for shard, subset in populated
                ]
                fused = {shard: future.result() for shard, future in futures}
        chosen = {}
        confidence = {}
        for item in claims.items():
            shard_result = fused[shard_of_key(item, n_shards)]
            chosen[item] = shard_result.chosen[item]
            confidence[item] = shard_result.confidence[item]
    return FusionResult(chosen=chosen, confidence=confidence)
