"""Distributed-execution substrate: MapReduce engine, skew-aware
partitioning, cluster cost model, distributed ER driver, and the
sharded pipeline runtime (:mod:`repro.dist.runtime`)."""

from repro.dist.costmodel import ClusterCostModel, PartitionCost
from repro.dist.mapreduce import (
    JobResult,
    MapReduceJob,
    ReducerMetrics,
    hash_partitioner,
)
from repro.dist.parallel_linkage import (
    DistributedRun,
    partition_blocks,
    run_distributed_linkage,
)
from repro.dist.partition import (
    MatchTask,
    block_split_partition,
    naive_partition,
    pair_range_partition,
    shard_of_key,
    stable_key_hash,
    task_pairs,
)
from repro.dist.runtime import (
    SHARD_BACKENDS,
    ShardPlan,
    ShardResult,
    ShardedResolveRun,
    plan_shards,
    sharded_match_pairs,
    sharded_resolve,
    sharded_vote_fusion,
)

__all__ = [
    "ClusterCostModel",
    "DistributedRun",
    "JobResult",
    "MapReduceJob",
    "MatchTask",
    "PartitionCost",
    "ReducerMetrics",
    "SHARD_BACKENDS",
    "ShardPlan",
    "ShardResult",
    "ShardedResolveRun",
    "block_split_partition",
    "hash_partitioner",
    "naive_partition",
    "pair_range_partition",
    "partition_blocks",
    "plan_shards",
    "run_distributed_linkage",
    "shard_of_key",
    "sharded_match_pairs",
    "sharded_resolve",
    "sharded_vote_fusion",
    "stable_key_hash",
    "task_pairs",
]
