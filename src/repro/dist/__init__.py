"""Distributed-execution substrate: MapReduce engine, skew-aware
partitioning, cluster cost model, distributed ER driver."""

from repro.dist.costmodel import ClusterCostModel, PartitionCost
from repro.dist.mapreduce import (
    JobResult,
    MapReduceJob,
    ReducerMetrics,
    hash_partitioner,
)
from repro.dist.parallel_linkage import (
    DistributedRun,
    partition_blocks,
    run_distributed_linkage,
)
from repro.dist.partition import (
    MatchTask,
    block_split_partition,
    naive_partition,
    pair_range_partition,
    task_pairs,
)

__all__ = [
    "ClusterCostModel",
    "DistributedRun",
    "JobResult",
    "MapReduceJob",
    "MatchTask",
    "PartitionCost",
    "ReducerMetrics",
    "block_split_partition",
    "hash_partitioner",
    "naive_partition",
    "pair_range_partition",
    "partition_blocks",
    "run_distributed_linkage",
    "task_pairs",
]
