"""Load-balanced partitioning of ER comparison work (Kolb, Thor & Rahm).

Blocking produces blocks of wildly skewed sizes (Zipf worlds make Zipf
blocks), and a block's comparison cost is *quadratic* in its size — so
naive "one block per reducer" hashing leaves one reducer doing almost
all the work. The two canonical remedies:

* **BlockSplit** — split each oversized block into sub-blocks; emit one
  *match task* per sub-block (its internal pairs) and per sub-block
  pair (their cross pairs); assign tasks to reducers by
  longest-processing-time-first (LPT).
* **PairRange** — number every comparison globally ``0..P-1`` and give
  each reducer one contiguous range: perfectly balanced by
  construction, at the cost of a global enumeration step.

Every strategy returns :class:`MatchTask` lists per reducer; tasks
carry exactly which record pairs they compare, so executing them
yields byte-identical match results across strategies (only the
*distribution* of work differs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.linkage.blocking.base import BlockCollection

__all__ = [
    "MatchTask",
    "naive_partition",
    "block_split_partition",
    "pair_range_partition",
    "shard_of_key",
    "stable_key_hash",
    "task_pairs",
]


def stable_key_hash(text: str) -> int:
    """A deterministic string hash (Python's ``hash`` is salted).

    The same polynomial fold everywhere partitioning happens — block
    hashing, MapReduce shuffling, shard ownership — so every layer
    agrees on where a key lives, across processes and interpreter
    restarts.
    """
    value = 0
    for character in text:
        value = (value * 131 + ord(character)) % 1_000_000_007
    return value


def shard_of_key(key: str, n_shards: int) -> int:
    """Deterministic shard ownership of an entity/block key."""
    if n_shards < 1:
        raise ConfigurationError("n_shards must be >= 1")
    return stable_key_hash(key) % n_shards


@dataclass(frozen=True)
class MatchTask:
    """One unit of comparison work assigned to a reducer.

    ``left`` and ``right`` are record-id tuples: when ``right`` is
    ``None`` the task compares all pairs *within* ``left``; otherwise
    it compares the full bipartite ``left × right``.
    """

    block_key: str
    left: tuple[str, ...]
    right: tuple[str, ...] | None = None

    @property
    def n_comparisons(self) -> int:
        """Comparison count of this task."""
        if self.right is None:
            n = len(self.left)
            return n * (n - 1) // 2
        return len(self.left) * len(self.right)


def task_pairs(task: MatchTask) -> list[tuple[str, str]]:
    """Materialize the record-id pairs a task compares."""
    if task.right is None:
        ids = task.left
        return [
            (ids[i], ids[j])
            for i in range(len(ids))
            for j in range(i + 1, len(ids))
        ]
    return [(a, b) for a in task.left for b in task.right]


def _lpt_assign(
    tasks: Sequence[MatchTask], n_reducers: int
) -> list[list[MatchTask]]:
    """Longest-processing-time-first assignment of tasks to reducers."""
    buckets: list[list[MatchTask]] = [[] for __ in range(n_reducers)]
    loads = [0.0] * n_reducers
    for task in sorted(
        tasks, key=lambda t: (-t.n_comparisons, t.block_key, t.left)
    ):
        index = min(range(n_reducers), key=lambda i: (loads[i], i))
        buckets[index].append(task)
        loads[index] += task.n_comparisons
    return buckets


def naive_partition(
    blocks: BlockCollection, n_reducers: int
) -> list[list[MatchTask]]:
    """One task per block, hashed to a reducer by block key.

    This is the baseline that suffers under skew: the reducer unlucky
    enough to receive the biggest block dominates the makespan.
    """
    if n_reducers < 1:
        raise ConfigurationError("n_reducers must be >= 1")
    buckets: list[list[MatchTask]] = [[] for __ in range(n_reducers)]
    for block in blocks:
        if len(block) < 2:
            continue
        buckets[shard_of_key(block.key, n_reducers)].append(
            MatchTask(block.key, tuple(block.record_ids))
        )
    return buckets


def block_split_partition(
    blocks: BlockCollection,
    n_reducers: int,
    max_task_comparisons: int | None = None,
) -> list[list[MatchTask]]:
    """BlockSplit: sub-divide big blocks, then LPT-assign the tasks.

    A block is split when its comparison count exceeds
    ``max_task_comparisons`` (default: total comparisons divided by
    ``2 · n_reducers`` — enough granularity for LPT to balance). A
    block of size *m* split into *k* even sub-blocks emits *k*
    within-sub-block tasks and *k(k-1)/2* cross tasks, which together
    cover exactly the block's original pairs.
    """
    if n_reducers < 1:
        raise ConfigurationError("n_reducers must be >= 1")
    total = blocks.n_comparisons
    if max_task_comparisons is None:
        max_task_comparisons = max(1, total // (2 * n_reducers) or 1)
    tasks: list[MatchTask] = []
    for block in blocks:
        if len(block) < 2:
            continue
        if block.n_comparisons <= max_task_comparisons:
            tasks.append(MatchTask(block.key, tuple(block.record_ids)))
            continue
        # Split into k sub-blocks sized so cross tasks fit the cap.
        k = max(2, math.ceil(math.sqrt(block.n_comparisons / max_task_comparisons)) + 1)
        ids = list(block.record_ids)
        sub_blocks: list[tuple[str, ...]] = []
        size = math.ceil(len(ids) / k)
        for start in range(0, len(ids), size):
            chunk = tuple(ids[start : start + size])
            if chunk:
                sub_blocks.append(chunk)
        for i, chunk in enumerate(sub_blocks):
            if len(chunk) > 1:
                tasks.append(MatchTask(f"{block.key}#{i}", chunk))
            for j in range(i + 1, len(sub_blocks)):
                tasks.append(
                    MatchTask(
                        f"{block.key}#{i}x{j}", chunk, sub_blocks[j]
                    )
                )
    return _lpt_assign(tasks, n_reducers)


def pair_range_partition(
    blocks: BlockCollection, n_reducers: int
) -> list[list[MatchTask]]:
    """PairRange: give each reducer an equal contiguous range of the
    globally enumerated comparisons.

    Within a block, the pairs of record indices are enumerated row by
    row; ranges cut across blocks and within rows, so every reducer
    receives ⌈P/r⌉ or ⌊P/r⌋ comparisons exactly.
    """
    if n_reducers < 1:
        raise ConfigurationError("n_reducers must be >= 1")
    total = blocks.n_comparisons
    if total == 0:
        return [[] for __ in range(n_reducers)]
    per_reducer = math.ceil(total / n_reducers)
    buckets: list[list[MatchTask]] = [[] for __ in range(n_reducers)]
    reducer = 0
    remaining = per_reducer
    for block in blocks:
        ids = block.record_ids
        if len(ids) < 2:
            continue
        # Emit the block's pair rows, slicing rows across reducers when
        # a boundary falls inside the block.
        row: list[str] = []
        piece = 0
        for i in range(len(ids) - 1):
            row_pairs = len(ids) - 1 - i
            start = 0
            while start < row_pairs:
                take = min(row_pairs - start, remaining)
                left = (ids[i],)
                right = tuple(ids[i + 1 + start : i + 1 + start + take])
                buckets[reducer].append(
                    MatchTask(f"{block.key}@{i}.{piece}", left, right)
                )
                piece += 1
                start += take
                remaining -= take
                if remaining == 0 and reducer < n_reducers - 1:
                    reducer += 1
                    remaining = per_reducer
    return buckets
