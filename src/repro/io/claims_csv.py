"""Claim persistence: the three-column CSV of the fusion literature.

Fusion datasets are conventionally distributed as
``source,item,value`` triples; this module reads and writes exactly
that, with an optional separate truth file (``item,value``).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.errors import DataModelError
from repro.fusion.base import Claim, ClaimSet

__all__ = ["save_claims", "load_claims", "save_truth", "load_truth"]

_CLAIM_HEADER = ["source", "item", "value"]
_TRUTH_HEADER = ["item", "value"]


def save_claims(claims: ClaimSet, path: str | Path) -> Path:
    """Write claims as ``source,item,value`` CSV (with header)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CLAIM_HEADER)
        for claim in claims:
            writer.writerow([claim.source_id, claim.item_id, claim.value])
    return path


def load_claims(path: str | Path) -> ClaimSet:
    """Load a claim CSV written by :func:`save_claims` (or compatible)."""
    path = Path(path)
    claims = ClaimSet()
    with path.open(encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise DataModelError(f"{path.name}: empty claim file")
        if [h.strip().lower() for h in header] != _CLAIM_HEADER:
            raise DataModelError(
                f"{path.name}: expected header {_CLAIM_HEADER}, "
                f"got {header}"
            )
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise DataModelError(
                    f"{path.name}:{line_number}: expected 3 columns, "
                    f"got {len(row)}"
                )
            claims.add(Claim(row[0], row[1], row[2]))
    return claims


def save_truth(truth: dict[str, str], path: str | Path) -> Path:
    """Write an ``item,value`` truth CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_TRUTH_HEADER)
        for item in sorted(truth):
            writer.writerow([item, truth[item]])
    return path


def load_truth(path: str | Path) -> dict[str, str]:
    """Load an ``item,value`` truth CSV."""
    path = Path(path)
    truth: dict[str, str] = {}
    with path.open(encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise DataModelError(f"{path.name}: empty truth file")
        if [h.strip().lower() for h in header] != _TRUTH_HEADER:
            raise DataModelError(
                f"{path.name}: expected header {_TRUTH_HEADER}, got {header}"
            )
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2:
                raise DataModelError(
                    f"{path.name}:{line_number}: expected 2 columns"
                )
            if row[0] in truth:
                raise DataModelError(
                    f"{path.name}:{line_number}: duplicate item {row[0]!r}"
                )
            truth[row[0]] = row[1]
    return truth
