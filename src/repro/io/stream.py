"""Streaming dataset input: records without materializing a corpus.

The JSONL dataset format (see :mod:`repro.io.jsonl`) is line-oriented
precisely so a corpus larger than memory can be consumed one record at
a time. This module provides the single-pass side of that bargain:

* :class:`RecordStream` — the protocol the out-of-core layer consumes:
  anything that can be iterated over for :class:`~repro.core.record.Record`
  objects, repeatedly (each ``__iter__`` starts a fresh pass).
* :class:`JsonlRecordStream` — the streaming reader over a
  ``<stem>.records.jsonl`` file. Nothing is retained between records,
  so the resident footprint is one row regardless of corpus size.

Random access (record id → record) is the job of
:class:`repro.outofcore.IndexedRecordStore`, which builds on the same
file format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator, Protocol, runtime_checkable

from repro.core.errors import DataModelError
from repro.core.record import Record

__all__ = [
    "GeneratorRecordStream",
    "JsonlRecordStream",
    "RecordStream",
    "open_record_stream",
    "record_from_row",
]


def record_from_row(row: dict) -> Record:
    """Build a :class:`Record` from one parsed ``records.jsonl`` row."""
    return Record(
        record_id=row["record_id"],
        source_id=row["source_id"],
        attributes=row["attributes"],
        timestamp=row.get("timestamp"),
    )


@runtime_checkable
class RecordStream(Protocol):
    """A re-iterable source of records.

    Implementations must start a fresh pass on every ``__iter__`` call
    (the out-of-core pipeline reads the corpus more than once: one pass
    for blocking, one for claim extraction).
    """

    def __iter__(self) -> Iterator[Record]: ...


class JsonlRecordStream:
    """Stream records out of a ``.records.jsonl`` file, one at a time.

    Each iteration opens the file afresh, yields one record per line,
    and closes the handle when the pass ends (or the consumer abandons
    the iterator) — no full-dataset materialization, no leaked file
    handles.
    """

    def __init__(self, records_path: str | Path) -> None:
        self._path = Path(records_path)
        if not self._path.exists():
            raise DataModelError(
                f"records file not found: {self._path}"
            )

    @property
    def path(self) -> Path:
        """The underlying ``.records.jsonl`` file."""
        return self._path

    def __iter__(self) -> Iterator[Record]:
        with self._path.open(encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as error:
                    raise DataModelError(
                        f"{self._path.name}:{line_number}: invalid JSON "
                        f"({error})"
                    ) from error
                yield record_from_row(row)

    def __repr__(self) -> str:
        return f"JsonlRecordStream({str(self._path)!r})"


class GeneratorRecordStream:
    """A re-iterable :class:`RecordStream` over a generator factory.

    Wraps a zero-argument callable returning a fresh record iterator —
    the shape of the unbounded synthetic generators
    (:func:`repro.synth.stream_temporal_records`,
    ``DriftWorld.stream()``) — so generator-backed sources satisfy the
    re-iterable stream protocol: every ``__iter__`` calls the factory
    again and replays the stream from the start. That replayability is
    what lets a streaming consumer resume from a checkpoint by
    fast-forwarding a fresh pass, with no durable copy of the stream.

    The stream may be unbounded; consumers are expected to stop on
    their own terms (a record budget, a watermark, a wall clock).
    """

    def __init__(self, factory: Callable[[], Iterator[Record]]) -> None:
        if not callable(factory):
            raise DataModelError(
                "GeneratorRecordStream needs a zero-argument callable "
                "returning a record iterator"
            )
        self._factory = factory

    def __iter__(self) -> Iterator[Record]:
        return iter(self._factory())

    def __repr__(self) -> str:
        name = getattr(self._factory, "__name__", repr(self._factory))
        return f"GeneratorRecordStream({name})"


def open_record_stream(stem: str | Path) -> JsonlRecordStream:
    """The record stream of a dataset saved under ``stem``.

    Accepts the same stem :func:`repro.io.save_dataset` wrote to, and
    reuses its ``<stem>.records.jsonl`` file.
    """
    return JsonlRecordStream(Path(stem).with_suffix(".records.jsonl"))
