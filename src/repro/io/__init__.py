"""Persistence: JSONL datasets and CSV claim/truth files."""

from repro.io.claims_csv import load_claims, load_truth, save_claims, save_truth
from repro.io.jsonl import load_dataset, save_dataset

__all__ = [
    "load_claims",
    "load_dataset",
    "load_truth",
    "save_claims",
    "save_dataset",
    "save_truth",
]
