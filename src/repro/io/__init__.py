"""Persistence: JSONL datasets, CSV claim/truth files, record streams."""

from repro.io.claims_csv import load_claims, load_truth, save_claims, save_truth
from repro.io.jsonl import load_dataset, save_dataset
from repro.io.stream import (
    GeneratorRecordStream,
    JsonlRecordStream,
    RecordStream,
    open_record_stream,
)

__all__ = [
    "GeneratorRecordStream",
    "JsonlRecordStream",
    "RecordStream",
    "load_claims",
    "load_dataset",
    "load_truth",
    "open_record_stream",
    "save_claims",
    "save_dataset",
    "save_truth",
]
