"""Dataset persistence: JSON-lines records + JSON sidecar metadata.

A dataset round-trips through two files:

* ``<stem>.records.jsonl`` — one JSON object per record
  (``record_id``, ``source_id``, ``attributes``, ``timestamp``);
* ``<stem>.meta.json`` — dataset name, per-source cost/metadata, and
  (when present) the full ground truth.

The format is deliberately boring: greppable, diffable, loadable from
any language — what you want when handing a corpus to another tool.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.dataset import Dataset
from repro.core.errors import DataModelError
from repro.core.ground_truth import GroundTruth
from repro.core.record import Record
from repro.core.source import Source

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def _paths(stem: str | Path) -> tuple[Path, Path]:
    stem = Path(stem)
    return (
        stem.with_suffix(".records.jsonl"),
        stem.with_suffix(".meta.json"),
    )


def save_dataset(dataset: Dataset, stem: str | Path) -> tuple[Path, Path]:
    """Write ``dataset`` under ``stem``; returns the two file paths."""
    records_path, meta_path = _paths(stem)
    records_path.parent.mkdir(parents=True, exist_ok=True)
    with records_path.open("w", encoding="utf-8") as handle:
        for record in dataset.records():
            row = {
                "record_id": record.record_id,
                "source_id": record.source_id,
                "attributes": dict(record.attributes),
            }
            if record.timestamp is not None:
                row["timestamp"] = record.timestamp
            # No key sorting: attribute order is semantically relevant
            # (schema translation breaks ties by first occurrence), so
            # the round-trip must preserve it exactly.
            handle.write(json.dumps(row) + "\n")

    meta: dict = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "sources": [
            {
                "source_id": source.source_id,
                "cost": source.cost,
                "metadata": source.metadata,
            }
            for source in dataset.sources
        ],
    }
    truth = dataset.ground_truth
    if truth is not None:
        meta["ground_truth"] = {
            "record_to_entity": truth.record_to_entity,
            "true_values": [
                {"entity": entity, "attribute": attribute, "value": value}
                for (entity, attribute), value in sorted(
                    truth.true_values.items()
                )
            ],
            "attribute_to_mediated": [
                {"source": source, "attribute": attribute, "mediated": mediated}
                for (source, attribute), mediated in sorted(
                    truth.attribute_to_mediated.items()
                )
            ],
        }
    with meta_path.open("w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return records_path, meta_path


def load_dataset(stem: str | Path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    records_path, meta_path = _paths(stem)
    if not records_path.exists() or not meta_path.exists():
        raise DataModelError(
            f"dataset files not found under stem {stem!r} "
            f"(expected {records_path.name} and {meta_path.name})"
        )
    with meta_path.open(encoding="utf-8") as handle:
        meta = json.load(handle)
    version = meta.get("format_version")
    if version != _FORMAT_VERSION:
        raise DataModelError(
            f"unsupported dataset format version {version!r}"
        )

    sources: dict[str, Source] = {}
    for entry in meta.get("sources", []):
        source = Source(
            entry["source_id"],
            cost=entry.get("cost", 1.0),
            metadata=entry.get("metadata", {}),
        )
        sources[source.source_id] = source

    with records_path.open(encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                raise DataModelError(
                    f"{records_path.name}:{line_number}: invalid JSON "
                    f"({error})"
                ) from error
            source = sources.get(row["source_id"])
            if source is None:
                source = Source(row["source_id"])
                sources[row["source_id"]] = source
            source.add(
                Record(
                    record_id=row["record_id"],
                    source_id=row["source_id"],
                    attributes=row["attributes"],
                    timestamp=row.get("timestamp"),
                )
            )

    truth = None
    truth_meta = meta.get("ground_truth")
    if truth_meta is not None:
        truth = GroundTruth(
            truth_meta.get("record_to_entity", {}),
            {
                (row["entity"], row["attribute"]): row["value"]
                for row in truth_meta.get("true_values", [])
            },
            {
                (row["source"], row["attribute"]): row["mediated"]
                for row in truth_meta.get("attribute_to_mediated", [])
            },
        )
    return Dataset(
        sources.values(), truth, name=meta.get("name", "dataset")
    )
